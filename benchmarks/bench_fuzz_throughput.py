"""Meta-benchmark: schedule throughput of the fuzzing service.

Measures the full per-schedule cost of the coverage-guided fuzz loop
(DESIGN.md §15): build a fresh machine, run the recovery-bug kernel
under a recording source, extract coverage features, update the corpus.
This is the number that bounds how much schedule×fault space a fuzzing
budget actually buys, so regressions in the recorder, the feature
extractor or the corpus bookkeeping show up here even when the raw
simulator benches are flat.

The crash menu is pinned to a single post-completion time so every
schedule runs the same failure-free program: the bench measures loop
overhead, not the (schedule-dependent) cost of minimizing findings.

The workload body lives in a module-level ``run_*`` function so that
``benchmarks/run_all.py`` measures exactly the same code as the
pytest-benchmark test below.
"""

from repro.explore.fuzz import FuzzConfig, FuzzService, TargetSpec

FUZZ_SCHEDULES = 60

#: crash far past program completion (~35us) — never fires, so the
#: workload return value is deterministically the full budget
_LATE_CRASH_MENU = [3.3e-4]


def run_fuzz_schedules(budget: int = FUZZ_SCHEDULES) -> int:
    """Inline (workers=0) fuzz loop over the recovery-bug target."""
    spec = TargetSpec(
        "repro.apps.recovery_bug:make_recovery_bug_target",
        {"crash_menu": _LATE_CRASH_MENU})
    config = FuzzConfig(budget=budget, workers=0, seed=1, lag_steps=4)
    service = FuzzService(spec, config)
    return service.run().schedules_run


def test_fuzz_schedule_throughput(benchmark):
    assert benchmark(run_fuzz_schedules) == FUZZ_SCHEDULES
