"""Weak-scaling benchmark: paper-size image counts in one process.

The paper's experiments run on 4096-8192 cores (§IV); the simulator has
to weak-scale to the same image counts for those studies to be
reproducible on one machine.  This bench measures the two quantities
DESIGN.md §13 optimizes:

- ``bytes_per_image`` — tracemalloc-attributed heap growth of
  constructing a ``Machine(p)``, divided by ``p``.  Sparse per-peer
  state and lazy per-image machinery keep this flat (O(1) per image)
  instead of growing with ``p`` (O(p) per image = O(p^2) total).
- ``startup_s_per_image`` — wall-clock ``Machine(p)`` construction time
  per image, which lazy materialization turns into "pay only for
  images you actually run".

It also runs the two paper applications (UTS §IV-C, RandomAccess §IV-B)
at the largest point and records determinism fingerprints, so the
regression gate notices if scaling work ever changes *what* the
simulator computes rather than just how much memory it needs.

Bytes are machine-portable, so ``compare_bench.py`` gates
``bytes_per_image`` directly against the committed reference (startup
times are recorded for the record but not gated — they are wall-clock).
"""

from __future__ import annotations

import hashlib
import sys
import time
import tracemalloc
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: footprint measurement points (always run; construction is cheap)
FOOTPRINT_POINTS = (64, 1024, 8192)
#: app weak-scale points: (quick, full)
APP_POINT_QUICK = 256
APP_POINT_FULL = 8192

#: pre-PR footprint on the reference machine (dense per-peer state,
#: eager per-image construction), recorded with the same protocol
#: before DESIGN.md §13 landed.  Kept for the table in EXPERIMENTS.md;
#: the CI gate compares against the committed BENCH_simulator.json.
PRE_PR_BYTES_PER_IMAGE = {64: 1573, 1024: 1447, 8192: 1462}
PRE_PR_STARTUP_S_PER_IMAGE = {64: 9.715e-5, 1024: 9.363e-5, 8192: 9.929e-5}


def measure_footprint(n_images: int) -> dict:
    """tracemalloc + perf_counter footprint of ``Machine(n_images)``.

    The protocol (start tracing, construct, read traced current) must
    stay byte-for-byte identical to the one that recorded the pre-PR
    baseline, or the comparison is meaningless.
    """
    from repro.runtime.program import Machine
    from repro.runtime.sizeof import deep_sizeof

    tracemalloc.start()
    t0 = time.perf_counter()
    machine = Machine(n_images, seed=1)
    startup_s = time.perf_counter() - t0
    current, _peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # Independent cross-check: walk the object graph hanging off the
    # machine itself (excludes allocator slack tracemalloc sees).
    deep_bytes = deep_sizeof(machine)
    return {
        "n_images": n_images,
        "bytes_per_image": current / n_images,
        "deep_bytes_per_image": deep_bytes / n_images,
        "startup_s_per_image": startup_s / n_images,
    }


def _fingerprint(*fields) -> str:
    text = "|".join(repr(f) for f in fields)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def run_uts_point(n_images: int) -> dict:
    """One weak-scale UTS run; fingerprint covers the work distribution
    and simulated time, i.e. the full schedule outcome."""
    from repro.apps.uts import TreeParams, UTSConfig, run_uts

    config = UTSConfig(tree=TreeParams(b0=2.0, max_depth=4, seed=19))
    t0 = time.perf_counter()
    r = run_uts(n_images, config, seed=3)
    wall = time.perf_counter() - t0
    return {
        "n_images": n_images,
        "wall_s": wall,
        "total_nodes": r.total_nodes,
        "sim_time": r.sim_time,
        "fingerprint": _fingerprint(r.total_nodes, r.sim_time,
                                    tuple(r.nodes_per_image)),
    }


def run_ra_point(n_images: int) -> dict:
    """One weak-scale RandomAccess run; the xor checksum is itself a
    fingerprint of every update applied."""
    from repro.apps.randomaccess import RAConfig, run_randomaccess

    config = RAConfig(log2_local_table=6, updates_per_image=4)
    t0 = time.perf_counter()
    r = run_randomaccess(n_images, config)
    wall = time.perf_counter() - t0
    return {
        "n_images": n_images,
        "wall_s": wall,
        "total_updates": r.total_updates,
        "checksum": r.checksum & 0xFFFFFFFFFFFFFFFF,
        "fingerprint": _fingerprint(r.total_updates, r.checksum,
                                    r.sim_time),
    }


def measure_weak_scaling(quick: bool = False) -> dict:
    """The ``weak_scaling`` section of ``BENCH_simulator.json``."""
    points = []
    for p in FOOTPRINT_POINTS:
        fp = measure_footprint(p)
        points.append(fp)
        print(f"  footprint p={p}: {fp['bytes_per_image']:8.1f} B/img "
              f"(deep {fp['deep_bytes_per_image']:.1f}), "
              f"startup {fp['startup_s_per_image'] * 1e6:.2f} us/img")
    app_p = APP_POINT_QUICK if quick else APP_POINT_FULL
    uts = run_uts_point(app_p)
    print(f"  uts p={app_p}: wall {uts['wall_s']:.1f}s "
          f"nodes={uts['total_nodes']} fp={uts['fingerprint']}")
    ra = run_ra_point(app_p)
    print(f"  randomaccess p={app_p}: wall {ra['wall_s']:.1f}s "
          f"checksum={ra['checksum']:#x} fp={ra['fingerprint']}")
    return {
        "footprint": points,
        "uts": uts,
        "randomaccess": ra,
    }


if __name__ == "__main__":
    import json

    quick = "--quick" in sys.argv
    print(json.dumps(measure_weak_scaling(quick=quick), indent=1))
