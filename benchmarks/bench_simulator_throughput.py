"""Meta-benchmark: raw throughput of the simulation substrate itself.

Not a paper figure — this measures the machine the reproduction runs
*on*, so regressions in the event loop or the AM stack show up directly
(the per-event cost bounds the problem sizes every other bench can
afford).

The workload bodies live in module-level ``run_*`` functions so that
``benchmarks/run_all.py`` (the perf-regression harness behind
``BENCH_simulator.json``) measures exactly the same code as the
pytest-benchmark tests below.
"""

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Task
from repro.runtime.program import run_spmd

RAW_EVENTS = 50_000
TASK_STEPS, TASK_COUNT = 2_000, 8
AM_ROUNDS, AM_IMAGES = 300, 4


def run_raw_event_loop(n: int = RAW_EVENTS) -> int:
    """Pure engine: schedule/execute a chain of null events."""
    sim = Simulator()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-9, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count[0]


def run_task_switch(steps: int = TASK_STEPS, tasks: int = TASK_COUNT) -> bool:
    """Generator tasks yielding delays (the hot path of every kernel)."""
    sim = Simulator()

    def worker():
        for _ in range(steps):
            yield Delay(1e-9)

    spawned = [Task(sim, worker()) for _ in range(tasks)]
    sim.run()
    return all(t.done_future.done for t in spawned)


def run_am_round_trip(rounds: int = AM_ROUNDS, images: int = AM_IMAGES) -> int:
    """Full-stack messaging: spawn round trips through AM + transport +
    finish counting."""

    def remote(img):
        yield from img.compute(1e-8)

    def kernel(img):
        yield from img.finish_begin()
        for _ in range(rounds):
            yield from img.spawn(remote, (img.rank + 1) % img.nimages)
        yield from img.finish_end()

    machine, _ = run_spmd(kernel, images)
    return machine.stats["spawn.executed"]


def test_raw_event_loop_throughput(benchmark):
    assert benchmark(run_raw_event_loop) == RAW_EVENTS


def test_task_switch_throughput(benchmark):
    assert benchmark(run_task_switch)


def test_am_round_trip_throughput(benchmark):
    assert benchmark(run_am_round_trip) == AM_IMAGES * AM_ROUNDS
