"""Meta-benchmark: raw throughput of the simulation substrate itself.

Not a paper figure — this measures the machine the reproduction runs
*on*, so regressions in the event loop or the AM stack show up directly
(the per-event cost bounds the problem sizes every other bench can
afford)."""

import numpy as np

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Task
from repro.runtime.program import run_spmd


def test_raw_event_loop_throughput(benchmark):
    """Pure engine: schedule/execute chains of null events."""
    N = 50_000

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < N:
                sim.schedule(1e-9, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run) == N


def test_task_switch_throughput(benchmark):
    """Generator tasks yielding delays (the hot path of every kernel)."""
    STEPS, TASKS = 2_000, 8

    def run():
        sim = Simulator()

        def worker():
            for _ in range(STEPS):
                yield Delay(1e-9)

        tasks = [Task(sim, worker()) for _ in range(TASKS)]
        sim.run()
        return all(t.done_future.done for t in tasks)

    assert benchmark(run)


def test_am_round_trip_throughput(benchmark):
    """Full-stack messaging: spawn round trips through AM + transport +
    finish counting."""
    ROUNDS = 300

    def remote(img):
        yield from img.compute(1e-8)

    def kernel(img):
        yield from img.finish_begin()
        for _ in range(ROUNDS):
            yield from img.spawn(remote, (img.rank + 1) % img.nimages)
        yield from img.finish_end()

    def run():
        machine, _ = run_spmd(kernel, 4)
        return machine.stats["spawn.executed"]

    assert benchmark(run) == 4 * ROUNDS
