"""Fig. 13 — RandomAccess: get-update-put vs function shipping with
varying finish-invocation counts, across team sizes.

Paper (32-8192 cores, 8 MB tables): the FS implementation is comparable
to the RDMA get-update-put one, and the number of finish invocations
makes no dramatic difference."""

from repro.harness import fig13_randomaccess_scaling

CORES = (2, 4, 8, 16, 32)


def test_fig13_randomaccess_scaling(once):
    results = once(
        fig13_randomaccess_scaling,
        cores=CORES,
        updates_per_image=256,
        finish_granularities=(2, 4, 8),
    )
    fs_variants = [k for k in results if k.startswith("FS")]
    for n in (8, 16, 32):
        ref = results["get-update-put"][n]
        for v in fs_variants:
            # "comparable": within a small factor either way
            assert results[v][n] < 4 * ref
            assert results[v][n] > ref / 8
    # Varying the finish count changes FS time by far less than the
    # factor-of-4 change in synchronization volume.
    for n in (16, 32):
        lo = min(results[v][n] for v in fs_variants)
        hi = max(results[v][n] for v in fs_variants)
        assert hi / lo < 4
