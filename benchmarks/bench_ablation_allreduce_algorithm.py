"""Ablation — tree vs ring allreduce across payload sizes.

finish's scalar reductions want the latency-optimal tree; bulk array
reductions (the collectives "vision" of §II-C.3) want the bandwidth-
optimal ring.  This bench locates the crossover on the default machine.
"""

import numpy as np

from repro import MachineParams, run_spmd
from repro.harness.reporting import Table, format_seconds

SIZES = (8, 512, 8192, 131072)
IMAGES = 8


def _run(kind: str, size: int) -> float:
    def kernel(img):
        arr = np.ones(size, dtype=np.float64)
        if kind == "tree":
            _ = yield from img.allreduce(arr)
        else:
            yield from img.ring_allreduce(arr)
        return img.now

    params = MachineParams.uniform(IMAGES, wire_latency=1e-6,
                                   bandwidth=1e9, o_send=1e-7,
                                   o_recv=1e-7)
    _m, times = run_spmd(kernel, IMAGES, params=params)
    return max(times)


def test_ablation_allreduce_algorithm(once):
    def experiment():
        results = {}
        table = Table(
            f"Ablation — allreduce algorithm vs payload ({IMAGES} images)",
            ["elements", "tree (latency-opt)", "ring (bandwidth-opt)",
             "winner"],
        )
        for size in SIZES:
            tree = _run("tree", size)
            ring = _run("ring", size)
            results[size] = (tree, ring)
            table.add_row([size, format_seconds(tree),
                           format_seconds(ring),
                           "tree" if tree < ring else "ring"])
        table.print()
        return results

    results = once(experiment)
    # small payloads: log-depth tree wins; big payloads: ring wins
    assert results[8][0] < results[8][1]
    assert results[131072][1] < results[131072][0]
