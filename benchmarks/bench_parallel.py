"""Process-backend scaling benchmark (DESIGN.md §14).

Runs UTS on the true-parallel execution backend at 1, 2 and 4 OS
processes (8 in full mode) and records wall-clock throughput per point.
The tree, seed and per-node cost are identical at every process count,
so ``total_nodes`` is fixed and ``nodes_per_s`` isolates how the *wall*
responds to adding processes — the property the simulator cannot
measure, because it has no wall.

The per-node cost is the same constant the simulated runs charge
(``UTSConfig.node_cost``), scaled up so runtime overhead does not swamp
it; on the realtime substrate it is a timer, so node processing
overlaps across workers even when the host throttles the benchmark to
one core (CI containers).  ``cpu_count`` is recorded with the section
so a flat curve on starved hardware can be read for what it is.

``compare_bench._check_parallel`` gates the section on
*self-consistency* — largest-p throughput must beat 1-process — rather
than on machine-specific absolute numbers.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.apps.uts import TreeParams, UTSConfig, run_uts  # noqa: E402
from repro.apps.uts import sequential_tree_size  # noqa: E402

#: fixed workload: ~4.8k nodes, shared 4 levels deep, 0.2 ms per node
TREE = TreeParams(b0=4.0, max_depth=6, seed=19)
NODE_COST = 2e-4
INIT_SHARING_DEPTH = 4

QUICK_POINTS = (1, 2, 4)
FULL_POINTS = (1, 2, 4, 8)


def run_point(processes: int) -> dict:
    config = UTSConfig(tree=TREE, node_cost=NODE_COST,
                       init_sharing_depth=INIT_SHARING_DEPTH)
    t0 = time.perf_counter()
    result = run_uts(processes, config, seed=3, backend="process")
    outer_wall = time.perf_counter() - t0
    expected = sequential_tree_size(TREE)
    if result.total_nodes != expected:
        raise SystemExit(
            f"parallel UTS at p={processes} counted {result.total_nodes} "
            f"nodes, expected {expected} — refusing to record a broken "
            "benchmark")
    return {
        "processes": processes,
        "nodes": result.total_nodes,
        # slowest worker's in-process clock: launch overhead excluded
        "wall_s": result.sim_time,
        "outer_wall_s": outer_wall,
        "nodes_per_s": result.total_nodes / result.sim_time,
    }


def measure_parallel(quick: bool = False) -> dict:
    points = []
    for p in (QUICK_POINTS if quick else FULL_POINTS):
        point = run_point(p)
        points.append(point)
        print(f"  parallel p={p}: {point['nodes_per_s']:,.0f} nodes/s "
              f"(wall {point['wall_s']:.2f}s)")
    speedup = points[-1]["nodes_per_s"] / points[0]["nodes_per_s"]
    print(f"  parallel speedup {points[-1]['processes']}p vs 1p: "
          f"{speedup:.2f}x on {os.cpu_count()} cores")
    return {
        "cpu_count": os.cpu_count(),
        "node_cost_s": NODE_COST,
        "uts_scaling": points,
    }


if __name__ == "__main__":
    import json

    quick = "--quick" in sys.argv
    print(f"bench_parallel ({'quick' if quick else 'full'}):")
    print(json.dumps(measure_parallel(quick=quick), indent=1))
