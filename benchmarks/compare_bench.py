"""Compare two ``run_all.py`` result files and fail on regression.

Usage (what the CI ``perf-smoke`` job runs)::

    PYTHONPATH=src python benchmarks/run_all.py --quick --out /tmp/now.json
    python benchmarks/compare_bench.py BENCH_simulator.json /tmp/now.json

Exits non-zero when any benchmark's *calibration-normalized* cost grew
by more than ``--threshold`` (default 15%) over the committed reference.
Normalized costs divide out the machine's raw interpreter speed, so the
gate transfers between the committing machine and CI hardware; residual
noise is what the threshold absorbs.

``--update-baseline`` rewrites the reference file from the current run
instead of comparing (the sanctioned way to move the baseline after an
intentional perf change).

Exit codes: 0 ok, 1 regression, 2 missing/unreadable baseline.
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path

EXIT_REGRESSION = 1
EXIT_NO_BASELINE = 2


def _load(path: Path, role: str) -> dict:
    try:
        return json.loads(path.read_text())
    except FileNotFoundError:
        print(f"error: {role} file {path} does not exist", file=sys.stderr)
        if role == "reference":
            print(
                "hint: generate the baseline with\n"
                "  PYTHONPATH=src python benchmarks/run_all.py "
                f"--out {path}\n"
                "or adopt a fresh run as the new baseline with\n"
                f"  python benchmarks/compare_bench.py {path} "
                "<current.json> --update-baseline",
                file=sys.stderr)
        raise SystemExit(EXIT_NO_BASELINE)
    except json.JSONDecodeError as exc:
        print(f"error: {role} file {path} is not valid JSON: {exc}",
              file=sys.stderr)
        raise SystemExit(EXIT_NO_BASELINE)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("reference", type=Path,
                    help="committed BENCH_simulator.json")
    ap.add_argument("current", type=Path,
                    help="fresh run_all.py output to check")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional growth in normalized cost "
                         "(default 0.15 = 15%%)")
    ap.add_argument("--update-baseline", action="store_true",
                    help="overwrite REFERENCE with CURRENT instead of "
                         "comparing")
    args = ap.parse_args()

    cur = _load(args.current, "current")
    if args.update_baseline:
        if "benches" not in cur:
            print(f"error: {args.current} has no 'benches' section; "
                  "refusing to install it as the baseline",
                  file=sys.stderr)
            raise SystemExit(EXIT_NO_BASELINE)
        shutil.copyfile(args.current, args.reference)
        print(f"baseline {args.reference} updated from {args.current} "
              f"({len(cur['benches'])} benches)")
        return

    ref = _load(args.reference, "reference")

    failures = []
    ref_benches = ref.get("benches", {})
    cur_benches = cur.get("benches", {})
    for name, ref_bench in sorted(ref_benches.items()):
        cur_bench = cur_benches.get(name)
        if cur_bench is None:
            failures.append(f"{name}: missing from current run")
            continue
        ref_cost = ref_bench["normalized_cost"]
        cur_cost = cur_bench["normalized_cost"]
        growth = cur_cost / ref_cost - 1.0
        status = "FAIL" if growth > args.threshold else "ok"
        print(f"{status:4s} {name}: normalized cost {ref_cost:.3f} -> "
              f"{cur_cost:.3f} ({growth:+.1%})")
        if growth > args.threshold:
            failures.append(
                f"{name}: normalized cost grew {growth:+.1%} "
                f"(threshold {args.threshold:.0%})")

    # New benchmarks (or whole sections) that the committed baseline
    # predates are a warning, not a failure: a schema bump must be able
    # to land before its re-recorded baseline during a stacked rebase.
    _warn_new_keys(ref, cur, args.reference)

    failures += _check_weak_scaling(ref, cur, args.threshold)
    failures += _check_parallel(cur)

    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        raise SystemExit(EXIT_REGRESSION)
    print("\nno regression beyond threshold "
          f"({args.threshold:.0%}) — {len(ref_benches)} benches ok")


def _warn_new_keys(ref: dict, cur: dict, ref_path: Path) -> None:
    """Warn (never fail) about current-run content the baseline lacks."""
    new_benches = sorted(set(cur.get("benches", {}))
                         - set(ref.get("benches", {})))
    known_sections = ("benches", "weak_scaling", "parallel")
    new_sections = sorted(
        s for s in known_sections if s in cur and s not in ref)
    if not new_benches and not new_sections:
        return
    for name in new_benches:
        print(f"warn {name}: not in baseline (new benchmark, ungated)")
    for name in new_sections:
        print(f"warn section '{name}': not in baseline (ungated)")
    print("hint: adopt the current run as the new baseline with\n"
          f"  python benchmarks/compare_bench.py {ref_path} "
          "<current.json> --update-baseline")


def _check_weak_scaling(ref: dict, cur: dict, threshold: float) -> list[str]:
    """Gate ``bytes_per_image`` at each weak-scaling point.

    Heap bytes are machine-portable (unlike wall times), so they are
    compared raw, with the same fractional threshold.  Startup times are
    printed for the record but not gated.  Absent sections are tolerated
    (runs made with ``--skip-weak-scaling``).
    """
    ref_ws = ref.get("weak_scaling")
    cur_ws = cur.get("weak_scaling")
    if ref_ws is None or cur_ws is None:
        return []
    cur_points = {p["n_images"]: p for p in cur_ws.get("footprint", [])}
    failures = []
    for ref_point in ref_ws.get("footprint", []):
        p = ref_point["n_images"]
        cur_point = cur_points.get(p)
        if cur_point is None:
            failures.append(f"weak_scaling p={p}: missing from current run")
            continue
        ref_bytes = ref_point["bytes_per_image"]
        cur_bytes = cur_point["bytes_per_image"]
        growth = cur_bytes / ref_bytes - 1.0
        status = "FAIL" if growth > threshold else "ok"
        print(f"{status:4s} weak_scaling p={p}: {ref_bytes:.0f} -> "
              f"{cur_bytes:.0f} B/img ({growth:+.1%}); startup "
              f"{cur_point['startup_s_per_image'] * 1e6:.2f} us/img")
        if growth > threshold:
            failures.append(
                f"weak_scaling p={p}: bytes_per_image grew {growth:+.1%} "
                f"(threshold {threshold:.0%})")
    return failures


def _check_parallel(cur: dict) -> list[str]:
    """Gate the process-backend scaling section on *self-consistency*:
    throughput at the largest process count must beat one process.

    Wall-clock throughputs are not portable across machines, so the
    current run is only compared against itself — the property the
    tentpole claims (real parallel speedup) rather than a number.
    Absent sections are tolerated (runs made with ``--skip-parallel``,
    or a baseline that predates the section).
    """
    par = cur.get("parallel")
    if par is None:
        return []
    points = sorted(par.get("uts_scaling", []),
                    key=lambda p: p["processes"])
    if len(points) < 2:
        return []
    base, top = points[0], points[-1]
    speedup = top["nodes_per_s"] / base["nodes_per_s"]
    for p in points:
        print(f"  parallel p={p['processes']}: "
              f"{p['nodes_per_s']:,.0f} nodes/s "
              f"(wall {p['wall_s']:.2f}s)")
    if speedup <= 1.0:
        return [f"parallel: {top['processes']}-process throughput "
                f"({top['nodes_per_s']:,.0f} nodes/s) does not beat "
                f"1-process ({base['nodes_per_s']:,.0f} nodes/s)"]
    print(f"ok   parallel: {top['processes']}-process speedup "
          f"{speedup:.2f}x over {base['processes']}-process")
    return []


if __name__ == "__main__":
    main()
