"""Compare two ``run_all.py`` result files and fail on regression.

Usage (what the CI ``perf-smoke`` job runs)::

    PYTHONPATH=src python benchmarks/run_all.py --quick --out /tmp/now.json
    python benchmarks/compare_bench.py BENCH_simulator.json /tmp/now.json

Exits non-zero when any benchmark's *calibration-normalized* cost grew
by more than ``--threshold`` (default 15%) over the committed reference.
Normalized costs divide out the machine's raw interpreter speed, so the
gate transfers between the committing machine and CI hardware; residual
noise is what the threshold absorbs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("reference", type=Path,
                    help="committed BENCH_simulator.json")
    ap.add_argument("current", type=Path,
                    help="fresh run_all.py output to check")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="allowed fractional growth in normalized cost "
                         "(default 0.15 = 15%%)")
    args = ap.parse_args()

    ref = json.loads(args.reference.read_text())
    cur = json.loads(args.current.read_text())

    failures = []
    for name, ref_bench in sorted(ref["benches"].items()):
        cur_bench = cur["benches"].get(name)
        if cur_bench is None:
            failures.append(f"{name}: missing from current run")
            continue
        ref_cost = ref_bench["normalized_cost"]
        cur_cost = cur_bench["normalized_cost"]
        growth = cur_cost / ref_cost - 1.0
        status = "FAIL" if growth > args.threshold else "ok"
        print(f"{status:4s} {name}: normalized cost {ref_cost:.3f} -> "
              f"{cur_cost:.3f} ({growth:+.1%})")
        if growth > args.threshold:
            failures.append(
                f"{name}: normalized cost grew {growth:+.1%} "
                f"(threshold {args.threshold:.0%})")

    if failures:
        print("\nperformance regression detected:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        raise SystemExit(1)
    print("\nno regression beyond threshold "
          f"({args.threshold:.0%}) — {len(ref['benches'])} benches ok")


if __name__ == "__main__":
    main()
