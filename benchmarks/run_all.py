"""Perf-regression harness for the simulation substrate.

Measures the three ``bench_simulator_throughput`` workloads with a plain
``time.perf_counter`` best-of-rounds protocol and writes
``BENCH_simulator.json`` next to the repo root.  The file keeps two
sections:

- ``benches`` — the current engine's numbers on this machine;
- ``pre_pr_baseline`` — the numbers recorded with the engine as it stood
  before the hot-path overhaul (written once with ``--record-baseline``
  and carried forward verbatim afterwards), so ``speedup_vs_pre_pr``
  documents the win on the same machine and harness.

Because absolute wall times do not transfer between machines, every run
also measures a fixed pure-Python *calibration loop*; the comparison
script (``benchmarks/compare_bench.py``) works on calibration-normalized
costs, which makes the >15% regression gate meaningful on CI hardware
that is faster or slower than the machine that committed the baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick
    PYTHONPATH=src python benchmarks/compare_bench.py BENCH_simulator.json \
        /tmp/bench_now.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_simulator_throughput import (  # noqa: E402
    AM_IMAGES,
    AM_ROUNDS,
    RAW_EVENTS,
    TASK_COUNT,
    TASK_STEPS,
    run_am_round_trip,
    run_raw_event_loop,
    run_task_switch,
)
from bench_fuzz_throughput import (  # noqa: E402
    FUZZ_SCHEDULES,
    run_fuzz_schedules,
)
from bench_parallel import measure_parallel  # noqa: E402
from bench_weak_scaling import measure_weak_scaling  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"

#: (name, workload, expected return, unit count, unit name)
BENCHES = [
    ("test_raw_event_loop_throughput", run_raw_event_loop, RAW_EVENTS,
     RAW_EVENTS, "events"),
    ("test_task_switch_throughput", run_task_switch, True,
     TASK_STEPS * TASK_COUNT, "task switches"),
    ("test_am_round_trip_throughput", run_am_round_trip,
     AM_IMAGES * AM_ROUNDS, AM_IMAGES * AM_ROUNDS, "spawns"),
    ("test_fuzz_schedule_throughput", run_fuzz_schedules, FUZZ_SCHEDULES,
     FUZZ_SCHEDULES, "schedules"),
]


def _calibration_workload() -> int:
    """A fixed pure-Python loop; its wall time captures how fast this
    machine runs interpreter bytecode, which is what every simulator
    workload is made of."""
    acc = 0
    for i in range(200_000):
        acc = (acc + i) % 1_000_003
    return acc


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def best_of(fn, rounds: int, warmup: int = 1) -> float:
    """Minimum wall time over ``rounds`` runs (the low-noise estimator
    micro-benchmarks want; the mean is dominated by scheduler noise)."""
    for _ in range(warmup):
        fn()
    return min(_timed(fn) for _ in range(rounds))


def measure(rounds: int) -> dict:
    calib = best_of(_calibration_workload, rounds)
    benches = {}
    for name, fn, expected, units, unit_name in BENCHES:
        result = fn()
        if result != expected:
            raise SystemExit(
                f"{name}: workload returned {result!r}, expected "
                f"{expected!r} — refusing to record a broken benchmark")
        # Calibration rounds are interleaved with bench rounds so both
        # minima come from the same few-minute window: a machine-wide
        # slow spell (noisy neighbors on shared hardware) hits both and
        # cancels in the ratio, where one calibration measured minutes
        # apart would record the slowdown as a regression.  The minima
        # are taken independently — min-of-ratios would let a single
        # slow calibration round fake a fast bench.
        best = float("inf")
        bench_calib = float("inf")
        for _ in range(rounds):
            bench_calib = min(bench_calib, _timed(_calibration_workload))
            best = min(best, _timed(fn))
        best_norm = best / bench_calib
        benches[name] = {
            "best_s": best,
            "units": units,
            "unit_name": unit_name,
            "per_second": units / best,
            # cost relative to this machine's interpreter speed —
            # the machine-portable number the regression gate compares
            "normalized_cost": best_norm,
        }
        print(f"  {name}: {best * 1e3:8.2f} ms  "
              f"({units / best:,.0f} {unit_name}/s, "
              f"normalized {best_norm:.3f})")
    return {"calibration_s": calib, "benches": benches}


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("--quick", action="store_true",
                    help="5 rounds per bench instead of 15")
    ap.add_argument("--out", type=Path, default=DEFAULT_OUT,
                    help=f"output JSON (default {DEFAULT_OUT})")
    ap.add_argument("--record-baseline", action="store_true",
                    help="also store this run as the pre-PR baseline "
                         "(only done once, on the pre-overhaul engine)")
    ap.add_argument("--skip-weak-scaling", action="store_true",
                    help="skip the weak-scaling section (footprint + "
                         "paper-scale app runs)")
    ap.add_argument("--skip-parallel", action="store_true",
                    help="skip the process-backend scaling section")
    args = ap.parse_args()

    rounds = 5 if args.quick else 15
    print(f"run_all: {rounds} rounds per bench "
          f"(python {platform.python_version()})")
    run = measure(rounds)

    doc = {
        "schema": 3,
        "python": platform.python_version(),
        "rounds": rounds,
        "calibration_s": run["calibration_s"],
        "benches": run["benches"],
        # headline number for the fuzzing service (DESIGN.md §15); the
        # regression gate runs on the bench's normalized_cost, this key
        # just makes the throughput easy to quote
        "fuzz_schedules_per_sec":
            run["benches"]["test_fuzz_schedule_throughput"]["per_second"],
    }

    if not args.skip_weak_scaling:
        print("weak scaling (DESIGN.md §13):")
        doc["weak_scaling"] = measure_weak_scaling(quick=args.quick)

    if not args.skip_parallel:
        print("process-backend scaling (DESIGN.md §14):")
        doc["parallel"] = measure_parallel(quick=args.quick)

    prior = None
    if args.out.exists():
        try:
            prior = json.loads(args.out.read_text())
        except json.JSONDecodeError:
            prior = None

    if args.record_baseline:
        doc["pre_pr_baseline"] = {
            "calibration_s": run["calibration_s"],
            "benches": run["benches"],
        }
    elif prior is not None and "pre_pr_baseline" in prior:
        doc["pre_pr_baseline"] = prior["pre_pr_baseline"]

    base = doc.get("pre_pr_baseline")
    if base is not None:
        speedups = {}
        for name, cur in doc["benches"].items():
            old = base["benches"].get(name)
            if old is not None:
                speedups[name] = (old["normalized_cost"]
                                  / cur["normalized_cost"])
        doc["speedup_vs_pre_pr"] = speedups
        for name, s in speedups.items():
            print(f"  speedup vs pre-PR {name}: {s:.2f}x")

    args.out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
