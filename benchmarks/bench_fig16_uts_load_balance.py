"""Fig. 16 — UTS load balance: relative per-image work fractions.

Paper (2048/4096/8192 processes): fractions within [0.989, 1.008] at
2048 and widening to [0.980, 1.037] at 8192.  Scaled to 8/16/32 images;
the reproduction target is a tight band that widens with team size."""

from repro.harness import fig16_uts_load_balance

CORES = (8, 16, 32)


def test_fig16_uts_load_balance(once):
    results = once(fig16_uts_load_balance, cores=CORES)
    for n in CORES:
        assert 0.9 < results[n]["min"] <= 1.0
        assert 1.0 <= results[n]["max"] < 1.1
    spreads = [results[n]["max"] - results[n]["min"] for n in CORES]
    # variance grows with process count (paper's observation)
    assert spreads[0] < spreads[-1]
