"""Fig. 12 — the cofence micro-benchmark: local data completion
(cofence) vs local operation completion (events) vs global completion
(finish) for a producer-consumer round of 80-byte copies.

Paper (128-1024 cores, 10^6 iterations): cofence 36-42 s, events
40-52 s, finish 61-119 s.  Scaled here; the reproduction target is the
ordering and the finish curve's log-p growth."""

from repro.harness import fig12_cofence_micro

CORES = (8, 16, 32, 64)


def test_fig12_cofence_micro(once):
    results = once(fig12_cofence_micro, cores=CORES, iterations=50)
    for n in CORES:
        assert results["cofence"][n] < results["events"][n] < results["finish"][n]
    # The finish variant's cost grows with team size; cofence's does not
    # (beyond the jitter of random destinations).
    assert results["finish"][64] > results["finish"][8]
    ratio_small = results["finish"][8] / results["cofence"][8]
    ratio_large = results["finish"][64] / results["cofence"][64]
    assert ratio_large > ratio_small * 0.9
