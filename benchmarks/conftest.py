"""Benchmark harness configuration.

Each ``bench_*`` file regenerates one table/figure of the paper (see
DESIGN.md §4).  Simulation runs are deterministic, so every benchmark
executes its experiment once (``pedantic`` with one round) and prints
the paper-style table; pytest-benchmark records the wall time of the
full experiment.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment exactly once under the benchmark clock and
    return its result."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
