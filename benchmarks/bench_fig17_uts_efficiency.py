"""Fig. 17 — UTS parallel efficiency.

Paper (256-32768 processes): 0.80 at 256 cores falling gently to 0.74
at 32K.  Scaled to 2-64 images on a 77k-node geometric tree: the small
end of our sweep sits near 1.0 (trivially easy at 2 images), and the
large end lands in the paper's 0.74-0.80 band."""

from repro.harness import fig17_uts_efficiency

CORES = (2, 4, 8, 16, 32, 64)


def test_fig17_uts_efficiency(once):
    results = once(fig17_uts_efficiency, cores=CORES)
    # monotone, gentle decline
    effs = [results[n] for n in CORES]
    for a, b in zip(effs, effs[1:]):
        assert b <= a * 1.02
    # the scaled analogue of the paper's band at the top of the sweep
    assert 0.70 <= results[64] <= 0.90
    assert results[2] > 0.95
