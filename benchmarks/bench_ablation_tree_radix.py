"""Ablation — radix of the reduction tree driving finish's allreduce.

With per-message overhead small relative to wire latency, wider trees
(fewer levels) make each termination wave cheaper; the crossover moves
with o_send.  finish's critical path O((L+1) log p) carries the tree
depth directly, so this knob is the constant in Fig. 12's finish curve.
"""

from repro.harness import ablation_tree_radix


def test_ablation_tree_radix(once):
    results = once(ablation_tree_radix, radixes=(2, 4, 8), n_images=32)
    # at default parameters (latency-dominated) wider is cheaper
    assert results[8] < results[2]
    # but every radix stays within a small constant of the best
    best = min(results.values())
    for t in results.values():
        assert t < 4 * best
