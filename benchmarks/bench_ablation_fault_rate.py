"""Ablation — retransmission overhead of the reliable transport vs the
injected drop rate.

The reliable protocol's cost model: each lost transmission is healed by
a retransmission no earlier than one RTO (``rto_safety`` × the nominal
round trip) after the original injection, so the simulated run time
grows with the drop rate while the application-level results stay
identical to the clean run.  This benchmark regenerates the `chaos`
harness table and checks both halves of that claim.
"""

from repro.harness import chaos_resilience
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.apps.uts import TreeParams, UTSConfig, run_uts


def test_fault_rate_ablation(once):
    results = once(chaos_resilience, drop_rates=(0.0, 0.02, 0.05, 0.1),
                   n_images=8)
    for rate, row in results.items():
        assert row["uts_ok"], f"UTS diverged at drop rate {rate}"
        assert row["ra_ok"], f"RandomAccess lost updates at drop rate {rate}"
        if rate == 0.0:
            assert row["retransmits"] == 0 and row["drops"] == 0
        else:
            assert row["drops"] > 0
            assert row["retransmits"] >= row["drops"] - row["dups"]
    # Retransmission pressure rises with the drop rate.
    assert results[0.1]["retransmits"] > results[0.02]["retransmits"]


def test_retransmit_overhead_grows_with_drop_rate(benchmark):
    """Run time under faults is bounded below by the clean run and
    grows as more messages need a second (or third) trip."""
    tree = TreeParams(b0=4, max_depth=7, seed=19)
    config = UTSConfig(tree=tree, node_cost=5e-7)

    def run():
        times = {}
        for rate in (0.0, 0.05, 0.2):
            faults = FaultPlan(drop=rate, seed=7) if rate else None
            r = run_uts(8, config,
                        params=MachineParams.uniform(8, reliable=True),
                        seed=7, faults=faults)
            times[rate] = r.sim_time
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    assert times[0.05] > times[0.0]
    assert times[0.2] > times[0.05]
