"""Theorem 1 — the detector uses at most L+1 reduction waves for a
spawn chain of length L (and exactly L+1 on an adversarial chain whose
every hop straddles a wave)."""

from repro.harness import theorem1_waves

CHAINS = (1, 2, 4, 8)


def test_theorem1_wave_bound(once):
    results = once(theorem1_waves, chain_lengths=CHAINS)
    for length in CHAINS:
        assert results[length]["waves"] <= results[length]["bound"]
    # adversarial chains actually reach the bound (it is tight)
    assert results[8]["waves"] == 9
