"""Ablation — §IV-C.1a "amount to steal": the AM medium payload cap
bounds how much work one steal can move (9 items at the paper's
defaults).  Tiny caps make every transfer a trickle; huge caps
destabilize victims (they give away whole queues and re-steal)."""

from repro.harness import ablation_steal_chunk


def test_ablation_steal_chunk(once):
    results = once(ablation_steal_chunk, medium_sizes=(80, 256, 800),
                   n_images=16)
    assert results[80]["chunk"] < results[256]["chunk"] < results[800]["chunk"]
    assert results[256]["chunk"] == 9  # the paper's constraint
    # steal traffic grows when victims hand out oversized chunks
    assert results[800]["steals"] > results[256]["steals"]
