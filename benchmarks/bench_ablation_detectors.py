"""Ablation — the four sound termination detectors on the same UTS run.

Exposes the §V structural comparison: the epoch algorithm needs a single
wave on quiet finishes where Mattern's four-counter scheme always pays a
second confirming reduction, and the X10-style centralized scheme
concentrates O(p^2) report traffic at the finish owner."""

from repro.harness import ablation_detectors
from repro.core.termination import get_detector
from repro.runtime.program import run_spmd


def test_ablation_detectors_on_uts(once):
    results = once(ablation_detectors, n_images=8)
    for det, row in results.items():
        assert row["total_nodes"] == results["epoch"]["total_nodes"]
    assert results["epoch"]["rounds"] < results["wave_unbounded"]["rounds"]
    assert results["vector_count"]["owner_bytes"] > 0
    assert results["epoch"]["owner_bytes"] == 0


def test_four_counter_extra_round_on_quiet_finish(benchmark):
    """The §V claim in isolation: on an already-quiet finish the paper's
    algorithm detects in one wave; four-counter needs two."""

    def kernel(img, detector):
        yield from img.finish_begin()
        return (yield from img.finish_end(detector=detector))

    def run():
        _m, ours = run_spmd(kernel, 8, args=("epoch",))
        _m, fc = run_spmd(kernel, 8, args=("four_counter",))
        return ours[0], fc[0]

    ours, fc = benchmark.pedantic(run, rounds=1, iterations=1)
    assert ours == 1
    assert fc == 2


def test_vector_count_owner_traffic_scales_superlinearly(benchmark):
    """Owner-side bytes grow faster than p (vectors of size p from p
    images)."""
    from repro.apps.uts import TreeParams, UTSConfig, run_uts
    from repro.runtime.program import Machine
    from repro.apps.uts import uts_kernel

    def run():
        traffic = {}
        for n in (4, 8, 16):
            machine = Machine(n)
            machine.launch(uts_kernel, args=(UTSConfig(
                tree=TreeParams(max_depth=6),
                detector="vector_count"),))
            machine.run()
            traffic[n] = machine.stats["term.vector.owner_bytes"]
        return traffic

    traffic = benchmark.pedantic(run, rounds=1, iterations=1)
    assert traffic[16] > 4 * traffic[4]
