"""Fig. 14 — RandomAccess function shipping vs finish bunch size.

Paper (128 & 1024 cores, 2^23-word tables, bunches 16-2048): time falls
steeply with bunch size, is flat past ~256, and *rises slightly* at the
largest bunches — an anomaly the authors attribute to GASNet flow
control.  With source-token credits enabled the same dip-then-rise
appears here; the companion ablation (credits disabled) shows the rise
vanish."""

from repro.harness import fig14_bunch_size

BUNCHES = (4, 8, 16, 32, 64, 128, 256)


def test_fig14_bunch_size_with_flow_control(once):
    results = once(fig14_bunch_size, cores=(8, 32), bunch_sizes=BUNCHES,
                   flow_credits=8)
    for n in (8, 32):
        series = results[n]
        # Steep decline at the small end...
        assert series[4] > 2 * series[64]
        # ...and the anomaly: the largest bunch is no better than the
        # sweet spot (flow-control retries eat the finish savings).
        sweet = min(series.values())
        assert series[256] >= sweet
        assert series[256] <= 1.5 * sweet


def test_fig14_ablation_no_flow_control(once):
    """Without flow control the curve is monotone non-increasing —
    the rise is the flow-control model, not an artifact."""
    results = once(fig14_bunch_size, cores=(8,), bunch_sizes=BUNCHES,
                   flow_credits=None, quiet=True)
    series = [results[8][b] for b in BUNCHES]
    for a, b in zip(series, series[1:]):
        assert b <= a * 1.02
