"""Fig. 18 — rounds of allreduce used for termination detection in UTS:
the paper's algorithm vs wave baselines without the line-4 wait
precondition.

Paper (128-2048 cores): its baseline needs roughly twice the rounds.
Two simulated baselines bracket that measurement: ``wave_drain`` (keeps
only the inbox-drain half of the wait) needs slightly more rounds than
ours; ``wave_unbounded`` (no wait at all) over-spins hard at small team
sizes and converges toward the paper's ~2x as the team grows.  The
reproduction target: ours <= drain-only < free-spinning, with the
free-spinning ratio falling toward ~2x with scale."""

from repro.harness import fig18_allreduce_rounds

CORES = (8, 16, 32, 64)


def test_fig18_allreduce_rounds(once):
    results = once(fig18_allreduce_rounds, cores=CORES)
    for n in CORES:
        assert results["epoch"][n] <= results["wave_drain"][n]
        assert results["wave_drain"][n] < results["wave_unbounded"][n]
    # the free-spinning ratio shrinks toward the paper's ~2x with scale
    ratios = [results["wave_unbounded"][n] / results["epoch"][n]
              for n in CORES]
    assert ratios[-1] < ratios[0]
    assert ratios[-1] >= 1.5
