"""Fig. 5 — barrier-based termination detection fails under transitive
spawns; the epoch-based finish does not."""

from repro.harness import fig05_barrier_failure


def test_fig05_barrier_failure(once):
    outcomes = once(fig05_barrier_failure)
    assert outcomes["barrier"]["sound"] is False
    assert outcomes["epoch"]["sound"] is True
