#!/usr/bin/env python
"""Fig. 2 vs Fig. 3: why function shipping exists.

Runs the same randomized steal workload twice — once with Dinan et
al.'s 5-round-trip get/lock/put protocol (paper Fig. 2), once with the
shipped-function protocol that localizes all of it at the victim (paper
Fig. 3) — and reports latency and message counts.

    python examples/work_stealing_demo.py [--images N]
"""

import argparse

from repro.apps.work_stealing import WSConfig, run_work_stealing
from repro.harness.reporting import Table, format_seconds


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=4)
    parser.add_argument("--tasks", type=int, default=256)
    parser.add_argument("--chunk", type=int, default=4)
    parser.add_argument("--steals", type=int, default=8)
    args = parser.parse_args()

    table = Table(
        "steal protocol comparison (victim = image 0)",
        ["protocol", "mean steal latency", "messages", "tasks stolen"],
    )
    rows = {}
    for protocol in ("get-put", "shipped"):
        r = run_work_stealing(args.images, WSConfig(
            protocol=protocol, initial_tasks=args.tasks,
            steal_chunk=args.chunk, steals_per_thief=args.steals))
        rows[protocol] = r
        table.add_row([
            protocol, format_seconds(r.mean_steal_latency),
            r.messages, r.tasks_stolen,
        ])
    table.print()

    speedup = (rows["get-put"].mean_steal_latency
               / rows["shipped"].mean_steal_latency)
    print(f"shipped-function steals are {speedup:.1f}x faster "
          f"(paper: 5 round trips -> 2 one-way spawns)")


if __name__ == "__main__":
    main()
