#!/usr/bin/env python
"""1-D stencil with asynchronous halo exchange (the paper's Fig. 8
pattern).

Each image owns a strip of a 1-D domain and iterates a 3-point stencil.
Per step it sends its boundary cells to both neighbors with implicit
``copy_async``, computes the interior while the halos fly, and uses a
single ``cofence`` to know its outgoing buffers are reusable and its
incoming halos have landed — never paying for remote delivery of its own
sends (that is the neighbor's cofence's business).

A final ``finish`` collects global completion before the results are
checked against a sequential reference.

    python examples/halo_exchange.py [--images N] [--cells C] [--steps S]
"""

import argparse

import numpy as np

from repro import run_spmd


def reference(domain: np.ndarray, steps: int) -> np.ndarray:
    """Sequential 3-point averaging stencil with periodic boundaries."""
    u = domain.copy()
    for _ in range(steps):
        u = (np.roll(u, 1) + u + np.roll(u, -1)) / 3.0
    return u


def stencil_kernel(img, cells_per_image, steps):
    machine = img.machine
    halo_lo = machine.coarray_by_name("halo_lo")  # neighbor's high cell
    halo_hi = machine.coarray_by_name("halo_hi")  # neighbor's low cell
    tick = machine.event_by_name("tick")

    left = (img.rank - 1) % img.nimages
    right = (img.rank + 1) % img.nimages

    u = (np.arange(cells_per_image, dtype=np.float64)
         + img.rank * cells_per_image)

    for _step in range(steps):
        # Ship boundary cells to the neighbors' halo slots (implicit
        # completion: the cofence below governs them).
        img.copy_async(halo_hi.ref(left), u[:1])
        img.copy_async(halo_lo.ref(right), u[-1:])

        # Overlap: interior update needs no halos.
        yield from img.compute(cells_per_image * 2e-9)
        interior = (u[:-2] + u[1:-1] + u[2:]) / 3.0

        # Local data completion: my outgoing buffers are reusable.  For
        # the incoming halos we synchronize pairwise with events (the
        # neighbor's notify is release-ordered after its copies).
        yield from img.cofence()
        yield from img.event_notify(tick.at(left))
        yield from img.event_notify(tick.at(right))
        yield from img.event_wait(tick, count=2)

        lo = halo_lo.local_at(img.rank)[0]
        hi = halo_hi.local_at(img.rank)[0]
        new = np.empty_like(u)
        new[1:-1] = interior
        new[0] = (lo + u[0] + u[1]) / 3.0
        new[-1] = (u[-2] + u[-1] + hi) / 3.0
        u = new
        # Keep steps in lockstep so halo slots are not overwritten early.
        yield from img.barrier()

    yield from img.finish_begin()
    yield from img.finish_end()
    return u


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=8)
    parser.add_argument("--cells", type=int, default=64,
                        help="cells per image")
    parser.add_argument("--steps", type=int, default=10)
    args = parser.parse_args()

    def setup(machine):
        machine.coarray("halo_lo", shape=1, dtype=np.float64)
        machine.coarray("halo_hi", shape=1, dtype=np.float64)
        machine.make_event(name="tick")

    machine, strips = run_spmd(
        stencil_kernel, args.images, setup=setup,
        args=(args.cells, args.steps))

    result = np.concatenate(strips)
    expected = reference(
        np.arange(args.images * args.cells, dtype=np.float64), args.steps)
    err = float(np.abs(result - expected).max())
    print(f"{args.steps} stencil steps over "
          f"{args.images} x {args.cells} cells")
    print(f"simulated time {machine.sim.now * 1e6:.2f} us, "
          f"{machine.stats['net.msgs']} messages, "
          f"{machine.stats['cofence.calls']} cofences")
    print(f"max |error| vs sequential reference: {err:.2e}")
    if err > 1e-9:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
