#!/usr/bin/env python
"""HPCC RandomAccess demo (paper §IV-B).

Compares the racy get-update-put reference implementation against the
atomic function-shipping one, then sweeps the finish bunch size to show
the synchronization/overlap trade-off of Fig. 14.

    python examples/randomaccess_demo.py [--images N] [--updates U]
"""

import argparse

from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.harness.reporting import Table, format_seconds


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=8,
                        help="power-of-two image count")
    parser.add_argument("--updates", type=int, default=256,
                        help="updates per image")
    parser.add_argument("--log2-table", type=int, default=10,
                        help="log2 of table words per image (paper: 22)")
    args = parser.parse_args()

    base = dict(updates_per_image=args.updates,
                log2_local_table=args.log2_table)

    table = Table("RandomAccess variants (HPCC-verified)",
                  ["variant", "time", "GUPS", "lost updates"])
    for variant in ("get-update-put", "function-shipping"):
        r = run_randomaccess(args.images,
                             RAConfig(variant=variant, **base),
                             verify=True)
        table.add_row([variant, format_seconds(r.sim_time),
                       f"{r.gups:.6f}",
                       f"{r.errors} ({r.error_rate:.2%})"])
    table.print()
    print("(get-update-put's read-modify-write is racy and may lose "
          "updates under contention; function shipping is atomic)\n")

    sweep = Table("finish bunch-size sweep (function shipping)",
                  ["bunch size", "finish blocks", "time"])
    for bunch in (8, 32, 128, args.updates):
        r = run_randomaccess(args.images, RAConfig(
            variant="function-shipping", bunch_size=bunch, **base))
        sweep.add_row([bunch, r.finish_blocks, format_seconds(r.sim_time)])
    sweep.print()


if __name__ == "__main__":
    main()
