#!/usr/bin/env python
"""Export a chrome://tracing timeline of a finish + work-stealing run.

Produces ``uts_trace.json``; open chrome://tracing (or
https://ui.perfetto.dev) and load it to see per-image compute spans,
message arrows, and the finish detector's reduction waves.

    python examples/trace_demo.py [--images N] [--out FILE]
"""

import argparse

from repro.runtime.program import Machine
from repro.sim.chrometrace import ChromeTracer
from repro.apps.uts import TreeParams, UTSConfig, uts_kernel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=8)
    parser.add_argument("--depth", type=int, default=6)
    parser.add_argument("--out", default="uts_trace.json")
    args = parser.parse_args()

    tracer = ChromeTracer()
    machine = Machine(args.images, tracer=tracer)
    config = UTSConfig(tree=TreeParams(max_depth=args.depth))
    machine.launch(uts_kernel, args=(config,))
    results = machine.run()

    tracer.save(args.out)
    print(f"counted {sum(results)} UTS nodes on {args.images} images "
          f"in {machine.sim.now * 1e3:.3f} ms simulated")
    print(f"wrote {len(tracer)} trace events to {args.out}")
    print("open chrome://tracing or https://ui.perfetto.dev and load it")


if __name__ == "__main__":
    main()
