#!/usr/bin/env python
"""Unbalanced Tree Search demo (paper §IV-C).

Counts a deterministic SHA-1 geometric tree with lifeline-based work
stealing over function shipping, termination-detected by finish, and
validates the count against a sequential traversal.

    python examples/uts_demo.py [--images N] [--depth D] [--b0 B]
"""

import argparse

import numpy as np

from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    run_uts,
    sequential_tree_size,
)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--images", type=int, default=16)
    parser.add_argument("--depth", type=int, default=8,
                        help="tree depth bound (paper: 18)")
    parser.add_argument("--b0", type=float, default=4.0,
                        help="expected branching factor (paper: 4)")
    parser.add_argument("--seed", type=int, default=19,
                        help="root descriptor seed (paper: 19)")
    parser.add_argument("--node-cost", type=float, default=5e-7,
                        help="simulated seconds per node")
    args = parser.parse_args()

    tree = TreeParams(b0=args.b0, max_depth=args.depth, seed=args.seed)
    print(f"expanding the tree sequentially (ground truth) ...")
    expected = sequential_tree_size(tree)
    print(f"  {expected} nodes")

    config = UTSConfig(tree=tree, node_cost=args.node_cost)
    print(f"running distributed UTS on {args.images} images ...")
    result = run_uts(args.images, config)

    ok = result.total_nodes == expected
    t1 = expected * args.node_cost
    efficiency = t1 / (args.images * result.sim_time)
    fractions = np.array(result.nodes_per_image) / (
        result.total_nodes / args.images)

    print(f"  counted {result.total_nodes} nodes "
          f"({'MATCH' if ok else 'MISMATCH!'})")
    print(f"  simulated time          {result.sim_time * 1e3:.3f} ms")
    print(f"  parallel efficiency     {efficiency:.2f}")
    print(f"  load balance            [{fractions.min():.3f}, "
          f"{fractions.max():.3f}] of even share")
    print(f"  steals                  {result.steals_successful}"
          f"/{result.steals_attempted} successful")
    print(f"  lifeline pushes         {result.lifeline_pushes}")
    print(f"  termination waves       {result.finish_rounds}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
