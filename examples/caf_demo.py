#!/usr/bin/env python
"""Run the bundled CAF 2.0 surface-syntax programs (examples/caf/*.caf)
through the language frontend.

The paper's constructs are language constructs; this demo executes its
listings (Fig. 3's shipped-function steal, Fig. 11's cofence
micro-benchmark) nearly verbatim on the simulated runtime.

    python examples/caf_demo.py [--images N] [program.caf ...]
"""

import argparse
import pathlib

from repro.lang import run_program

CAF_DIR = pathlib.Path(__file__).parent / "caf"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("programs", nargs="*",
                        help="paths to .caf files (default: all bundled)")
    parser.add_argument("--images", type=int, default=8)
    args = parser.parse_args()

    paths = ([pathlib.Path(p) for p in args.programs]
             or sorted(CAF_DIR.glob("*.caf")))
    for path in paths:
        print(f"=== {path.name} ({args.images} images) " + "=" * 20)
        source = path.read_text()
        machine, results, _prints = run_program(source, args.images)
        print(f"--- per-image results: {results}")
        print(f"--- simulated time {machine.sim.now * 1e6:.2f} us, "
              f"{machine.stats['net.msgs']} messages, "
              f"{machine.stats['spawn.executed']} shipped functions\n")


if __name__ == "__main__":
    main()
