#!/usr/bin/env python
"""Quickstart: the CAF 2.0 programming model in one file.

Runs an 8-image SPMD program that exercises each of the core constructs:
coarrays, asynchronous copies with events, cofence, function shipping,
asynchronous collectives, and finish.

    python examples/quickstart.py
"""

import numpy as np

from repro import run_spmd


def say(img, msg):
    """Shipped function: runs on the target image."""
    print(f"  [t={img.now * 1e6:7.2f}us] image {img.rank}: {msg}")
    yield from img.compute(1e-6)


def kernel(img):
    machine = img.machine
    A = machine.coarray_by_name("A")
    ready = machine.event_by_name("ready")
    right = (img.rank + 1) % img.nimages

    # ------------------------------------------------------------- #
    # 1. One-sided asynchronous copy + cofence (local data completion)
    # ------------------------------------------------------------- #
    src = np.full(4, float(img.rank), dtype=np.float64)
    img.copy_async(A.ref(right), src)       # implicit completion
    yield from img.cofence()                # src reusable from here on
    src[:] = -1.0                           # safe: NIC already read it

    # ------------------------------------------------------------- #
    # 2. Events: explicit completion + pairwise coordination
    # ------------------------------------------------------------- #
    # Tell my right neighbor its data has surely landed (release
    # semantics order the notify after my earlier copy's delivery).
    yield from img.event_notify(ready.at(right))
    yield from img.event_wait(ready)
    received = A.local_at(img.rank)
    assert received[0] == (img.rank - 1) % img.nimages

    # ------------------------------------------------------------- #
    # 3. finish + function shipping (global completion)
    # ------------------------------------------------------------- #
    yield from img.finish_begin()
    if img.rank == 0:
        yield from img.spawn(say, img.nimages // 2,
                             "hello from a shipped function")
    waves = yield from img.finish_end()

    # ------------------------------------------------------------- #
    # 4. Asynchronous collective overlapped with computation
    # ------------------------------------------------------------- #
    buf = np.zeros(4)
    if img.rank == 0:
        buf[:] = np.pi
    op = img.broadcast_async(buf, root=0)
    yield from img.compute(5e-6)            # overlapped work
    yield op.local_data                     # data readable now
    assert buf[0] == np.pi

    total = yield from img.allreduce(img.rank)
    return (waves, total)


def main():
    def setup(machine):
        machine.coarray("A", shape=4, dtype=np.float64)
        machine.make_event(name="ready")

    machine, results = run_spmd(kernel, n_images=8, setup=setup)
    waves, total = results[0]
    print(f"finish termination detection used {waves} wave(s)")
    print(f"allreduce of ranks = {total} (expected {sum(range(8))})")
    print(f"simulated execution time: {machine.sim.now * 1e6:.2f} us, "
          f"{machine.stats['net.msgs']} messages")


if __name__ == "__main__":
    main()
