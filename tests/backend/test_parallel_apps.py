"""Cross-validation: real OS processes vs the simulator oracle.

The tentpole claim of the process backend (DESIGN.md §14) is that the
*same* CAF programs produce the *same* answers on real processes as
under the deterministic simulator.  These tests run the full runtime
stack — barriers, collectives, remote spawn under finish, copy_async —
across 2–4 forked workers and compare fingerprint quantities (node
counts, checksums) bit-for-bit against the sim oracle and against
sequential ground truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.apps.uts import (TreeParams, UTSConfig, run_uts,
                            sequential_tree_size)
from repro.runtime.program import run_spmd

pytestmark = pytest.mark.parallel


# --------------------------------------------------------------------- #
# Primitive round-trips on real processes
# --------------------------------------------------------------------- #

def _setup_table(machine):
    machine.coarray("tbl", shape=(8,), dtype=np.int64)


def _spawned_add(img, value):
    tbl = img.machine.coarray_by_name("tbl")
    tbl.local_at(img.rank)[0] += value
    yield from img.compute(1e-6)


def _primitives_kernel(img):
    n = img.machine.n_images
    tbl = img.machine.coarray_by_name("tbl")
    tbl.local_at(img.rank)[:] = 0
    yield from img.barrier()
    total = yield from img.allreduce(float(img.rank + 1))
    yield from img.finish_begin()
    yield from img.spawn(_spawned_add, (img.rank + 1) % n, 10 + img.rank)
    yield from img.finish_end()
    yield from img.barrier()
    got = int(tbl.local_at(img.rank)[0])
    dst = (img.rank + 1) % n
    op = img.copy_async(tbl.ref(dst, slice(1, 2)),
                        np.asarray([img.rank], dtype=np.int64))
    yield op.global_done
    yield from img.barrier()
    return (total, got, int(tbl.local_at(img.rank)[1]))


def test_primitives_on_four_processes():
    """Barrier, allreduce, remote spawn under finish, remote copy_async
    put — every value lands where the ring topology says it must."""
    run, results = run_spmd(_primitives_kernel, 4, setup=_setup_table,
                            backend="process")
    for r in range(4):
        total, got, neighbor = results[r]
        assert total == 10.0  # 1+2+3+4
        assert got == 10 + (r - 1) % 4  # spawned increment from left peer
        assert neighbor == (r - 1) % 4  # copy_async put from left peer
    assert not run.dead_images


# --------------------------------------------------------------------- #
# Application oracles
# --------------------------------------------------------------------- #

def test_uts_matches_sim_oracle_and_ground_truth():
    config = UTSConfig(tree=TreeParams(b0=2.0, max_depth=4, seed=19),
                       node_cost=0.0)
    truth = sequential_tree_size(config.tree)
    sim = run_uts(4, config, seed=3)
    proc = run_uts(4, config, seed=3, backend="process")
    assert sim.total_nodes == truth
    assert proc.total_nodes == truth
    assert not proc.failed_images


def test_randomaccess_matches_sim_oracle():
    config = RAConfig(log2_local_table=6, updates_per_image=64)
    sim = run_randomaccess(4, config, verify=True)
    proc = run_randomaccess(4, config, verify=True, backend="process")
    # The update stream is seeded per-rank, so the xor checksum over the
    # final table is a fingerprint of every remote update's effect.
    assert proc.checksum == sim.checksum
    assert proc.errors == 0
    assert sim.errors == 0


def test_uts_answer_independent_of_process_count():
    """The tree count is a property of (tree, seed), not of how many
    workers carve it up — 2 processes must agree with 4 and with truth."""
    config = UTSConfig(tree=TreeParams(b0=2.0, max_depth=3, seed=5),
                       node_cost=0.0)
    truth = sequential_tree_size(config.tree)
    proc = run_uts(2, config, seed=1, backend="process")
    assert proc.total_nodes == truth


# --------------------------------------------------------------------- #
# Substrate protocol
# --------------------------------------------------------------------- #

def test_both_substrates_satisfy_the_protocol():
    """The runtime layers drive their scheduler only through the
    Substrate surface; both implementations must satisfy it."""
    from repro.backend.realtime import RealtimeScheduler
    from repro.backend.substrate import Substrate
    from repro.sim.engine import Simulator

    assert isinstance(Simulator(), Substrate)
    assert isinstance(RealtimeScheduler(), Substrate)


# --------------------------------------------------------------------- #
# Sim-only features refuse the process backend loudly
# --------------------------------------------------------------------- #

def test_sim_only_features_rejected():
    config = UTSConfig(tree=TreeParams(b0=2.0, max_depth=3, seed=5),
                       node_cost=0.0)
    with pytest.raises(ValueError, match="simulator"):
        run_uts(2, config, backend="process", racecheck=True)
