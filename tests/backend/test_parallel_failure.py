"""Fault tolerance against *real* process deaths (DESIGN.md §14).

PR-5/6 built failure detection and fault-tolerant finish against
simulated fail-stop crashes.  Here the crash is genuine: the
coordinator SIGKILLs one forked worker mid-run, the survivors' phi /
heartbeat detectors notice over the real conduit, membership gossip
converges, and the ft_epoch detector re-executes the victim's lost
spawns — the final tree count must still equal sequential ground
truth, exactly.

Timing protocol (the part that makes the test exact rather than racy):
every rank passes a barrier, rank 0 then sets an inter-process Event
the coordinator waits on, and all ranks sit in a grace-period timer
before touching any work.  The kill lands inside that window, so the
victim is provably past launch (its death is a runtime crash, not a
bootstrap failure) and provably before it processed a single node (so
"survivor counts sum to the whole tree" is an equality, not a bound).
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.apps.uts import (TreeParams, UTSConfig, sequential_tree_size,
                            uts_kernel)
from repro.backend.parallel import ProcessRunner
from repro.runtime.failure import FailureConfig

pytestmark = pytest.mark.parallel

GRACE_S = 3.0
VICTIM = 2


def _kernel_with_kill_window(img, config, ready_evt, grace):
    yield from img.barrier()
    if img.rank == 0:
        ready_evt.set()
    yield from img.compute(grace)
    return (yield from uts_kernel(img, config))


def test_sigkilled_worker_detected_and_work_recovered():
    config = UTSConfig(tree=TreeParams(b0=2.0, max_depth=4, seed=19),
                       node_cost=0.0)
    truth = sequential_tree_size(config.tree)
    ctx = multiprocessing.get_context("fork")
    ready = ctx.Event()
    detection = FailureConfig(period=0.05, timeout=0.5,
                              confirm_timeout=1.5, recover=True)
    runner = ProcessRunner(_kernel_with_kill_window, 4,
                           args=(config, ready, GRACE_S),
                           failure_detection=detection)
    runner.start()
    assert ready.wait(timeout=30), "ranks never reached the barrier"
    runner.kill_worker(VICTIM)
    run = runner.wait(timeout=60)

    assert run.dead_images == {VICTIM}
    assert run.results[VICTIM] is None
    survivors = sum(n for n in run.results if n is not None)
    # Exact: the victim died before processing any node, and recover
    # mode re-executed its lost spawns on the survivors.
    assert survivors == truth
    # The death was *observed*, not assumed: survivor detectors
    # confirmed the peer over the real conduit.
    assert run.stats["fail.confirmed"] >= 1
