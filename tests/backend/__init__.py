"""Tests for the true-parallel execution backend (DESIGN.md §14)."""
