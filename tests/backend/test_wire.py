"""Pickle round-trips for every AM payload type (DESIGN.md §14).

The process backend ships active messages as pickled frames resolved
against the *receiver's* registries.  These tests build two separate,
symmetrically-declared :class:`Machine` objects — exactly the situation
of two worker processes — and round-trip one payload of every shape the
runtime actually sends: spawn closures, copy_async descriptors,
collective contributions, and heartbeat / membership frames.  Identity
assertions (``is``) verify interning: registry objects must resolve to
the receiver's instances, never be copied.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import MachineParams
from repro.backend.wire import WireError, dump_frame, load_frame
from repro.runtime.coarray import CoarrayRef, ImageSection
from repro.runtime.event import EventRef
from repro.runtime.program import Machine


def _shipped_kernel(img, a, b):
    """Module-level generator, the only kind of function spawn ships."""
    yield
    return a + b


def _make_machine() -> Machine:
    m = Machine(4, MachineParams.uniform(4), seed=7)
    m.coarray("grid", (8,), dtype=np.float64)
    m.coarray("counts", (4,), dtype=np.int64)
    m.make_event(name="done_ev")
    m.make_lock(name="table_lock")
    return m


@pytest.fixture
def pair():
    """(sender, receiver): two machines with identical declarations,
    standing in for two worker processes."""
    return _make_machine(), _make_machine()


def roundtrip(sender: Machine, receiver: Machine, obj):
    return load_frame(receiver, dump_frame(sender, obj))


# --------------------------------------------------------------------- #
# Registry interning
# --------------------------------------------------------------------- #

def test_coarray_ref_resolves_to_receiver_instance(pair):
    a, b = pair
    ref = a.coarray_by_name("grid").ref(2, 5)
    out = roundtrip(a, b, ref)
    assert isinstance(out, CoarrayRef)
    assert out.coarray is b.coarray_by_name("grid")
    assert out.coarray is not a.coarray_by_name("grid")
    assert (out.world_rank, out.index) == (2, 5)


def test_image_section_resolves_to_receiver_instance(pair):
    a, b = pair
    sec = a.coarray_by_name("counts").on(3)
    out = roundtrip(a, b, sec)
    assert isinstance(out, ImageSection)
    assert out.coarray is b.coarray_by_name("counts")
    assert out.world_rank == 3


def test_event_ref_resolves_to_receiver_instance(pair):
    a, b = pair
    ref = EventRef(a.event_by_name("done_ev"), 1)
    out = roundtrip(a, b, ref)
    assert out.event is b.event_by_name("done_ev")
    assert out.world_rank == 1


def test_lock_and_machine_intern(pair):
    a, b = pair
    lock, machine = roundtrip(a, b, (a.lock_by_name("table_lock"), a))
    assert lock is b.lock_by_name("table_lock")
    assert machine is b


def test_world_team_resolves_by_id(pair):
    a, b = pair
    out = roundtrip(a, b, a.team_world)
    assert out is b.team_world


def test_team_created_on_miss_with_senders_id(pair):
    a, b = pair
    sub = a.intern_team(range(0, 2))
    assert sub.id not in b._teams  # receiver has not split yet
    out = roundtrip(a, b, sub)
    assert out.id == sub.id
    assert list(out.members) == [0, 1]
    # now that it exists, a second frame resolves to the same instance
    assert roundtrip(a, b, sub) is out


# --------------------------------------------------------------------- #
# Spawn payloads
# --------------------------------------------------------------------- #

def test_spawn_exec_payload_roundtrip(pair):
    """The full ``spawn.exec`` argument tuple: shipped function, args
    containing registry handles, finish wire tag, completion event."""
    a, b = pair
    grid = a.coarray_by_name("grid")
    event_ref = EventRef(a.event_by_name("done_ev"), 0)
    payload = (_shipped_kernel, (grid.ref(1, 3), 42.5), ("fin", 0, 7),
               True, event_ref, "child#7", (3, 1, 4, 1), 91)
    fn, args, key, tag, ev, name, rc_vc, spawn_id = roundtrip(a, b, payload)
    assert fn is _shipped_kernel  # module functions unpickle by name
    assert args[0].coarray is b.coarray_by_name("grid")
    assert (args[0].world_rank, args[0].index, args[1]) == (1, 3, 42.5)
    assert (key, tag, name, rc_vc, spawn_id) == (
        ("fin", 0, 7), True, "child#7", (3, 1, 4, 1), 91)
    assert ev.event is b.event_by_name("done_ev")


def test_spawn_closure_rejected_at_send_time(pair):
    a, _ = pair
    captured = 3

    def closure(img):
        yield
        return captured

    with pytest.raises(WireError, match="module-level"):
        dump_frame(a, (closure, (), ("fin", 0, 0), None, None, "c", None, 0))


def test_lambda_rejected_at_send_time(pair):
    a, _ = pair
    with pytest.raises(WireError):
        dump_frame(a, (lambda img: None,))


# --------------------------------------------------------------------- #
# copy_async descriptors
# --------------------------------------------------------------------- #

def test_copy_put_payload(pair):
    """``copy.put``: (dest_ref, key, tag, dest_event, done_token, rank)."""
    a, b = pair
    dest = a.coarray_by_name("grid").on(2)
    ev = a.event_by_name("done_ev")
    out = roundtrip(a, b, (dest, ("cp", 0, 3), None, ev, 17, 0))
    assert out[0].coarray is b.coarray_by_name("grid")
    assert out[3] is b.event_by_name("done_ev")
    assert out[1:3] + out[4:] == (("cp", 0, 3), None, 17, 0)


def test_copy_get_and_data_payloads(pair):
    a, b = pair
    src = a.coarray_by_name("counts").ref(1, 2)
    get_req = roundtrip(a, b, (src, 23, ("cp", 1, 4), False, None, 3))
    assert get_req[0].coarray is b.coarray_by_name("counts")
    data = np.arange(6, dtype=np.int64)
    token, payload, key = roundtrip(a, b, (23, data, ("cp", 1, 4)))
    assert token == 23
    np.testing.assert_array_equal(payload, data)
    assert payload.dtype == np.int64


def test_copy_fwd_payload_two_handles(pair):
    a, b = pair
    src = a.coarray_by_name("grid").on(0)
    dest = a.coarray_by_name("grid").on(3)
    out = roundtrip(a, b, (src, dest, ("cp", 2, 0), None, None, None, 5, 1))
    assert out[0].coarray is out[1].coarray is b.coarray_by_name("grid")
    assert (out[0].world_rank, out[1].world_rank) == (0, 3)


# --------------------------------------------------------------------- #
# Collective contributions, heartbeats, membership
# --------------------------------------------------------------------- #

def test_collective_contribution_payloads(pair):
    a, b = pair
    vec = np.linspace(0.0, 1.0, 16)
    out_vec = roundtrip(a, b, (a.team_world, 0, 3, vec))
    assert out_vec[0] is b.team_world
    np.testing.assert_array_equal(out_vec[3], vec)
    # scalar and structured contributions survive bit-exactly
    assert roundtrip(a, b, (7, 0.1 + 0.2)) == (7, 0.1 + 0.2)
    assert roundtrip(a, b, [("min", -3), ("max", np.int64(9))]) == \
        [("min", -3), ("max", 9)]


def test_heartbeat_and_membership_payloads(pair):
    a, b = pair
    assert roundtrip(a, b, ()) == ()  # fail.hb carries no args
    assert roundtrip(a, b, ("confirm", 3)) == ("confirm", 3)
    assert roundtrip(a, b, ("suspect", 1)) == ("suspect", 1)


# --------------------------------------------------------------------- #
# Asymmetric declarations fail loudly
# --------------------------------------------------------------------- #

def test_unknown_coarray_is_wire_error(pair):
    a, b = pair
    only_a = a.coarray("only_on_sender", (2,))
    frame = dump_frame(a, only_a.on(0))
    with pytest.raises(WireError, match="never allocated"):
        load_frame(b, frame)


def test_unknown_event_is_wire_error(pair):
    a, b = pair
    ev = a.make_event(name="sender_only_ev")
    frame = dump_frame(a, EventRef(ev, 0))
    with pytest.raises(WireError, match="declared on every process"):
        load_frame(b, frame)
