"""Corpus and findings-store tests: fingerprint dedup, persistence,
and the merge-determinism properties that make fleet results mergeable
(the corpus is keyed by choice-tree fingerprint; coverage digests are
hashlib, so nothing depends on insertion order or hash seed)."""

import subprocess
import sys

from repro.explore.fuzz.corpus import Corpus, CorpusEntry, FindingStore
from repro.explore.schedule import ChoiceRecord, Schedule


def make_schedule(choices, key="m:0->1", outcome=None):
    return Schedule([ChoiceRecord("lag", 4, c, key=key) for c in choices],
                    outcome=outcome)


class TestCorpusEntry:
    def test_features_recomputed_from_records(self):
        entry = CorpusEntry(make_schedule([1, 2]))
        assert entry.feats
        assert entry.fingerprint == make_schedule([1, 2]).fingerprint()


class TestCorpus:
    def test_dedup_by_fingerprint(self):
        corpus = Corpus()
        assert corpus.add(make_schedule([1, 0])) is not None
        assert corpus.add(make_schedule([1, 0])) is None
        assert corpus.add(make_schedule([0, 1])) is not None
        assert len(corpus) == 2

    def test_iteration_is_sorted_by_fingerprint(self):
        corpus = Corpus()
        for choices in ([3], [1], [2]):
            corpus.add(make_schedule(choices))
        fps = [e.fingerprint for e in corpus]
        assert fps == sorted(fps) == corpus.fingerprints()

    def test_persistence_round_trip(self, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus(root)
        entry = corpus.add(make_schedule([2, 1]))
        reloaded = Corpus(root)
        assert reloaded.load() == 1
        assert reloaded.fingerprints() == [entry.fingerprint]
        assert (reloaded.entries[entry.fingerprint].schedule.choices()
                == [2, 1])

    def test_merge_dir_union_is_order_independent(self, tmp_path):
        """Two workers' corpora (overlapping) union to the same corpus
        whichever merges first — and every merged entry replays from
        its own records, so the union behaves identically too."""
        a_root, b_root = str(tmp_path / "a"), str(tmp_path / "b")
        a, b = Corpus(a_root), Corpus(b_root)
        for choices in ([1], [2], [1, 2]):
            a.add(make_schedule(choices))
        for choices in ([2], [3], [2, 3]):
            b.add(make_schedule(choices))

        ab = Corpus()
        ab.merge_dir(a_root)
        ab.merge_dir(b_root)
        ba = Corpus()
        ba.merge_dir(b_root)
        ba.merge_dir(a_root)

        assert ab.fingerprints() == ba.fingerprints()
        assert len(ab) == 5                   # [2] deduped
        for fp in ab.fingerprints():
            assert (ab.entries[fp].schedule.records
                    == ba.entries[fp].schedule.records)

    def test_merge_is_idempotent(self, tmp_path):
        root = str(tmp_path / "a")
        a = Corpus(root)
        a.add(make_schedule([1]))
        merged = Corpus()
        assert merged.merge_dir(root) == 1
        assert merged.merge_dir(root) == 0

    def test_fingerprints_are_hashseed_stable(self):
        """Fingerprint and corpus order must not depend on the process
        hash seed, or two workers' corpora would not be mergeable."""
        script = (
            "from repro.explore.fuzz.corpus import Corpus\n"
            "from repro.explore.schedule import ChoiceRecord, Schedule\n"
            "c = Corpus()\n"
            "for ch in ([1, 2], [2], [0, 3]):\n"
            "    c.add(Schedule([ChoiceRecord('lag', 4, x, key='k')\n"
            "                    for x in ch]))\n"
            "print('\\n'.join(c.fingerprints()))\n"
        )
        outs = []
        for seed in ("1", "999"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]


class TestFindingStore:
    def test_dedup_by_kind_and_fingerprint(self):
        store = FindingStore()
        sched = make_schedule([1])
        assert store.add("invariant", sched) == ""   # no root: empty path
        assert store.add("invariant", make_schedule([1])) is None
        assert store.add("deadlock", make_schedule([1])) == ""
        assert len(store) == 2

    def test_artifacts_named_by_kind_and_fingerprint(self, tmp_path):
        store = FindingStore(str(tmp_path))
        sched = make_schedule([2], outcome={"kind": "invariant"})
        path = store.add("invariant", sched)
        assert path.endswith(
            f"invariant-{sched.fingerprint()[:12]}.json")
        assert Schedule.load(path).choices() == [2]

    def test_load_primes_dedup_from_disk(self, tmp_path):
        root = str(tmp_path)
        sched = make_schedule([3], outcome={"kind": "invariant"})
        FindingStore(root).add("invariant", sched)
        fresh = FindingStore(root)
        assert fresh.load() == 1
        assert fresh.add("invariant", make_schedule(
            [3], outcome={"kind": "invariant"})) is None
