"""Explorer, minimizer and oracle tests.

The synthetic targets here consume a schedule source directly (no
simulator): a "run" asks a fixed sequence of choice points and fails
according to a rule over the chosen values.  That makes the minimizer's
behaviour exactly checkable.  The integration tests then run the whole
stack against the seeded ordering-bug app.
"""

import pytest

from repro.sim.engine import ChoicePoint
from repro.explore.explorer import (
    Explorer,
    RunOutcome,
    check_replay_determinism,
    make_spmd_target,
    minimize_schedule,
)
from repro.explore.schedule import Schedule
from repro.explore.strategies import (
    DFSStrategy,
    PCTStrategy,
    RandomWalkStrategy,
)


def make_synthetic_target(n_points, fails_when, n=4):
    """A target asking ``n_points`` lag choices; fails iff
    ``fails_when(choices)``."""

    def target(source):
        choices = []
        for i in range(n_points):
            point = ChoicePoint("lag", n, key=f"msg:{i}")
            choices.append(source.choose(point))
        failed = bool(fails_when(choices))
        kind = "invariant" if failed else "ok"
        return RunOutcome(failed=failed, kind=kind,
                          message="synthetic" if failed else "",
                          fingerprint=f"fp:{tuple(choices)}",
                          sim_time=float(sum(choices)))

    return target


class TestExplorer:
    def test_stops_at_first_failure(self):
        # fails whenever the third choice is nonzero
        target = make_synthetic_target(8, lambda c: c[2] != 0)
        explorer = Explorer(target, budget=100, minimize=False)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0))
        assert report.found
        assert report.schedules_run == report.found_at + 1
        assert report.schedule.records[2].choice != 0
        assert report.outcome.kind == "invariant"

    def test_reports_not_found_within_budget(self):
        target = make_synthetic_target(4, lambda c: False)
        explorer = Explorer(target, budget=10, minimize=False)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0))
        assert not report.found
        assert report.schedules_run == 10
        assert report.schedule is None and report.minimized is None

    def test_dfs_exhaustion_ends_search_early(self):
        # one binary branchable point and no bug: baseline + 1 branch
        def target(source):
            source.choose(ChoicePoint("ready", 2, labels=("a", "b")))
            return RunOutcome(False, "ok", "", "fp", 0.0)

        explorer = Explorer(target, budget=100, minimize=False)
        report = explorer.run_strategy(DFSStrategy(max_depth=10))
        assert not report.found
        assert report.schedules_run == 2

    def test_budget_not_counted_as_failure(self):
        def target(source):
            source.choose(ChoicePoint("lag", 3, key="k"))
            return RunOutcome(False, "budget", "max_events", "fp", 0.0)

        report = Explorer(target, budget=5,
                          minimize=False).run_strategy(
                              RandomWalkStrategy(seed=0))
        assert not report.found


class TestMultiFindings:
    """``stop_on_first=False``: one sweep harvests every distinct
    failure, deduped by (kind, minimized fingerprint)."""

    def _two_bug_target(self):
        # two *different* minimal cores: choice 1 alone and choice 3
        # alone each fail; minimization separates any mixed find
        return make_synthetic_target(
            6, lambda c: c[1] != 0 or c[3] != 0)

    def test_collects_distinct_findings(self):
        explorer = Explorer(self._two_bug_target(), budget=60,
                            minimize=True, minimize_budget=300)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0),
                                       stop_on_first=False)
        assert report.found
        assert len(report.findings) >= 2
        identities = {f.identity for f in report.findings}
        assert len(identities) == len(report.findings)  # deduped
        cores = {tuple(i for i, r in enumerate(f.minimized.records)
                       if r.choice != 0)
                 for f in report.findings}
        assert (1,) in cores and (3,) in cores

    def test_max_findings_stops_the_sweep(self):
        explorer = Explorer(self._two_bug_target(), budget=60,
                            minimize=True, minimize_budget=300)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0),
                                       stop_on_first=False,
                                       max_findings=1)
        assert len(report.findings) == 1
        assert report.schedules_run < 60

    def test_duplicate_identities_collapse(self):
        # a single essential core (binary points, so the culprit has
        # only one failing value): every failing run minimizes to the
        # same fingerprint and the sweep reports exactly one finding
        target = make_synthetic_target(6, lambda c: c[2] != 0, n=2)
        explorer = Explorer(target, budget=40, minimize=True,
                            minimize_budget=300)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0),
                                       stop_on_first=False)
        assert report.found
        assert len(report.findings) == 1

    def test_back_compat_fields_mirror_first_finding(self):
        explorer = Explorer(self._two_bug_target(), budget=60,
                            minimize=True, minimize_budget=300)
        report = explorer.run_strategy(RandomWalkStrategy(seed=0),
                                       stop_on_first=False)
        first = report.findings[0]
        assert report.found_at == first.found_at
        assert report.schedule is first.schedule
        assert report.minimized is first.minimized
        assert report.to_json()["findings"]


class TestMinimizer:
    def test_shrinks_to_single_culprit(self):
        # only index 5 matters; random walks set many others too
        target = make_synthetic_target(12, lambda c: c[5] >= 1)
        report = Explorer(target, budget=50,
                          minimize=False).run_strategy(
                              RandomWalkStrategy(seed=3))
        assert report.found
        minimized = minimize_schedule(target, report.schedule, budget=300)
        assert minimized.nonzero_choices() == 1
        assert minimized.records[5].choice != 0
        assert minimized.outcome["kind"] == "invariant"

    def test_prefix_bisection_drops_tail(self):
        # failing condition only involves the first two choices; the
        # minimized artifact is re-recorded, so the tail comes back as
        # all-zero baseline records
        target = make_synthetic_target(10, lambda c: c[1] != 0)
        report = Explorer(target, budget=50,
                          minimize=False).run_strategy(
                              RandomWalkStrategy(seed=1))
        assert report.found
        minimized = minimize_schedule(target, report.schedule, budget=300)
        assert all(r.choice == 0 for r in minimized.records[2:])
        assert minimized.nonzero_choices() == 1

    def test_conjunction_keeps_both_culprits(self):
        target = make_synthetic_target(
            6, lambda c: c[1] != 0 and c[4] != 0)
        report = Explorer(target, budget=200,
                          minimize=False).run_strategy(
                              RandomWalkStrategy(seed=0))
        assert report.found
        minimized = minimize_schedule(target, report.schedule, budget=300)
        assert minimized.nonzero_choices() == 2
        assert minimized.records[1].choice != 0
        assert minimized.records[4].choice != 0

    def test_minimized_meta_and_verification(self):
        target = make_synthetic_target(8, lambda c: c[0] != 0)
        report = Explorer(target, budget=50,
                          minimize=True,
                          minimize_budget=300).run_strategy(
                              RandomWalkStrategy(seed=0))
        minimized = report.minimized
        assert minimized is not None
        assert minimized.meta["minimized"] is True
        assert minimized.meta["original_len"] == len(report.schedule)
        assert minimized.meta["probes"] > 0
        # strict replay of the artifact reproduces the fingerprint
        assert check_replay_determinism(target, minimized, times=2)

    def test_requires_failing_outcome(self):
        target = make_synthetic_target(3, lambda c: False)
        sched = Schedule([], outcome=None)
        with pytest.raises(ValueError):
            minimize_schedule(target, sched)


class TestReplayDeterminismCheck:
    def test_detects_nondeterministic_target(self):
        flips = iter("abcdef")

        def target(source):
            source.choose(ChoicePoint("lag", 2, key="k"))
            return RunOutcome(False, "ok", "", next(flips), 0.0)

        sched = Schedule(
            [],
            outcome={"fingerprint": "zzz"},
        )
        # fingerprints differ run to run -> not deterministic
        assert not check_replay_determinism(target, sched, times=2)


class TestOrderingBugIntegration:
    """The acceptance path: the seeded bug is found within budget by
    multiple strategies, minimized, and the artifact replays
    bit-identically through JSON."""

    @pytest.fixture(scope="class")
    def target(self):
        from repro.apps.ordering_bug import (
            OrderingBugConfig,
            make_ordering_bug_target,
        )
        return make_ordering_bug_target(config=OrderingBugConfig(rounds=2))

    def test_baseline_schedule_passes(self, target):
        from repro.explore.schedule import DefaultSource
        outcome = target(DefaultSource())
        assert not outcome.failed and outcome.kind == "ok"

    @pytest.mark.parametrize("strategy", [
        RandomWalkStrategy(seed=1),
        PCTStrategy(seed=2),
    ])
    def test_found_minimized_and_replayable(self, target, strategy):
        explorer = Explorer(target, budget=100, minimize=True,
                            minimize_budget=60)
        report = explorer.run_strategy(strategy)
        assert report.found
        assert report.outcome.kind == "invariant"
        minimized = report.minimized
        assert minimized is not None
        assert minimized.nonzero_choices() <= 3
        # JSON round trip preserves bit-identical replay
        loaded = Schedule.from_json(minimized.to_json())
        assert check_replay_determinism(target, loaded, times=2)

    def test_dfs_finds_it_too(self, target):
        explorer = Explorer(target, budget=200, minimize=False)
        report = explorer.run_strategy(DFSStrategy(max_depth=25))
        assert report.found
        assert report.outcome.kind == "invariant"


class TestSpmdTargetOracles:
    def test_task_failure_classified(self):
        def crashing(img):
            raise RuntimeError("boom")
            yield  # pragma: no cover - makes it a generator kernel

        from repro.explore.schedule import DefaultSource
        target = make_spmd_target(crashing, 2)
        outcome = target(DefaultSource())
        assert outcome.failed and outcome.kind == "task"
        assert "boom" in outcome.message

    def test_budget_exhaustion_classified_not_failed(self):
        def spinner(img):
            while True:
                yield from img.barrier()

        from repro.explore.schedule import DefaultSource
        target = make_spmd_target(spinner, 2, max_events=500)
        outcome = target(DefaultSource())
        assert outcome.kind == "budget"
        assert not outcome.failed
