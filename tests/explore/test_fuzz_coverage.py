"""Coverage-signal unit tests: feature extraction and the mergeable
coverage map (DESIGN.md §15)."""

import subprocess
import sys

from repro.explore.fuzz.coverage import (
    COUNT_CAP,
    PREFIX_DEPTHS,
    CoverageMap,
    fault_digest,
    features,
)
from repro.explore.schedule import ChoiceRecord


def rec(domain="lag", n=3, choice=0, key="msg:0->1", labels=()):
    return ChoiceRecord(domain, n, choice, labels=labels, key=key)


def sample_records():
    return [
        rec("fault", 4, 2, key="crash@1",
            labels=("none", "t=1", "t=2", "t=3")),
        rec("ready", 3, 1, key=None),
        rec("lag", 3, 0, key="spawn:0->2"),
        rec("lag", 3, 2, key="event.post:1->0"),
        rec("lag", 3, 1, key="event.post:1->0"),
    ]


class TestFeatures:
    def test_unigrams_and_fault_context(self):
        feats = features(sample_records())
        salt = fault_digest(sample_records())
        assert f"ctx|{salt}" in feats
        assert "u|fault|crash@1|2" in feats
        assert "u|ready||1" in feats
        assert "u|lag|event.post:1->0|2" in feats
        # lag/fault unigrams are additionally fault-salted
        assert f"s|lag|event.post:1->0|2|{salt}" in feats
        assert not any(f.startswith("s|ready") for f in feats)

    def test_count_buckets_track_key_multiplicity(self):
        feats = features(sample_records())
        assert "kc|event.post:1->0|2" in feats
        assert "kc|spawn:0->2|1" in feats
        many = [rec(key="k", choice=0)] * (COUNT_CAP + 3)
        assert f"kc|k|{COUNT_CAP}+" in features(many)

    def test_bigrams_skip_unkeyed_records(self):
        feats = features(sample_records())
        # the ready point (no key) is invisible to the bigram chain
        assert "b|crash@1|2|spawn:0->2|0" in feats

    def test_prefix_hash_depths(self):
        records = [rec(key=f"k{i}") for i in range(PREFIX_DEPTHS[1])]
        prefixes = {f for f in features(records) if f.startswith("p|")}
        assert len(prefixes) == 2  # depths 4 and 8 reached

    def test_fault_digest_is_order_independent(self):
        a = [rec("fault", 3, 1, key="crash@1"),
             rec("fault", 4, 2, key="partition@0")]
        assert fault_digest(a) == fault_digest(list(reversed(a)))
        assert fault_digest([rec("lag")]) == "nofault"

    def test_features_are_hashseed_stable(self):
        """The whole point of hashlib digests: byte-identical features
        under PYTHONHASHSEED variation (satellite for mergeable fleet
        state)."""
        script = (
            "from repro.explore.fuzz.coverage import features\n"
            "from repro.explore.schedule import ChoiceRecord\n"
            "records = [ChoiceRecord('fault', 4, 2, key='crash@1'),\n"
            "           ChoiceRecord('lag', 3, 1, key='a:0->1'),\n"
            "           ChoiceRecord('lag', 3, 2, key='b:1->0')]\n"
            "print('\\n'.join(sorted(features(records))))\n"
        )
        outs = []
        for seed in ("0", "12345"):
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONPATH": "src", "PYTHONHASHSEED": seed})
            assert proc.returncode == 0, proc.stderr
            outs.append(proc.stdout)
        assert outs[0] == outs[1]


class TestCoverageMap:
    def test_observe_reports_only_new(self):
        cov = CoverageMap()
        assert cov.observe({"a", "b"}) == {"a", "b"}
        assert cov.observe({"b", "c"}) == {"c"}
        assert cov.counts == {"a": 1, "b": 2, "c": 1}

    def test_novel_is_read_only(self):
        cov = CoverageMap()
        cov.observe({"a"})
        assert cov.novel({"a", "b"}) == {"b"}
        assert "b" not in cov

    def test_rarity_prefers_rare_features(self):
        cov = CoverageMap()
        for _ in range(9):
            cov.observe({"common"})
        cov.observe({"rare"})
        assert cov.rarity({"rare"}) > cov.rarity({"common"})

    def test_merge_is_commutative(self):
        a = CoverageMap({"x": 2, "y": 1})
        b = CoverageMap({"y": 3, "z": 1})
        ab = CoverageMap(a.counts)
        ab.merge(b)
        ba = CoverageMap(b.counts)
        ba.merge(a)
        assert ab.counts == ba.counts == {"x": 2, "y": 4, "z": 1}

    def test_json_round_trip_is_sorted(self, tmp_path):
        cov = CoverageMap({"b": 2, "a": 1})
        assert list(cov.to_json()["counts"]) == ["a", "b"]
        path = tmp_path / "cov.json"
        cov.save(path)
        assert CoverageMap.load(path).counts == cov.counts

    def test_fault_untried_lists_unseen_alternatives(self):
        records = [rec("fault", 4, 1, key="crash@1")]
        cov = CoverageMap()
        cov.observe(features(records))            # alternative 1 seen
        untried = cov.fault_untried(records)
        assert untried == {0: [0, 2, 3]}
        cov.observe({"u|fault|crash@1|0", "u|fault|crash@1|2",
                     "u|fault|crash@1|3"})
        assert cov.fault_untried(records) == {}
