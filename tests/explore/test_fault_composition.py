"""FaultPlan × ScheduleSource composition (DESIGN §10 × §12).

A plan's ``crash_choice``/``partition_choice`` menus resolve against the
machine's schedule source, so crash/partition *timing* lives in the same
recorded, replayable, minimizable choice sequence as message ordering.
These tests drive the full loop on the ``ordering_bug`` target: the
explorer searches the composed space, the recorded schedule carries both
the ``"fault"`` choices and the fault-plan config, and the emitted
artifact round-trips through JSON into an identical replay.
"""

import pytest

from repro.apps.ordering_bug import make_ordering_bug_target
from repro.explore import (
    Explorer,
    RandomWalkStrategy,
    RecordingSource,
    Schedule,
    check_replay_determinism,
)
from repro.explore.schedule import DefaultSource
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology


def _partition_plan() -> FaultPlan:
    """A partition *menu*: the schedule may split 0|1 at one of three
    times (healing shortly after), or not at all."""
    return FaultPlan().partition_choice(
        [[0], [1]], starts=[1e-4, 2e-4, 3e-4], heal_after=2e-4)


def _target(faults):
    # reliable=True so a menu-picked partition delays traffic (park +
    # retransmit) instead of losing it outright — the run completes
    # either way and only the seeded ordering bug counts as a failure.
    params = MachineParams(topology=UniformTopology(2), reliable=True)
    return make_ordering_bug_target(params=params, faults=faults)


class TestComposedSearchSpace:
    def test_fault_menu_recorded_alongside_ordering_choices(self):
        """Under the baseline schedule the menus resolve to "no fault",
        but the questions themselves are part of the recorded run."""
        target = _target(_partition_plan())
        recorder = RecordingSource(DefaultSource())
        outcome = target(recorder)
        assert not outcome.failed
        fault_records = [r for r in recorder.records if r.domain == "fault"]
        assert len(fault_records) == 1
        assert fault_records[0].key == "partition@0"
        assert fault_records[0].n == 4          # none + three start times
        assert any(r.domain != "fault" for r in recorder.records)

    def test_target_carries_fault_config(self):
        plan = _partition_plan()
        target = _target(plan)
        assert target.fault_config == plan.to_config()
        assert _target(None).fault_config is None

    def test_explorer_finds_bug_and_stamps_fault_plan(self, tmp_path):
        """The search must still find the seeded ordering bug inside the
        composed space, and the emitted artifact must carry the plan
        config plus replay deterministically."""
        plan = _partition_plan()
        target = _target(plan)
        explorer = Explorer(target, budget=500, minimize_budget=100)
        report = explorer.run_strategy(RandomWalkStrategy(seed=3))
        assert report.found, report.to_json()
        assert report.outcome.kind == "invariant"
        assert report.schedule.fault_plan == plan.to_config()
        assert report.minimized.fault_plan == plan.to_config()

        path = tmp_path / "composed_schedule.json"
        report.minimized.save(path)
        loaded = Schedule.load(path)
        assert loaded.fault_plan == plan.to_config()

        # The artifact is self-contained: rebuild the plan from the
        # schedule itself and the replay reproduces the fingerprint.
        rebuilt = _target(FaultPlan.from_config(loaded.fault_plan))
        assert check_replay_determinism(rebuilt, loaded, times=2)

    def test_crash_menu_composes_too(self):
        """A crash menu on a bystander image shares the space: picking
        the crash changes the run (image 2's result vanishes) without
        masking the baseline's clean pass."""
        plan = FaultPlan().crash_choice(2, [1e-4, 5e-4])
        params = MachineParams(topology=UniformTopology(3), reliable=True)
        target = make_ordering_bug_target(n_images=3, params=params,
                                          faults=plan)

        recorder = RecordingSource(DefaultSource())
        outcome = target(recorder)
        assert not outcome.failed
        menus = [r for r in recorder.records if r.domain == "fault"]
        assert [m.key for m in menus] == ["crash@2"]
        assert menus[0].n == 3

        class PickCrash(DefaultSource):
            def choose(self, point):
                return 1 if point.domain == "fault" else 0

        crashed = target(RecordingSource(PickCrash()))
        assert outcome.fingerprint != crashed.fingerprint


class TestResolvedFaults:
    """``FaultPlan.resolved_faults()`` reports how each menu resolved,
    with the same keys/labels the ``"fault"`` choice points carry —
    the coverage signal's fault context and the artifact's
    ``fault_picks`` field both come from it."""

    def test_picks_mirror_menu_resolutions(self):
        plan = (FaultPlan()
                .crash_choice(2, [1e-4, 5e-4])
                .partition_choice([[0], [1]], starts=[2e-4]))

        class Script(DefaultSource):
            def choose(self, point):
                if point.key == "crash@2":
                    return 2          # second time: 5e-4
                return 0              # partition: none

        plan.resolve_choices(Script())
        assert plan.resolved_faults() == {
            "crash@2": "t=0.0005",
            "partition@0": "none",
        }

    def test_no_source_resolves_everything_to_none(self):
        plan = FaultPlan().crash_choice(1, [1e-4])
        plan.resolve_choices(None)
        assert plan.resolved_faults() == {"crash@1": "none"}

    def test_outcome_carries_fault_picks(self):
        plan = FaultPlan().crash_choice(2, [1e-4, 5e-4])
        params = MachineParams(topology=UniformTopology(3), reliable=True)
        target = make_ordering_bug_target(n_images=3, params=params,
                                          faults=plan)
        outcome = target(DefaultSource())
        assert outcome.fault_picks == {"crash@2": "none"}
        assert outcome.to_json()["fault_picks"] == {"crash@2": "none"}
