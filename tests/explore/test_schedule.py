"""Unit tests for schedules, recording and replay."""

import json

import pytest

from repro.sim.engine import ChoicePoint
from repro.explore.schedule import (
    SCHEDULE_SCHEMA,
    ChoiceRecord,
    DefaultSource,
    RecordingSource,
    ReplayDivergence,
    ReplaySource,
    Schedule,
    as_schedule_source,
)


def _point(domain="ready", n=3, labels=(), key=None, branch_hint=True):
    return ChoicePoint(domain, n, labels=labels, key=key,
                       branch_hint=branch_hint)


class TestChoiceRecord:
    def test_json_round_trip(self):
        rec = ChoiceRecord("ready", 3, 2, labels=("task:1", "task:2",
                                                  "task:3"),
                           key=None, branch_hint=True)
        back = ChoiceRecord.from_json(rec.to_json())
        assert back == rec
        assert back.labels == rec.labels

    def test_json_round_trip_lag(self):
        rec = ChoiceRecord("lag", 4, 1, key="copy:0->1", branch_hint=False)
        back = ChoiceRecord.from_json(rec.to_json())
        assert back == rec
        assert back.key == "copy:0->1"
        assert back.branch_hint is False

    def test_replace_keeps_identity(self):
        rec = ChoiceRecord("lag", 4, 3, key="k")
        zeroed = rec.replace(0)
        assert zeroed.choice == 0
        assert (zeroed.domain, zeroed.n, zeroed.key) == ("lag", 4, "k")
        assert rec.choice == 3  # original untouched


class TestRecordingSource:
    def test_records_every_decision(self):
        recorder = RecordingSource(DefaultSource())
        assert recorder.choose(_point(n=3)) == 0
        assert recorder.choose(_point("lag", 4, key="x:0->1")) == 0
        assert [r.domain for r in recorder.records] == ["ready", "lag"]
        assert [r.choice for r in recorder.records] == [0, 0]

    def test_proxies_lag_parameters(self):
        inner = DefaultSource()
        inner.lag_steps, inner.lag_slack = 5, 0.6
        recorder = RecordingSource(inner)
        assert (recorder.lag_steps, recorder.lag_slack) == (5, 0.6)


class TestReplaySource:
    def test_replays_choices_then_baseline(self):
        records = [ChoiceRecord("ready", 3, 2), ChoiceRecord("lag", 4, 1)]
        replay = ReplaySource(records)
        assert replay.choose(_point(n=3)) == 2
        assert replay.choose(_point("lag", 4)) == 1
        assert replay.choose(_point(n=5)) == 0  # past the recording
        assert replay.position == 3

    def test_strict_rejects_domain_mismatch(self):
        replay = ReplaySource([ChoiceRecord("ready", 3, 1)], strict=True)
        with pytest.raises(ReplayDivergence):
            replay.choose(_point("lag", 3))

    def test_strict_rejects_count_mismatch(self):
        replay = ReplaySource([ChoiceRecord("ready", 3, 1)], strict=True)
        with pytest.raises(ReplayDivergence):
            replay.choose(_point(n=2))

    def test_lenient_clamps(self):
        replay = ReplaySource([ChoiceRecord("ready", 5, 4)], strict=False)
        assert replay.choose(_point(n=2)) == 1  # clamped into range


class TestSchedule:
    def _schedule(self):
        return Schedule(
            [ChoiceRecord("ready", 3, 1, labels=("a", "b", "c")),
             ChoiceRecord("lag", 4, 0, key="x:0->1"),
             ChoiceRecord("lag", 4, 2, key="y:1->0")],
            meta={"strategy": "test"},
            fault_plan={"drop": 0.1},
            outcome={"failed": True, "kind": "invariant",
                     "fingerprint": "abc"},
            lag_steps=4, lag_slack=0.5,
        )

    def test_json_round_trip(self):
        sched = self._schedule()
        back = Schedule.from_json(json.loads(json.dumps(sched.to_json())))
        assert back.choices() == sched.choices()
        assert back.records == sched.records
        assert back.meta == sched.meta
        assert back.fault_plan == sched.fault_plan
        assert back.outcome == sched.outcome
        assert (back.lag_steps, back.lag_slack) == (4, 0.5)

    def test_save_load(self, tmp_path):
        path = tmp_path / "schedule.json"
        sched = self._schedule()
        sched.save(path)
        back = Schedule.load(path)
        assert back.records == sched.records

    def test_version_check(self):
        with pytest.raises(ValueError):
            Schedule.from_json({"version": 99, "choices": []})

    def test_schema_field_emitted(self):
        doc = self._schedule().to_json()
        assert doc["schema"] == SCHEDULE_SCHEMA

    def test_future_schema_refused(self):
        doc = self._schedule().to_json()
        doc["schema"] = SCHEDULE_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            Schedule.from_json(doc)
        doc["schema"] = "not-an-int"
        with pytest.raises(ValueError):
            Schedule.from_json(doc)

    def test_legacy_artifact_without_schema_loads(self):
        # pre-schema artifacts are treated as schema 1 (compatible)
        doc = self._schedule().to_json()
        del doc["schema"]
        back = Schedule.from_json(doc)
        assert back.records == self._schedule().records

    def test_fingerprint_tracks_replay_inputs_only(self):
        sched = self._schedule()
        twin = Schedule(list(sched.records), meta={"other": 1},
                        outcome={"kind": "x"}, lag_steps=4,
                        lag_slack=0.5)
        # meta/outcome are not replay inputs; records and lag are
        assert twin.fingerprint() == sched.fingerprint()
        other = Schedule(
            [sched.records[0].replace((sched.records[0].choice + 1)
                                      % sched.records[0].n),
             *sched.records[1:]],
            lag_steps=4, lag_slack=0.5)
        assert other.fingerprint() != sched.fingerprint()
        relagged = Schedule(list(sched.records), lag_steps=5,
                            lag_slack=0.5)
        assert relagged.fingerprint() != sched.fingerprint()

    def test_nonzero_choices(self):
        assert self._schedule().nonzero_choices() == 2

    def test_source_inherits_lag_parameters(self):
        source = self._schedule().source()
        assert (source.lag_steps, source.lag_slack) == (4, 0.5)


class TestCoercion:
    def test_schedule_becomes_strict_replay(self):
        sched = Schedule([ChoiceRecord("ready", 2, 1)])
        source = as_schedule_source(sched)
        assert isinstance(source, ReplaySource)
        with pytest.raises(ReplayDivergence):
            source.choose(_point(n=3))

    def test_sources_pass_through(self):
        src = DefaultSource()
        assert as_schedule_source(src) is src

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_schedule_source(42)
