"""Unit tests for the exploration strategies.

Strategies are exercised against hand-built ChoicePoint streams — no
simulator needed: a run is just a sequence of choose() calls, and DFS
additionally gets source.points/path fed back through observe().
"""

from repro.sim.engine import ChoicePoint
from repro.explore.strategies import (
    DFSStrategy,
    PCTSource,
    PCTStrategy,
    RandomWalkSource,
    RandomWalkStrategy,
)


def _ready(n, labels=None):
    labels = tuple(labels) if labels else tuple(f"task:{i}" for i in range(n))
    return ChoicePoint("ready", n, labels=labels)


def _lag(n, key="copy:0->1", branch_hint=True):
    return ChoicePoint("lag", n, key=key, branch_hint=branch_hint)


class TestRandomWalk:
    def test_choices_stay_in_range(self):
        src = RandomWalkSource(seed=0)
        for n in (1, 2, 3, 7):
            for _ in range(50):
                assert 0 <= src.choose(_ready(n)) < n

    def test_same_seed_same_walk(self):
        points = [_ready(3), _lag(4), _ready(2), _lag(4, "x:1->0")]
        walk_a = [RandomWalkSource(seed=9).choose(p) for p in points]
        walk_b = [RandomWalkSource(seed=9).choose(p) for p in points]
        assert walk_a == walk_b

    def test_strategy_varies_seed_per_run(self):
        strat = RandomWalkStrategy(seed=0)
        points = [_ready(5) for _ in range(20)]
        runs = {tuple(strat.begin_run(i).choose(p) for p in points)
                for i in range(4)}
        assert len(runs) > 1  # different runs explore different walks
        assert not strat.exhausted  # random walk never gives up


class TestPCT:
    def test_highest_priority_label_wins_consistently(self):
        src = PCTSource(seed=1, change_points=0)
        first = src.choose(_ready(3, ["a", "b", "c"]))
        # same candidate set, any order: the same label must win
        perms = [["a", "b", "c"], ["c", "a", "b"], ["b", "c", "a"]]
        winner = perms[0][first]
        for perm in perms[1:]:
            assert perm[src.choose(_ready(3, perm))] == winner

    def test_demotion_changes_winner(self):
        labels = ["a", "b", "c"]
        plain = PCTSource(seed=5, change_points=0)
        baseline = [plain.choose(_ready(3, labels)) for _ in range(30)]
        assert len(set(baseline)) == 1  # stable winner without demotion

        demoting = PCTSource(seed=5, change_points=3, horizon=30)
        demoted = [demoting.choose(_ready(3, labels)) for _ in range(30)]
        assert demoted != baseline  # a change point reshuffled priorities

    def test_new_labels_get_priorities_lazily(self):
        src = PCTSource(seed=2, change_points=0)
        src.choose(_ready(2, ["a", "b"]))
        pick = src.choose(_ready(3, ["a", "b", "z"]))
        assert 0 <= pick < 3  # unseen label handled without error

    def test_strategy_runs_are_seed_deterministic(self):
        points = [_ready(3, ["a", "b", "c"]) for _ in range(10)]
        run_a = [PCTStrategy(seed=4).begin_run(2).choose(p) for p in points]
        run_b = [PCTStrategy(seed=4).begin_run(2).choose(p) for p in points]
        assert run_a == run_b


class TestDFS:
    def _drive(self, strat, tree, max_runs=100):
        """Run the DFS loop over a synthetic choice tree.

        `tree(choices) -> list of ChoicePoints` produces the points a
        run with that choice prefix would encounter.  Returns the list
        of explored choice sequences.
        """
        explored = []
        for i in range(max_runs):
            if strat.exhausted:
                break
            src = strat.begin_run(i)
            choices = []
            while True:
                points = tree(choices)
                if len(points) <= len(choices):
                    break
                choices.append(src.choose(points[len(choices)]))
            explored.append(tuple(choices))
            strat.observe(None, None)
        return explored

    def test_enumerates_all_paths_then_exhausts(self):
        # two binary branch points with distinct labels -> 4 paths
        def tree(_choices):
            return [_ready(2, ["a", "b"]), _ready(2, ["c", "d"])]

        explored = self._drive(DFSStrategy(max_depth=10), tree)
        assert set(explored) == {(0, 0), (0, 1), (1, 0), (1, 1)}
        assert len(explored) == 4  # no duplicates, then exhausted

    def test_commuting_alternatives_skipped(self):
        # both candidates carry the same label: picking either commutes,
        # so DFS must not branch there
        def tree(_choices):
            return [_ready(2, ["same", "same"]), _ready(2, ["a", "b"])]

        explored = self._drive(DFSStrategy(max_depth=10), tree)
        assert set(explored) == {(0, 0), (0, 1)}

    def test_unbranchable_points_not_branched(self):
        def tree(_choices):
            return [_lag(3, branch_hint=False), _ready(2, ["a", "b"])]

        explored = self._drive(DFSStrategy(max_depth=10), tree)
        assert {c[0] for c in explored} == {0}
        assert {c[1] for c in explored} == {0, 1}

    def test_max_depth_bounds_branching(self):
        def tree(_choices):
            return [_ready(2, [f"p{d}a", f"p{d}b"]) for d in range(5)]

        explored = self._drive(DFSStrategy(max_depth=2), tree)
        # only the first two positions branch: 4 paths, tail always 0
        assert len(explored) == 4
        assert all(c[2:] == (0, 0, 0) for c in explored)

    def test_divergent_subtrees(self):
        # the first choice changes what points exist afterwards
        def tree(choices):
            points = [_ready(2, ["left", "right"])]
            if choices and choices[0] == 1:
                points.append(_ready(3, ["x", "y", "z"]))
            return points

        explored = self._drive(DFSStrategy(max_depth=10), tree)
        assert set(explored) == {(0,), (1, 0), (1, 1), (1, 2)}
