"""Fuzzing-service tests: target specs, inline determinism, the worker
pool, finding verification/persistence, and the committed findings
artifact (which must keep replaying as the engine evolves)."""

import os

import pytest

from repro.explore import Schedule, check_replay_determinism
from repro.explore.fuzz import (
    FuzzConfig,
    FuzzService,
    TargetSpec,
)

ORDERING_SPEC = TargetSpec(
    "repro.apps.ordering_bug:make_ordering_bug_target", {})

COMMITTED_FINDING = os.path.join(
    os.path.dirname(__file__), os.pardir, "data", "findings",
    "invariant-f8d9bad3cbfc.json")


class TestTargetSpec:
    def test_build_and_json_round_trip(self):
        spec = TargetSpec.from_json(ORDERING_SPEC.to_json())
        target = spec.build()
        from repro.explore.schedule import DefaultSource
        assert not target(DefaultSource()).failed

    def test_rejects_malformed_factory(self):
        with pytest.raises(ValueError):
            TargetSpec("no.colon.here").build()


class TestInlineService:
    def _run(self, **overrides):
        kwargs = dict(budget=200, workers=0, seed=0, sync_every=25,
                      max_findings=1, minimize_budget=120)
        kwargs.update(overrides)
        return FuzzService(ORDERING_SPEC, FuzzConfig(**kwargs)).run()

    def test_finds_ordering_bug_verified(self):
        report = self._run()
        assert report.found
        finding = report.findings[0]
        assert finding.kind == "invariant"
        assert finding.verified
        assert finding.minimized.nonzero_choices() <= 3
        assert report.schedules_run <= 200
        assert report.corpus_size > 0
        assert report.coverage_features > 0

    def test_deterministic_for_a_seed(self):
        a, b = self._run(), self._run()
        assert a.schedules_run == b.schedules_run
        assert ([f.fingerprint for f in a.findings]
                == [f.fingerprint for f in b.findings])
        assert a.first_find_at == b.first_find_at

    def test_max_findings_caps_collection(self):
        report = self._run(max_findings=1, budget=300)
        assert len(report.findings) == 1

    def test_findings_persist_and_replay_from_disk(self, tmp_path):
        findings_dir = str(tmp_path / "findings")
        report = FuzzService(
            ORDERING_SPEC,
            FuzzConfig(budget=200, workers=0, seed=0, max_findings=1,
                       minimize_budget=120),
            findings_dir=findings_dir).run()
        assert report.found
        path = report.findings[0].path
        assert path and os.path.exists(path)
        loaded = Schedule.load(path)
        # the artifact embeds everything replay needs (ordering_bug has
        # no fault menus, so its fault plan is legitimately absent)
        assert loaded.outcome["kind"] == "invariant"
        assert loaded.lag_steps >= 2
        target = ORDERING_SPEC.build()
        assert check_replay_determinism(target, loaded, times=2)

    def test_corpus_resumes_from_disk(self, tmp_path):
        corpus_dir = str(tmp_path / "corpus")
        first = FuzzService(
            ORDERING_SPEC, FuzzConfig(budget=60, workers=0, seed=0),
            corpus_dir=corpus_dir)
        first.run()
        assert len(first.corpus) > 0
        resumed = FuzzService(
            ORDERING_SPEC, FuzzConfig(budget=1, workers=0, seed=1),
            corpus_dir=corpus_dir)
        assert (resumed.corpus.fingerprints()
                == first.corpus.fingerprints())
        # resumed coverage is seeded from the corpus entries
        assert len(resumed.coverage) > 0


class TestPoolService:
    def test_two_workers_find_and_verify(self):
        config = FuzzConfig(budget=300, workers=2, seed=0,
                            sync_every=25, max_findings=1,
                            minimize_budget=120)
        report = FuzzService(ORDERING_SPEC, config).run()
        assert report.workers == 2
        assert report.found
        finding = report.findings[0]
        assert finding.verified and finding.kind == "invariant"
        # pool findings replay in the parent like inline ones
        target = ORDERING_SPEC.build()
        assert check_replay_determinism(target, finding.minimized,
                                        times=2)


class TestCommittedFinding:
    """The repo ships one recovery-bug finding produced by the service;
    it must replay bit-identically from its JSON alone (also exercised
    by the CI fuzz-smoke job)."""

    def test_replays_and_reproduces_the_failure(self):
        from repro.apps.recovery_bug import make_recovery_bug_target
        schedule = Schedule.load(COMMITTED_FINDING)
        assert schedule.outcome["kind"] == "invariant"
        # minimization carried the replay metadata onto the artifact
        assert schedule.fault_plan["crash_choices"]
        assert schedule.lag_steps == 4
        target = make_recovery_bug_target()
        assert check_replay_determinism(target, schedule, times=2)
        outcome = target(schedule.source(strict=True))
        assert outcome.failed and outcome.kind == "invariant"
        assert "double-counted" in outcome.message
