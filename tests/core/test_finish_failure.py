"""Finish-counter failure reconciliation (DESIGN §11.4) and the
stall-report failure diagnostics."""

import pytest

from repro.core.finish import stall_report
from repro.net.faults import FaultPlan
from repro.runtime.failure import FailureConfig
from repro.runtime.program import Machine
from repro.runtime.team import Team
from repro.core.finish import FinishFrame


def make_frame(n=4):
    machine = Machine(n, seed=0)
    team = machine.team_world
    return machine, FinishFrame(machine, 0, team, 0)


class TestCounterStamps:
    def test_send_deliver_pair_tracks_destination(self):
        _m, fr = make_frame()
        stamp = fr.on_send(dst=2)
        assert stamp == (False, 0, 2)
        fr.on_delivered(stamp)
        assert fr.even.sent == 1 and fr.even.delivered == 1
        assert fr.delivered_to == {2: 1}
        assert fr.sent_to == {2: 1}

    def test_receive_complete_pair_tracks_source(self):
        _m, fr = make_frame()
        stamp = fr.on_received(False, src=3)
        fr.on_completed(stamp)
        assert fr.even.received == 1 and fr.even.completed == 1
        assert fr.received_from == {3: 1}
        assert fr.completed_from == {3: 1}

    def test_send_failed_uncounts_exactly_one(self):
        m, fr = make_frame()
        s1 = fr.on_send(dst=2)
        s2 = fr.on_send(dst=2)
        fr.on_delivered(s1)
        fr.on_send_failed(s2)
        assert fr.even.sent == 1 and fr.even.delivered == 1
        assert fr.c_sent == 1
        assert fr.sent_to[2] == 1
        assert m.stats["finish.sends_failed"] == 1
        assert fr.even.locally_quiet()


class TestReconcileFailure:
    def test_delivered_pairs_subtracted_wholesale(self):
        m, fr = make_frame()
        for _ in range(3):
            fr.on_delivered(fr.on_send(dst=2))
        fr.on_delivered(fr.on_send(dst=1))
        fr.reconcile_failure(2)
        assert fr.even.sent == 1 and fr.even.delivered == 1
        assert fr.c_sent == 1 and fr.c_delivered == 1
        assert 2 in fr.reconciled
        assert m.stats["finish.reconciled"] == 1
        assert fr.even.locally_quiet()

    def test_receives_from_dead_peer_subtracted(self):
        _m, fr = make_frame()
        stamp = fr.on_received(False, src=2)
        fr.on_completed(stamp)
        fr.on_completed(fr.on_received(False, src=1))
        fr.reconcile_failure(2)
        assert fr.even.received == 1 and fr.even.completed == 1

    def test_idempotent(self):
        m, fr = make_frame()
        fr.on_delivered(fr.on_send(dst=2))
        fr.reconcile_failure(2)
        snap = fr.snapshot()
        fr.reconcile_failure(2)
        assert fr.snapshot() == snap
        assert m.stats["finish.reconciled"] == 1

    def test_inflight_send_resolves_via_send_failed_not_reconcile(self):
        """A counted send still in flight at reconcile time is NOT
        subtracted (only delivered pairs are); its later PeerFailedError
        resolution uncounts it exactly once — never twice."""
        _m, fr = make_frame()
        stamp = fr.on_send(dst=2)          # in flight, not delivered
        fr.reconcile_failure(2)
        assert fr.even.sent == 1           # untouched by the reconcile
        fr.on_send_failed(stamp)
        assert fr.even.sent == 0
        assert fr.even.locally_quiet()

    def test_post_reconcile_events_naming_peer_dropped(self):
        _m, fr = make_frame()
        stamp = fr.on_send(dst=2)
        fr.on_delivered(stamp)
        fr.reconcile_failure(2)
        fr.on_delivered(stamp)             # late ack from the dead peer
        rstamp = fr.on_received(False, src=2)
        fr.on_completed(rstamp)
        assert fr.even.sent == 0 and fr.even.delivered == 0
        assert fr.even.received == 0 and fr.even.completed == 0

    def test_ledger_entries_for_dead_destination_popped(self):
        _m, fr = make_frame()
        fr.ledger.append((0, 2, None, (), "a"))
        fr.ledger.append((1, 1, None, (), "b"))
        fr.ledger.append((2, 2, None, (), "c"))
        lost = fr.reconcile_failure(2)
        assert [e[0] for e in lost] == [0, 2]
        assert [e[0] for e in fr.ledger] == [1]

    def test_folds_odd_into_even_first(self):
        """Reconciliation collapses both epochs so the subtraction has a
        single target and any in-flight wave restarts."""
        _m, fr = make_frame()
        fr.on_delivered(fr.on_send(dst=2))
        fr.advance_to_odd()
        fr.on_delivered(fr.on_send(dst=2))  # counted in the odd epoch
        gen0 = fr.gen
        fr.reconcile_failure(2)
        assert fr.gen == gen0 + 1
        assert not fr.in_odd
        assert fr.even.sent == 0 and fr.even.delivered == 0


class TestLazyFrameSeeding:
    def test_frame_created_after_confirmation_starts_reconciled(self):
        machine = Machine(4, seed=0, failure_detection=FailureConfig())
        machine.network.confirm_dead(3)
        fr = FinishFrame(machine, 0, machine.team_world, 5)
        assert 3 in fr.reconciled
        fr.on_delivered(fr.on_send(dst=3))
        assert fr.even.sent == 1 and fr.even.delivered == 0


class TestStallReportFailureDiagnostics:
    def test_lists_dead_and_suspected_images(self):
        machine = Machine(4, seed=0, failure_detection=FailureConfig())
        machine.kill_image(1)
        machine.failure.publish(1)
        report = stall_report(machine, blocked=[0])
        assert "dead images: [1]" in report
        assert "suspected images: [1]" in report

    def test_lists_pending_spawn_reply_and_event_wait_handles(self):
        """Wedge one image on an event that is never notified and leave
        a reliable spawn message unacked; the report must break down
        both pending-handle kinds per image."""
        from repro.net.topology import MachineParams
        from repro.net.transport import Message

        def kernel(img):
            ev = img.machine.event_by_name("ev")
            if img.rank == 1:
                yield from img.event_wait(ev)
            else:
                yield from img.compute(1e-6)

        machine = Machine(2, seed=0,
                          params=MachineParams.uniform(2, reliable=True))
        machine.make_event(name="ev")
        machine.launch(kernel)
        try:
            machine.sim.run(max_events=200_000)
        except Exception:
            pass  # the never-notified wait deadlocks; state is what we want
        machine.network.send(Message(1, 0, 64, None, kind="spawn"),
                             want_ack=True)
        report = stall_report(machine, blocked=[1])
        assert "image 1 pending handles:" in report
        assert "spawn_replies=1" in report
        assert "event_waits=1" in report
