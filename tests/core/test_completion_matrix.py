"""Assertions for the paper's Fig. 4 completion-semantics matrix.

Each test pins one cell of the table: operation type x image role x
completion level (local data / local operation / global).
"""

import numpy as np
import pytest


def _setup(m):
    m.coarray("T", shape=8, dtype=np.float64)


class TestAsyncBroadcastRow:
    def test_root_local_data_means_buffer_reusable(self, spmd, fast_params):
        """Root row: at local data completion the root's buffer can be
        safely modified without corrupting the broadcast."""

        def kernel(img):
            buf = np.zeros(4)
            if img.rank == 0:
                buf[:] = 5.0
                op = img.broadcast_async(buf, root=0)
                yield op.local_data
                buf[:] = -1.0  # overwrite immediately after LDC
            else:
                op = img.broadcast_async(buf, root=0)
                yield op.local_data
            yield from img.barrier()
            return buf.tolist()

        _m, results = spmd(kernel, n=4, params=fast_params(4))
        # every participant still received the original data
        for r in range(1, 4):
            assert results[r] == [5.0] * 4

    def test_participant_local_data_means_data_readable(self, spmd):
        def kernel(img):
            buf = np.zeros(4)
            if img.rank == 0:
                buf[:] = 9.0
            op = img.broadcast_async(buf, root=0)
            yield op.local_data
            return buf.tolist()

        _m, results = spmd(kernel, n=4)
        assert results == [[9.0] * 4] * 4

    def test_local_op_means_pairwise_comm_complete(self, spmd, fast_params):
        """Local operation completion on any image: its sends are acked
        and its receive happened — strictly later than local data on an
        interior node."""
        times = {}

        def kernel(img):
            buf = np.zeros(4)
            op = img.broadcast_async(buf, root=0)
            yield op.local_data
            t_ld = img.now
            yield op.local_op
            times[img.rank] = (t_ld, img.now)
            yield from img.barrier()

        spmd(kernel, n=8, params=fast_params(8))
        for rank, (t_ld, t_lo) in times.items():
            assert t_ld <= t_lo
        # rank 1 is an interior node (forwards to children): its ack wait
        # makes local_op strictly later than local_data
        assert times[1][0] < times[1][1]

    def test_global_completion_via_finish(self, spmd):
        """Finish column: after end finish the broadcast data is ready on
        every participating image."""

        def kernel(img):
            buf = np.zeros(4)
            if img.rank == 0:
                buf[:] = 3.0
            yield from img.finish_begin()
            img.broadcast_async(buf, root=0)
            yield from img.finish_end()
            return buf.tolist()

        _m, results = spmd(kernel, n=8)
        assert results == [[3.0] * 4] * 8


class TestAsyncCopyRow:
    def test_reading_from_local_buffer_ldc_means_source_writable(
            self, spmd, fast_params):
        """Copy row 1: local data completion of a copy reading a local
        buffer means the source may be overwritten."""

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                src = np.full(8, 1.0)
                op = img.copy_async(T.ref(1), src)
                yield op.local_data
                src[:] = -7.0  # must not corrupt the in-flight copy
                yield op.global_done
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup,
                           params=fast_params(2))
        assert results[1] == [1.0] * 8

    def test_writing_to_local_buffer_ldc_means_dest_readable(self, spmd):
        """Copy row 2: local data completion of a copy writing a local
        buffer means the destination may be read."""

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            T.local_at(img.rank)[:] = img.rank + 1.0
            yield from img.barrier()
            if img.rank == 0:
                dst = np.zeros(8)
                op = img.copy_async(dst, T.ref(1))
                yield op.local_data
                return dst.tolist()
            yield from img.compute(1e-5)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup)
        assert results[0] == [2.0] * 8


class TestSpawnRow:
    def test_initiator_ldc_means_args_evaluated(self, spmd, fast_params):
        """Spawn row: at local data completion the initiator's argument
        buffers may be overwritten."""
        seen = []

        def remote(img, payload):
            seen.append(payload.tolist())
            yield from img.compute(1e-7)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                args = np.array([1.0, 2.0])
                op = yield from img.spawn(remote, 1, args)
                yield op.local_data
                args[:] = -1.0
            yield from img.finish_end()

        spmd(kernel, n=2, params=fast_params(2))
        assert seen == [[1.0, 2.0]]

    def test_local_op_means_spawn_complete_on_target(self, spmd,
                                                     fast_params):
        """Spawn row, events column: local operation completion is the
        spawn's delivery at the target image."""
        delivery_time = {}

        def remote(img):
            delivery_time.setdefault("arrived", img.now)
            yield from img.compute(1e-4)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                op = yield from img.spawn(remote, 1)
                yield op.local_op
                delivery_time["acked"] = img.now
            yield from img.finish_end()

        spmd(kernel, n=2, params=fast_params(2))
        # ack comes after arrival but before the 100us execution finishes
        assert delivery_time["arrived"] < delivery_time["acked"]
        assert delivery_time["acked"] < delivery_time["arrived"] + 1e-4

    def test_finish_covers_transitively_spawned_implicit_ops(self, spmd):
        """Spawn row, finish column: any implicit async op initiated by
        the shipped function is globally complete at end finish."""

        def remote(img):
            T = img.machine.coarray_by_name("T")
            img.copy_async(T.ref(0), np.full(8, 6.0))  # implicit
            yield from img.compute(1e-7)

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()
            return T.local_at(0).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup)
        assert results[0] == [6.0] * 8
        assert results[1] == [6.0] * 8


class TestCompletionOrderInvariant:
    @pytest.mark.parametrize("case", ["put", "get", "forward"])
    def test_ld_le_lo_le_global(self, spmd, fast_params, case):
        order = {}

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.barrier()
            if img.rank == 0:
                if case == "put":
                    op = img.copy_async(T.ref(1), np.ones(8))
                elif case == "get":
                    op = img.copy_async(np.zeros(8), T.ref(1))
                else:
                    op = img.copy_async(T.ref(2), T.ref(1))
                for name, fut in (("ld", op.local_data),
                                  ("lo", op.local_op),
                                  ("gd", op.global_done)):
                    fut.add_done_callback(
                        lambda _f, n=name: order.setdefault(n, img.now))
                yield op.global_done
            yield from img.barrier()

        spmd(kernel, n=3, setup=_setup, params=fast_params(3))
        assert order["ld"] <= order["lo"] <= order["gd"]
