"""Tests for asynchronous collectives (paper §II-C.3)."""

import numpy as np
import pytest


class TestBroadcastAsync:
    def test_delivers_to_all(self, spmd):
        def kernel(img):
            buf = np.zeros(8)
            if img.rank == 2:
                buf[:] = np.arange(8)
            op = img.broadcast_async(buf, root=2)
            yield op.local_data
            return buf.tolist()

        _m, results = spmd(kernel, n=5)
        assert results == [list(map(float, range(8)))] * 5

    def test_src_event_signals_local_data(self, spmd):
        def setup(m):
            m.make_event(name="srcE")

        def kernel(img):
            ev = img.machine.event_by_name("srcE")
            buf = np.full(4, float(img.rank == 0))
            img.broadcast_async(buf, root=0, src_event=ev)
            yield from img.event_wait(ev)
            return buf.tolist()

        _m, results = spmd(kernel, n=4, setup=setup)
        assert results == [[1.0] * 4] * 4

    def test_local_event_signals_local_op(self, spmd):
        def setup(m):
            m.make_event(name="localE")

        def kernel(img):
            ev = img.machine.event_by_name("localE")
            buf = np.zeros(4)
            img.broadcast_async(buf, root=0, local_event=ev)
            yield from img.event_wait(ev)
            return img.now

        m, results = spmd(kernel, n=8, setup=setup)
        assert all(t > 0 for t in results)

    def test_overlap_with_computation(self, spmd, fast_params):
        """The point of async collectives: computation proceeds while the
        broadcast is in flight."""

        def kernel(img):
            buf = np.full(4, float(img.rank == 0))
            op = img.broadcast_async(buf, root=0)
            yield from img.compute(1e-5)  # overlapped work
            t_work = img.now
            yield op.local_op
            return (t_work, img.now)

        _m, results = spmd(kernel, n=4, params=fast_params(4))
        t_work, t_op = results[0]
        # the broadcast finished under the computation (no extra wait at root)
        assert t_op == pytest.approx(t_work)

    def test_explicit_broadcast_not_finish_counted(self, spmd):
        def setup(m):
            m.make_event(name="e")

        def kernel(img):
            ev = img.machine.event_by_name("e")
            buf = np.zeros(2)
            yield from img.finish_begin()
            frame = img.machine.image_state(img.rank).finish_stack[-1]
            img.broadcast_async(buf, root=0, local_event=ev)
            counted = frame.c_sent
            yield from img.finish_end()
            yield from img.event_wait(ev)
            return counted

        _m, results = spmd(kernel, n=2, setup=setup)
        assert results[0] == 0


class TestReduceAllreduceAsync:
    def test_reduce_to_root_buffer(self, spmd):
        def kernel(img):
            recv = np.zeros(1)
            op = img.reduce_async(float(img.rank + 1), recvbuf=recv, root=0)
            yield op.local_op
            yield from img.barrier()
            return recv[0]

        _m, results = spmd(kernel, n=4)
        assert results[0] == 10.0
        assert results[1] == 0.0

    def test_allreduce_async_everyone_gets_result(self, spmd):
        def kernel(img):
            out = np.zeros(1)
            op = img.allreduce_async(float(img.rank), result_buf=out)
            yield op.local_data
            return out[0]

        _m, results = spmd(kernel, n=6)
        assert results == [15.0] * 6

    def test_allreduce_async_max(self, spmd):
        def kernel(img):
            out = np.zeros(1)
            op = img.allreduce_async(float(img.rank * 3 % 7),
                                     result_buf=out, op="max")
            yield op.local_data
            return out[0]

        _m, results = spmd(kernel, n=5)
        assert results == [max(r * 3 % 7 for r in range(5))] * 5

    def test_barrier_async(self, spmd):
        def kernel(img):
            yield from img.compute((img.rank + 1) * 1e-5)
            op = img.barrier_async()
            yield op.local_op
            return img.now

        _m, results = spmd(kernel, n=4)
        # nobody passes the async barrier before the slowest arrives
        assert min(results) >= 4e-5


class TestCompositeCollectives:
    def test_gather_async(self, spmd):
        def kernel(img):
            op = img.gather_async(img.rank * 2, root=1)
            result = yield op.global_done
            yield from img.barrier()
            return result

        _m, results = spmd(kernel, n=3)
        assert results[1] == [0, 2, 4]
        assert results[0] is None

    def test_scatter_async(self, spmd):
        def kernel(img):
            values = list(range(0, 40, 10)) if img.rank == 0 else None
            op = img.scatter_async(values, root=0)
            return (yield op.global_done)

        _m, results = spmd(kernel, n=4)
        assert results == [0, 10, 20, 30]

    def test_allgather_async(self, spmd):
        def kernel(img):
            op = img.allgather_async(img.rank ** 2)
            return (yield op.global_done)

        _m, results = spmd(kernel, n=4)
        assert results == [[0, 1, 4, 9]] * 4

    def test_alltoall_async(self, spmd):
        def kernel(img):
            op = img.alltoall_async([f"{img.rank}->{j}"
                                     for j in range(img.nimages)])
            return (yield op.global_done)

        _m, results = spmd(kernel, n=3)
        assert results[2] == ["0->2", "1->2", "2->2"]

    def test_scan_async(self, spmd):
        def kernel(img):
            op = img.scan_async(img.rank + 1)
            return (yield op.global_done)

        _m, results = spmd(kernel, n=4)
        assert results == [1, 3, 6, 10]

    def test_sort_async(self, spmd):
        def kernel(img):
            values = np.array([10.0 - img.rank, 5.0 + img.rank])
            op = img.sort_async(values)
            chunk = yield op.global_done
            return chunk.tolist()

        _m, results = spmd(kernel, n=2)
        merged = sorted([10.0, 5.0, 9.0, 6.0])
        assert results[0] == merged[:2]
        assert results[1] == merged[2:]

    def test_composite_events_fire(self, spmd):
        def setup(m):
            m.make_event(name="srcE")
            m.make_event(name="localE")

        def kernel(img):
            src = img.machine.event_by_name("srcE")
            loc = img.machine.event_by_name("localE")
            img.allgather_async(img.rank, src_event=src, local_event=loc)
            yield from img.event_wait(src)
            yield from img.event_wait(loc)
            return True

        _m, results = spmd(kernel, n=3, setup=setup)
        assert results == [True] * 3

    def test_composite_inside_finish(self, spmd):
        collected = {}

        def kernel(img):
            yield from img.finish_begin()
            op = img.allgather_async(img.rank + 100)
            op.global_done.add_done_callback(
                lambda f: collected.setdefault(img.rank, f.result()))
            yield from img.finish_end()
            return collected.get(img.rank)

        _m, results = spmd(kernel, n=3)
        # finish waited for the composite collective to complete
        assert results == [[100, 101, 102]] * 3
