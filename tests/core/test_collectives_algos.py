"""Tests for the bandwidth-optimal collective algorithms."""

import numpy as np
import pytest

from repro import run_spmd
from repro.core.collectives_algos import _chunk_bounds


class TestChunkBounds:
    def test_even_split(self):
        assert [_chunk_bounds(8, 4, i) for i in range(4)] == [
            (0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads_remainder(self):
        bounds = [_chunk_bounds(10, 3, i) for i in range(3)]
        assert bounds == [(0, 4), (4, 7), (7, 10)]
        # chunks tile the array exactly
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c

    def test_more_chunks_than_elements(self):
        bounds = [_chunk_bounds(2, 4, i) for i in range(4)]
        sizes = [hi - lo for lo, hi in bounds]
        assert sum(sizes) == 2


class TestRingAllreduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_matches_numpy_sum(self, spmd, n):
        size = 24

        def kernel(img):
            arr = np.arange(size, dtype=np.float64) * (img.rank + 1)
            result = yield from img.ring_allreduce(arr)
            return result.tolist()

        _m, results = spmd(kernel, n=n)
        factor = sum(r + 1 for r in range(n))
        expected = (np.arange(size) * factor).tolist()
        assert results == [expected] * n

    def test_max_operator(self, spmd):
        def kernel(img):
            arr = np.full(6, float(img.rank))
            result = yield from img.ring_allreduce(arr, op="max")
            return result.tolist()

        _m, results = spmd(kernel, n=4)
        assert results == [[3.0] * 6] * 4

    def test_in_place_semantics(self, spmd):
        def kernel(img):
            arr = np.ones(4)
            out = yield from img.ring_allreduce(arr)
            return out is arr and arr.tolist() == [4.0] * 4

        _m, results = spmd(kernel, n=4)
        assert all(results)

    def test_rejects_2d(self, spmd):
        from repro.sim.tasks import TaskFailed

        def kernel(img):
            yield from img.ring_allreduce(np.ones((2, 2)))

        with pytest.raises(TaskFailed):
            spmd(kernel, n=2)

    def test_bandwidth_advantage_for_large_arrays(self, spmd, fast_params):
        """Rabenseifner's point: for payloads >> latency product, the
        ring moves 2n(p-1)/p bytes per image vs the tree's n*log(p)."""
        size = 50_000

        def tree_kernel(img):
            arr = np.ones(size)
            _ = yield from img.allreduce(arr)
            return img.now

        def ring_kernel(img):
            arr = np.ones(size)
            yield from img.ring_allreduce(arr)
            return img.now

        _m, tree_t = spmd(tree_kernel, n=8, params=fast_params(8))
        _m, ring_t = spmd(ring_kernel, n=8, params=fast_params(8))
        assert max(ring_t) < max(tree_t)

    def test_latency_advantage_of_tree_for_scalars(self, spmd, fast_params):
        """...and the converse: tiny payloads favor the log-depth tree
        over the ring's 2(p-1) serial hops."""
        def tree_kernel(img):
            _ = yield from img.allreduce(1.0)
            return img.now

        def ring_kernel(img):
            arr = np.ones(1)
            yield from img.ring_allreduce(arr)
            return img.now

        _m, tree_t = spmd(tree_kernel, n=16, params=fast_params(16))
        _m, ring_t = spmd(ring_kernel, n=16, params=fast_params(16))
        assert max(tree_t) < max(ring_t)


class TestPipelinedBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    @pytest.mark.parametrize("root", [0, 2])
    def test_delivers_root_data(self, spmd, n, root):
        if root >= n:
            pytest.skip("root outside team")
        size = 32

        def kernel(img):
            arr = np.zeros(size)
            if img.team_rank() == root:
                arr[:] = np.arange(size)
            yield from img.pipelined_broadcast(arr, root=root)
            return arr.tolist()

        _m, results = spmd(kernel, n=n)
        assert results == [list(map(float, range(size)))] * n

    def test_segment_count_capped_by_array(self, spmd):
        def kernel(img):
            arr = np.full(2, float(img.rank == 0))
            yield from img.pipelined_broadcast(arr, segments=64)
            return arr.tolist()

        _m, results = spmd(kernel, n=3)
        assert results == [[1.0, 1.0]] * 3

    def test_pipelining_beats_tree_for_bulk(self, spmd, fast_params):
        size = 100_000

        def tree_kernel(img):
            arr = np.zeros(size)
            if img.rank == 0:
                arr[:] = 1.0
            op = img.broadcast_async(arr, root=0)
            yield op.local_op
            yield from img.barrier()
            return img.now

        def pipe_kernel(img):
            arr = np.zeros(size)
            if img.rank == 0:
                arr[:] = 1.0
            yield from img.pipelined_broadcast(arr, segments=16)
            yield from img.barrier()
            return img.now

        _m, tree_t = spmd(tree_kernel, n=8, params=fast_params(8))
        _m, pipe_t = spmd(pipe_kernel, n=8, params=fast_params(8))
        assert max(pipe_t) < max(tree_t)

    def test_invalid_segments(self, spmd):
        from repro.sim.tasks import TaskFailed

        def kernel(img):
            yield from img.pipelined_broadcast(np.ones(4), segments=0)

        with pytest.raises(TaskFailed):
            spmd(kernel, n=2)
