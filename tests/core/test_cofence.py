"""Tests for the cofence construct (paper §III-B)."""

import numpy as np
import pytest

from repro.runtime.memory_model import ANY, READ, WRITE
from repro.sim.tasks import TaskFailed


def _setup(m):
    m.coarray("T", shape=8, dtype=np.float64)


class TestBasicFence:
    def test_plain_cofence_waits_for_local_data(self, spmd, fast_params):
        """After cofence() the source buffer of an implicit put-style copy
        is reusable: its injection must have completed."""

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.ones(8))
                yield from img.cofence()
                assert op.local_data.done
                return img.now
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup, params=fast_params(2))
        assert results[0] > 0

    def test_cofence_does_not_wait_for_global(self, spmd, fast_params):
        """cofence is local data completion only — strictly cheaper than
        waiting for delivery (the Fig. 12 point)."""

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.ones(8))
                yield from img.cofence()
                t_fence = img.now
                yield op.global_done
                t_done = img.now
                return (t_fence, t_done, op.global_done.done)
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup, params=fast_params(2))
        t_fence, t_done, _ = results[0]
        assert t_fence < t_done  # fence returned before delivery+ack

    def test_cofence_with_nothing_pending_is_free(self, spmd):
        def kernel(img):
            t0 = img.now
            yield from img.cofence()
            assert img.now == t0
            yield from img.barrier()

        spmd(kernel, n=2)

    def test_get_style_copy_readable_after_cofence(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            T.local_at(img.rank)[:] = img.rank + 1.0
            yield from img.barrier()
            if img.rank == 0:
                buf = np.zeros(8)
                img.copy_async(buf, T.ref(1))
                yield from img.cofence()
                return buf.tolist()
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup)
        assert results[0] == [2.0] * 8


class TestDirectionalArguments:
    def test_downward_write_lets_writes_pass(self, spmd):
        """Fig. 8: cofence(DOWNWARD=WRITE) does not wait for ops that
        only write local data, but does wait for local-read ops."""

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            T.local_at(img.rank)[:] = 1.0
            yield from img.barrier()
            if img.rank == 0:
                buf = np.zeros(8)
                get_op = img.copy_async(buf, T.ref(1))          # WRITE class
                put_op = img.copy_async(T.ref(1), np.ones(8))   # READ class
                yield from img.cofence(downward=WRITE)
                # the read op (put) had to reach local data completion...
                assert put_op.local_data.done
                return get_op.local_data.done
            yield from img.compute(1e-5)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup)
        # With realistic latencies the get's round trip outlasts the
        # put's injection, so the WRITE-class op was allowed to pass.
        assert results[0] is False

    def test_downward_any_waits_for_nothing(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                t0 = img.now
                img.copy_async(T.ref(1), np.ones(8))
                yield from img.cofence(downward=ANY)
                assert img.now == t0  # nothing constrained
            yield from img.barrier()

        spmd(kernel, n=2, setup=_setup)

    def test_downward_read_constrains_writes(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                buf = np.zeros(8)
                get_op = img.copy_async(buf, T.ref(1))  # WRITE class
                yield from img.cofence(downward=READ)
                assert get_op.local_data.done  # writes were constrained
            yield from img.compute(1e-5)
            yield from img.barrier()

        spmd(kernel, n=2, setup=_setup)

    def test_invalid_argument_rejected(self, spmd):
        def kernel(img):
            with pytest.raises(ValueError, match="invalid cofence class"):
                yield from img.cofence(downward="sideways")
            with pytest.raises(ValueError, match="invalid cofence class"):
                yield from img.cofence(upward="diagonal")
            yield from img.barrier()

        spmd(kernel, n=1)


class TestDynamicScoping:
    def test_cofence_in_shipped_function_sees_only_its_ops(self, spmd):
        """Fig. 10: a cofence inside a shipped function does not cover
        asynchronous operations of the spawning image."""
        observations = []

        def remote(img):
            T = img.machine.coarray_by_name("T")
            op = img.copy_async(T.ref(0), np.full(8, 3.0))
            yield from img.cofence()
            observations.append(("inner_ld_done", op.local_data.done))

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.finish_begin()
            if img.rank == 0:
                # A long outer copy the inner cofence must NOT wait on:
                outer = img.copy_async(T.ref(1), np.zeros(8))
                yield from img.spawn(remote, 1)
                observations.append(("outer_pending", not outer.global_done.done))
            yield from img.finish_end()

        spmd(kernel, n=2, setup=_setup)
        assert ("inner_ld_done", True) in observations

    def test_main_cofence_ignores_shipped_function_ops(self, spmd):
        """The spawner's cofence covers argument evaluation of the spawn,
        not the spawned function's own operations (Fig. 10, line 9)."""

        def remote(img):
            T = img.machine.coarray_by_name("T")
            yield from img.compute(1e-5)
            img.copy_async(T.ref(0), np.full(8, 4.0))
            yield from img.cofence()

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.finish_begin()
            if img.rank == 0:
                op = yield from img.spawn(remote, 1)
                yield from img.cofence()
                # spawn args are evaluated (local data complete), but the
                # remote function has not finished
                assert op.local_data.done
                assert T.local_at(0).sum() == 0.0
            yield from img.finish_end()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup)
        # after finish, the shipped function's copy has landed
        assert results[0] == [4.0] * 8


def test_cofence_stats(spmd):
    def kernel(img):
        T = img.machine.coarray_by_name("T")
        img.copy_async(T.ref((img.rank + 1) % img.nimages), np.ones(8))
        yield from img.cofence()
        yield from img.barrier()

    m, _ = spmd(kernel, n=2, setup=_setup)
    assert m.stats["cofence.calls"] == 2
    assert m.stats["cofence.waited"] >= 1


class TestUpwardRecorded:
    """``upward`` cannot change execution order in the simulator, but it
    must be *observable*: a stats counter and, when the race detector is
    on, the per-fence class annotation (regression: it used to be
    silently dropped)."""

    def test_upward_counts_per_class(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            img.copy_async(T.ref((img.rank + 1) % img.nimages), np.ones(8))
            yield from img.cofence(upward=READ)
            yield from img.cofence(downward=ANY)
            yield from img.barrier()

        m, _ = spmd(kernel, n=2, setup=_setup)
        assert m.stats["cofence.upward.read"] == 2
        # a fence without upward= must not touch the counters
        assert "cofence.upward.None" not in m.stats
        assert "cofence.upward.write" not in m.stats

    def test_upward_annotation_reaches_detector(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            img.copy_async(T.ref((img.rank + 1) % img.nimages), np.ones(8))
            yield from img.cofence(downward=READ, upward=WRITE)
            yield from img.barrier()

        m, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        recorded = [(down, up) for _thread, down, up, _t in m.racecheck.fences]
        assert (READ, WRITE) in recorded

    def test_upward_is_validated(self, spmd):
        def kernel(img):
            yield from img.cofence(upward="sideways")

        with pytest.raises(TaskFailed):
            spmd(kernel, n=1, setup=_setup)
