"""Tests for the finish construct (paper §III-A)."""

import numpy as np
import pytest

from repro.core.finish import Epoch, FinishUsageError
from repro.sim.tasks import TaskFailed


class TestEpoch:
    def test_initial_state_quiet(self):
        e = Epoch()
        assert e.locally_quiet()

    def test_quiet_conditions(self):
        e = Epoch()
        e.sent = 2
        assert not e.locally_quiet()
        e.delivered = 2
        assert e.locally_quiet()
        e.received = 1
        assert not e.locally_quiet()
        e.completed = 1
        assert e.locally_quiet()

    def test_fold(self):
        a, b = Epoch(), Epoch()
        b.sent, b.delivered, b.received, b.completed = 1, 2, 3, 4
        a.sent = 10
        a.fold_from(b)
        assert (a.sent, a.delivered, a.received, a.completed) == (11, 2, 3, 4)
        assert (b.sent, b.delivered, b.received, b.completed) == (0, 0, 0, 0)


class TestBasicFinish:
    def test_empty_finish_costs_one_wave(self, spmd):
        def kernel(img):
            yield from img.finish_begin()
            rounds = yield from img.finish_end()
            return rounds

        m, results = spmd(kernel, n=8)
        assert results == [1] * 8  # L=0: a single allreduce suffices

    def test_finish_waits_for_spawned_work(self, spmd):
        done = []

        def remote(img):
            yield from img.compute(1e-5)
            done.append(img.now)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()
            return img.now

        _m, results = spmd(kernel, n=2)
        assert done and all(t >= done[0] for t in results)

    def test_finish_waits_for_implicit_copies(self, spmd):
        def setup(m):
            m.coarray("T", shape=4)

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.finish_begin()
            if img.rank == 0:
                img.copy_async(T.ref(1), np.full(4, 8.0))
            yield from img.finish_end()
            # global completion: data visible on image 1 right now
            return T.local_at(1).tolist()

        _m, results = spmd(kernel, n=2, setup=setup)
        assert results[0] == [8.0] * 4
        assert results[1] == [8.0] * 4

    def test_explicit_event_ops_not_tracked(self, spmd):
        """Operations with completion events are explicitly synchronized;
        finish does not wait for them (§III)."""

        def setup(m):
            m.coarray("T", shape=4)
            m.make_event(name="e")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("e")
            yield from img.finish_begin()
            frame = img.machine.image_state(img.rank).finish_stack[-1]
            if img.rank == 0:
                img.copy_async(T.ref(1), np.ones(4), dest_event=ev.at(1))
                assert frame.c_sent == 0  # not counted
            rounds = yield from img.finish_end()
            if img.rank == 1:
                yield from img.event_wait(ev)
            return rounds

        spmd(kernel, n=2, setup=setup)

    def test_end_without_begin_rejected(self, spmd):
        def kernel(img):
            with pytest.raises(FinishUsageError, match="without finish"):
                yield from img.finish_end()
            yield from img.barrier()

        spmd(kernel, n=1)

    def test_nonmember_team_rejected(self, spmd):
        def kernel(img):
            sub = img.machine.intern_team([0])
            if img.rank == 1:
                with pytest.raises(FinishUsageError, match="does not belong"):
                    yield from img.finish_begin(team=sub)
            yield from img.barrier()

        spmd(kernel, n=2)


class TestNesting:
    def test_nested_finish_blocks(self, spmd):
        def remote(img):
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            inner = yield from img.finish_end()
            outer = yield from img.finish_end()
            return (inner, outer)

        _m, results = spmd(kernel, n=2)
        assert all(inner >= 1 and outer >= 1 for inner, outer in results)

    def test_nested_team_must_be_subset(self, spmd):
        def kernel(img):
            evens = yield from img.team_split(img.team_world,
                                              color=img.rank % 2,
                                              key=img.rank)
            if img.rank % 2 == 0:
                yield from img.finish_begin(team=evens)
                with pytest.raises(FinishUsageError, match="subset"):
                    yield from img.finish_begin(team=img.team_world)
                yield from img.finish_end()
            yield from img.barrier()

        spmd(kernel, n=4)

    def test_subteam_finish(self, spmd):
        def remote(img):
            yield from img.compute(1e-6)

        def kernel(img):
            evens = yield from img.team_split(img.team_world,
                                              color=img.rank % 2,
                                              key=img.rank)
            if img.rank % 2 == 0:
                yield from img.finish_begin(team=evens)
                yield from img.spawn(remote, (img.team_rank(evens) + 1) % evens.size,
                                     team=evens)
                yield from img.finish_end()
            yield from img.barrier()

        m, _ = spmd(kernel, n=6)
        assert m.stats["spawn.executed"] == 3


class TestTransitiveChains:
    @pytest.mark.parametrize("chain_len", [1, 2, 4, 7])
    def test_theorem1_wave_bound(self, spmd, chain_len):
        """Theorem 1: at most L+1 reduction waves for spawn-chain length L."""

        def hop(img, remaining):
            yield from img.compute(1e-6)
            if remaining > 1:
                yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                     remaining - 1)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(hop, 1, chain_len)
            rounds = yield from img.finish_end()
            return rounds

        _m, results = spmd(kernel, n=4)
        assert len(set(results)) == 1  # every image agrees on wave count
        assert results[0] <= chain_len + 1

    def test_fanout_spawns_terminate(self, spmd):
        counter = []

        def leaf(img):
            counter.append(img.rank)
            yield from img.compute(1e-7)

        def fan(img, width):
            yield from img.compute(1e-7)
            for i in range(width):
                yield from img.spawn(leaf, i % img.nimages)

        def kernel(img):
            yield from img.finish_begin()
            yield from img.spawn(fan, (img.rank + 1) % img.nimages, 5)
            yield from img.finish_end()
            return len(counter)

        _m, results = spmd(kernel, n=4)
        # at finish exit every image observes all 4*5 leaves done
        assert results == [20] * 4

    def test_all_images_leave_finish_together(self, spmd, fast_params):
        def remote(img):
            yield from img.compute(1e-4)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()
            return img.now

        _m, results = spmd(kernel, n=4, params=fast_params(4))
        # nobody leaves before the 100us remote work is done
        assert min(results) >= 1e-4


class TestFinishWithCollectives:
    def test_async_collective_inside_finish(self, spmd):
        def kernel(img):
            buf = np.zeros(4)
            if img.rank == 0:
                buf[:] = 7.0
            yield from img.finish_begin()
            img.broadcast_async(buf, root=0)
            yield from img.finish_end()
            return buf.tolist()

        _m, results = spmd(kernel, n=4)
        assert results == [[7.0] * 4] * 4

    def test_collective_team_containment_enforced(self, spmd):
        from repro.core.collectives_async import CollectiveUsageError

        def kernel(img):
            evens = yield from img.team_split(img.team_world,
                                              color=img.rank % 2,
                                              key=img.rank)
            if img.rank % 2 == 0:
                yield from img.finish_begin(team=evens)
                with pytest.raises(CollectiveUsageError, match="subset"):
                    img.broadcast_async(np.zeros(2), root=0,
                                        team=img.team_world)
                yield from img.finish_end()
            yield from img.barrier()

        spmd(kernel, n=4)

    def test_finish_rounds_reported_in_stats(self, spmd):
        def kernel(img):
            yield from img.finish_begin()
            yield from img.finish_end()

        m, _ = spmd(kernel, n=4)
        assert m.stats["finish.blocks"] == 4
        assert m.stats["finish.completed"] == 4
        assert m.stats["finish.rounds_total"] == 4
