"""Equivalence of every termination detector under chaos (with the
reliable transport healing the wire): each detector must reach the same
finish outcome — same completed work, same collective agreement — as
its own clean-network run.

The six baseline detectors are parametrized; ``ft_epoch`` rides along
with a failure service attached (it requires one) to pin down that the
fault-tolerant rounds degenerate to the same outcome when nobody dies.
"""

import pytest

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.runtime.failure import FailureConfig
from repro.runtime.program import run_spmd

DETECTORS = ["epoch", "wave_unbounded", "wave_drain", "four_counter",
             "vector_count", "barrier"]

#: drops + dups + reorder together, seeded: the same hostile wire for
#: every detector
CHAOS = dict(drop=0.05, duplicate=0.05, reorder=2.0, seed=23)


def chaos_plan():
    return FaultPlan(**CHAOS)


def fanout_kernel(img, detector, done):
    """Two finish blocks: a spawn fan-out with a re-spawn hop (transitive
    completion), then an empty one (quiet-start path)."""

    def leaf(img2, origin):
        yield from img2.compute(2e-6)
        done.append((origin, img2.rank))

    def hop(img2, origin):
        yield from img2.compute(1e-6)
        yield from img2.spawn(leaf, (img2.team_rank() + 1) % img2.nimages,
                              origin)

    yield from img.finish_begin()
    for peer in range(img.nimages):
        if peer != img.rank:
            yield from img.spawn(hop, peer, img.rank)
    yield from img.finish_end(detector=detector)
    checkpoint = len(done)

    yield from img.finish_begin()
    yield from img.finish_end(detector=detector)
    return checkpoint


def run_once(detector, faults=None, failure_detection=None, n=4):
    done = []
    m, results = run_spmd(
        fanout_kernel, n,
        params=MachineParams.uniform(n, reliable=True),
        args=(detector, done),
        faults=faults,
        failure_detection=failure_detection,
        max_events=5_000_000)
    return m, results, sorted(done)


@pytest.mark.parametrize("detector", DETECTORS)
class TestDetectorEquivalenceUnderChaos:
    def test_same_outcome_as_clean_run(self, detector):
        _m1, clean_results, clean_done = run_once(detector)
        m2, chaos_results, chaos_done = run_once(detector,
                                                 faults=chaos_plan())
        # the plan actually bit: the wire misbehaved and was healed
        assert m2.stats["net.drops"] > 0 or m2.stats["net.dups"] > 0
        # every spawned leaf ran exactly once, chaos or not
        assert chaos_done == clean_done
        # finish released every image only after all transitive work:
        # the checkpoint each image saw at finish exit covers all of it
        assert chaos_results == clean_results

    def test_no_leaf_lost_or_duplicated(self, detector):
        n = 4
        _m, _results, done = run_once(detector, faults=chaos_plan(), n=n)
        expected = sorted((origin, (peer + 1) % n)
                          for origin in range(n)
                          for peer in range(n) if peer != origin)
        assert done == expected


class TestFtEpochDegeneratesCleanly:
    """ft_epoch with a failure service but no failure must agree with
    the plain epoch detector's outcome."""

    def test_matches_epoch_outcome_under_chaos(self):
        _m1, epoch_results, epoch_done = run_once("epoch",
                                                  faults=chaos_plan())
        m2, ft_results, ft_done = run_once(
            "ft_epoch", faults=chaos_plan(),
            failure_detection=FailureConfig())
        assert m2.network.suspects == set()
        assert ft_done == epoch_done
        assert ft_results == epoch_results
