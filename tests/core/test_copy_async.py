"""Tests for the predicated asynchronous copy (paper §II-C.1)."""

import numpy as np
import pytest


def _setup_table(m):
    m.coarray("T", shape=8, dtype=np.float64)


class TestPutPath:
    def test_local_buffer_to_remote(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.arange(8.0))
                yield op.global_done
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup_table)
        assert results[1] == list(range(8))
        assert results[0] == [0.0] * 8

    def test_local_coarray_section_to_remote(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                T.local_at(0)[:] = 5.0
                op = img.copy_async(T.ref(1, slice(0, 4)),
                                    T.ref(0, slice(4, 8)))
                yield op.global_done
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup_table)
        assert results[1] == [5.0] * 4 + [0.0] * 4

    def test_completion_order_invariant(self, spmd, fast_params):
        """local_data <= local_op <= global_done in time (Fig. 1)."""
        times = {}

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.ones(8))
                op.local_data.add_done_callback(
                    lambda _f: times.setdefault("ld", img.now))
                op.local_op.add_done_callback(
                    lambda _f: times.setdefault("lo", img.now))
                op.global_done.add_done_callback(
                    lambda _f: times.setdefault("gd", img.now))
                yield op.global_done
            yield from img.barrier()

        spmd(kernel, n=2, setup=_setup_table, params=fast_params(2))
        assert times["ld"] <= times["lo"] <= times["gd"]
        # local data (injection) strictly precedes delivery ack
        assert times["ld"] < times["lo"]

    def test_src_event_signals_buffer_reuse(self, spmd):
        def setup(m):
            _setup_table(m)
            m.make_event(name="srcE")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("srcE")
            if img.rank == 0:
                img.copy_async(T.ref(1), np.full(8, 2.0), src_event=ev)
                yield from img.event_wait(ev)
                return img.now
            yield from img.barrier()
            return None

        # note: rank 1 barrier alone is fine — rank 0 skips it
        def kernel2(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("srcE")
            if img.rank == 0:
                img.copy_async(T.ref(1), np.full(8, 2.0), src_event=ev)
                yield from img.event_wait(ev)
            yield from img.barrier()
            return img.now

        spmd(kernel2, n=2, setup=setup)

    def test_dest_event_posts_at_destination(self, spmd):
        def setup(m):
            _setup_table(m)
            m.make_event(name="destE")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("destE")
            if img.rank == 0:
                img.copy_async(T.ref(1), np.full(8, 3.0), dest_event=ev.at(1))
            elif img.rank == 1:
                yield from img.event_wait(ev)
                # the event arrives with (or after) the data
                assert T.local_at(1).tolist() == [3.0] * 8
            yield from img.barrier()

        spmd(kernel, n=2, setup=setup)


class TestGetPath:
    def test_remote_to_local_buffer(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            T.local_at(img.rank)[:] = float(img.rank + 1)
            yield from img.barrier()
            if img.rank == 0:
                buf = np.zeros(8)
                op = img.copy_async(buf, T.ref(1))
                yield op.local_data
                return buf.tolist()
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=_setup_table)
        assert results[0] == [2.0] * 8

    def test_get_takes_round_trip_time(self, spmd, fast_params):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                buf = np.zeros(8)
                op = img.copy_async(buf, T.ref(1))
                yield op.local_data
                return img.now
            yield from img.compute(1e-6)
            return None

        m, results = spmd(kernel, n=2, setup=_setup_table,
                          params=fast_params(2))
        assert results[0] >= 2 * 1e-6  # two wire latencies minimum


class TestForwardPath:
    def test_third_party_copy(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            T.local_at(img.rank)[:] = float(img.rank)
            yield from img.barrier()
            if img.rank == 0:
                op = img.copy_async(T.ref(2), T.ref(1))  # 1 -> 2, initiated by 0
                yield op.global_done
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=3, setup=_setup_table)
        assert results[2] == [1.0] * 8

    def test_forward_with_dest_event(self, spmd):
        def setup(m):
            _setup_table(m)
            m.make_event(name="arrived")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("arrived")
            T.local_at(img.rank)[:] = float(img.rank * 10)
            yield from img.barrier()
            if img.rank == 0:
                img.copy_async(T.ref(2), T.ref(1), dest_event=ev.at(2))
            if img.rank == 2:
                yield from img.event_wait(ev)
                assert T.local_at(2).tolist() == [10.0] * 8
            yield from img.barrier()

        spmd(kernel, n=3, setup=setup)


class TestLocalPath:
    def test_local_to_local(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            src = np.full(8, 4.0)
            op = img.copy_async(T.ref(img.rank), src)
            yield op.global_done
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=_setup_table)
        assert results == [[4.0] * 8] * 2

    def test_local_buffer_to_local_buffer(self, spmd):
        def kernel(img):
            a = np.arange(4.0)
            b = np.zeros(4)
            op = img.copy_async(b, a)
            yield op.global_done
            return b.tolist()

        _m, results = spmd(kernel, n=1)
        assert results[0] == [0.0, 1.0, 2.0, 3.0]


class TestPredicate:
    def test_pre_event_defers_copy(self, spmd):
        def setup(m):
            _setup_table(m)
            m.make_event(name="go")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            go = img.machine.event_by_name("go")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.full(8, 9.0), pre_event=go)
                yield from img.compute(5e-6)
                assert not op.local_data.done  # gated on the predicate
                yield from img.event_notify(go)
                yield op.global_done
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=setup)
        assert results[1] == [9.0] * 8

    def test_remote_pre_event(self, spmd):
        def setup(m):
            _setup_table(m)
            m.make_event(name="go")

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            go = img.machine.event_by_name("go")
            if img.rank == 0:
                # predicate lives on image 1; image 1 posts it later
                op = img.copy_async(T.ref(1), np.full(8, 6.0),
                                    pre_event=go.at(1))
                yield op.global_done
                return img.now
            elif img.rank == 1:
                yield from img.compute(1e-5)
                yield from img.event_notify(go)
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=setup)
        assert results[0] > 1e-5  # waited for the remote predicate


class TestValidation:
    def test_bad_endpoint_type(self, spmd):
        def kernel(img):
            with pytest.raises(TypeError, match="CoarrayRef"):
                img.copy_async([1, 2, 3], np.zeros(3))
            yield from img.barrier()

        spmd(kernel, n=1)

    def test_bad_event_type(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            with pytest.raises(TypeError, match="EventVar"):
                img.copy_async(T.ref(0), np.zeros(8), src_event="nope")
            yield from img.barrier()

        spmd(kernel, n=1, setup=_setup_table)
