"""Tests for the blocking team collectives."""

import numpy as np
import pytest

from repro.core.collectives import op_function


class TestOpFunction:
    def test_named_ops(self):
        assert op_function("sum")(2, 3) == 5
        assert op_function("prod")(2, 3) == 6
        assert op_function("max")(2, 3) == 3
        assert op_function("min")(2, 3) == 2

    def test_callable_passthrough(self):
        fn = lambda a, b: a - b
        assert op_function(fn) is fn

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown reduction"):
            op_function("median")


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13])
def test_allreduce_sum_all_sizes(spmd, n):
    def kernel(img):
        return (yield from img.allreduce(img.rank + 1))

    _m, results = spmd(kernel, n=n)
    expected = n * (n + 1) // 2
    assert results == [expected] * n


def test_allreduce_max(spmd):
    def kernel(img):
        return (yield from img.allreduce(img.rank * 7 % 5, op="max"))

    _m, results = spmd(kernel, n=5)
    assert results == [max(r * 7 % 5 for r in range(5))] * 5


def test_successive_collectives_keep_matching(spmd):
    def kernel(img):
        a = yield from img.allreduce(1)
        b = yield from img.allreduce(img.rank, op="max")
        c = yield from img.allreduce(img.rank, op="min")
        return (a, b, c)

    _m, results = spmd(kernel, n=6)
    assert results == [(6, 5, 0)] * 6


def test_allreduce_cost_grows_logarithmically(spmd, fast_params):
    def kernel(img):
        yield from img.allreduce(1)
        return img.now

    times = {}
    for n in (2, 8, 32):
        _m, results = spmd(kernel, n=n, params=fast_params(n))
        times[n] = max(results)
    # Tree depth 1 vs 3 vs 5: latency roughly linear in log2(p).
    assert times[2] < times[8] < times[32]
    assert times[32] < 8 * times[2]


class TestBarrier:
    def test_barrier_synchronizes(self, spmd):
        def kernel(img):
            yield from img.compute(img.rank * 1e-5)
            yield from img.barrier()
            return img.now

        _m, results = spmd(kernel, n=4)
        slowest_work = 3 * 1e-5
        assert min(results) >= slowest_work

    def test_nonmember_rejected(self, spmd):
        def kernel(img):
            sub = img.machine.intern_team([0, 1])
            if img.rank < 2:
                yield from img.barrier(team=sub)
            else:
                with pytest.raises(ValueError, match="not in team"):
                    yield from img.barrier(team=sub)

        spmd(kernel, n=4)


class TestReduceBroadcast:
    def test_reduce_to_root(self, spmd):
        def kernel(img):
            return (yield from img.reduce(img.rank + 1, root=2))

        _m, results = spmd(kernel, n=4)
        assert results[2] == 10
        assert results[0] is None and results[1] is None and results[3] is None

    def test_broadcast_value(self, spmd):
        def kernel(img):
            value = f"from-root" if img.rank == 1 else None
            return (yield from img.broadcast(value, root=1))

        _m, results = spmd(kernel, n=5)
        assert results == ["from-root"] * 5

    def test_broadcast_timing_root_first(self, spmd, fast_params):
        def kernel(img):
            yield from img.broadcast("x", root=0)
            return img.now

        _m, results = spmd(kernel, n=8, params=fast_params(8))
        assert results[0] <= min(results[1:])


class TestGatherScatter:
    def test_gather(self, spmd):
        def kernel(img):
            return (yield from img.gather(img.rank ** 2, root=0))

        _m, results = spmd(kernel, n=4)
        assert results[0] == [0, 1, 4, 9]
        assert results[1] is None

    def test_allgather(self, spmd):
        def kernel(img):
            return (yield from img.allgather(chr(ord("a") + img.rank)))

        _m, results = spmd(kernel, n=3)
        assert results == [["a", "b", "c"]] * 3

    def test_scatter(self, spmd):
        def kernel(img):
            values = [10 * i for i in range(img.nimages)] if img.rank == 0 else None
            return (yield from img.scatter(values, root=0))

        _m, results = spmd(kernel, n=4)
        assert results == [0, 10, 20, 30]

    def test_scatter_wrong_count_rejected(self, spmd):
        from repro.sim.tasks import TaskFailed

        def kernel(img):
            values = [1] if img.rank == 0 else None
            yield from img.scatter(values, root=0)

        # The root raises before broadcasting (wedging its peer); the
        # run surfaces the root cause.
        with pytest.raises(TaskFailed, match="main@0"):
            spmd(kernel, n=2)

    def test_alltoall(self, spmd):
        def kernel(img):
            values = [(img.rank, j) for j in range(img.nimages)]
            return (yield from img.alltoall(values))

        _m, results = spmd(kernel, n=3)
        assert results[1] == [(0, 1), (1, 1), (2, 1)]


class TestScanSort:
    def test_inclusive_scan(self, spmd):
        def kernel(img):
            return (yield from img.scan(img.rank + 1))

        _m, results = spmd(kernel, n=4)
        assert results == [1, 3, 6, 10]

    def test_exclusive_scan(self, spmd):
        def kernel(img):
            return (yield from img.scan(img.rank + 1, inclusive=False))

        _m, results = spmd(kernel, n=4)
        assert results == [None, 1, 3, 6]

    def test_sort_redistributes(self, spmd):
        def kernel(img):
            values = np.array([img.nimages - img.rank, 100 - img.rank])
            chunk = yield from img.sort(values)
            return chunk.tolist()

        _m, results = spmd(kernel, n=3)
        merged = sorted([3, 100, 2, 99, 1, 98])
        assert results == [merged[0:2], merged[2:4], merged[4:6]]

    def test_sort_unequal_lengths_rejected(self, spmd):
        from repro.sim.tasks import TaskFailed

        def kernel(img):
            values = np.arange(img.rank + 1)
            yield from img.sort(values)

        with pytest.raises(TaskFailed):
            spmd(kernel, n=2)


class TestTeamSplit:
    def test_split_by_parity(self, spmd):
        def kernel(img):
            team = yield from img.team_split(img.team_world,
                                             color=img.rank % 2,
                                             key=img.rank)
            return (team.id, team.members)

        _m, results = spmd(kernel, n=6)
        evens = results[0]
        odds = results[1]
        assert evens[1] == [0, 2, 4]
        assert odds[1] == [1, 3, 5]
        # all members of a color share the interned team (same id)
        assert results[0][0] == results[2][0] == results[4][0]
        assert results[1][0] == results[3][0] == results[5][0]

    def test_split_key_orders_ranks(self, spmd):
        def kernel(img):
            # reverse ordering via key
            team = yield from img.team_split(img.team_world, color=0,
                                             key=-img.rank)
            return team.members

        _m, results = spmd(kernel, n=4)
        assert results[0] == [3, 2, 1, 0]

    def test_collectives_on_subteam(self, spmd):
        def kernel(img):
            team = yield from img.team_split(img.team_world,
                                             color=img.rank % 2,
                                             key=img.rank)
            total = yield from img.allreduce(img.rank, team=team)
            return total

        _m, results = spmd(kernel, n=6)
        assert results == [6, 9, 6, 9, 6, 9]

    def test_nested_split(self, spmd):
        def kernel(img):
            half = yield from img.team_split(img.team_world,
                                             color=img.rank // 4,
                                             key=img.rank)
            quarter = yield from img.team_split(half,
                                                color=img.team_rank(half) // 2,
                                                key=img.rank)
            return quarter.members

        _m, results = spmd(kernel, n=8)
        # Contiguous memberships are stored as ranges (O(1) block teams);
        # the member sequence itself is what the split must produce.
        assert list(results[0]) == [0, 1]
        assert list(results[5]) == [4, 5]
        assert list(results[7]) == [6, 7]
