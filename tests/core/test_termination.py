"""Tests for the termination-detection algorithms, including the Fig. 5
barrier failure and the Theorem 1 bound."""

import pytest

from repro.core.termination import get_detector


def test_detector_registry():
    for name in ("epoch", "wave_unbounded", "wave_drain", "four_counter",
                 "vector_count", "barrier"):
        assert callable(get_detector(name))
    with pytest.raises(ValueError, match="unknown termination detector"):
        get_detector("oracle")


def _chain_kernel(detector, chain_len=3):
    def hop(img, remaining):
        yield from img.compute(2e-6)
        if remaining > 1:
            yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                 remaining - 1)

    def kernel(img):
        yield from img.finish_begin()
        if img.rank == 0:
            yield from img.spawn(hop, 1, chain_len)
        rounds = yield from img.finish_end(detector=detector)
        return rounds

    return kernel


class TestCorrectDetectors:
    @pytest.mark.parametrize("detector", ["epoch", "wave_unbounded",
                                          "wave_drain", "four_counter",
                                          "vector_count"])
    def test_detects_only_after_all_work_done(self, spmd, detector):
        done_at = []

        def remote(img):
            yield from img.compute(5e-5)
            done_at.append(img.now)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end(detector=detector)
            return img.now

        _m, results = spmd(kernel, n=4)
        assert done_at, "remote work never ran"
        assert min(results) >= done_at[0]

    @pytest.mark.parametrize("detector", ["epoch", "wave_unbounded",
                                          "wave_drain", "four_counter",
                                          "vector_count"])
    def test_transitive_chain_detected(self, spmd, detector):
        _m, results = spmd(_chain_kernel(detector, chain_len=4), n=4)
        assert all(r >= 1 for r in results)

    def test_epoch_beats_unbounded_on_rounds(self, spmd):
        """The Fig. 18 comparison: the wait precondition cuts waves."""
        _m, ours = spmd(_chain_kernel("epoch", chain_len=6), n=4, seed=1)
        _m, base = spmd(_chain_kernel("wave_unbounded", chain_len=6), n=4,
                        seed=1)
        assert max(ours) <= max(base)

    def test_four_counter_pays_extra_round_on_empty_finish(self, spmd):
        def kernel_epoch(img):
            yield from img.finish_begin()
            return (yield from img.finish_end(detector="epoch"))

        def kernel_fc(img):
            yield from img.finish_begin()
            return (yield from img.finish_end(detector="four_counter"))

        _m, ours = spmd(kernel_epoch, n=4)
        _m, fc = spmd(kernel_fc, n=4)
        assert ours == [1] * 4
        assert fc == [2] * 4  # double-counting: always one extra reduction

    def test_vector_count_owner_traffic_grows(self, spmd):
        """The §V criticism of X10's scheme: O(p) vectors of size O(p)
        concentrate at the owner."""
        owner_bytes = {}
        for n in (4, 8):
            m, _ = spmd(_chain_kernel("vector_count", chain_len=2), n=n)
            owner_bytes[n] = m.stats["term.vector.owner_bytes"]
        # doubling p more than doubles owner traffic (vector size grows too)
        assert owner_bytes[8] > 2 * owner_bytes[4]


class TestBarrierFailure:
    def test_fig5_barrier_misses_transitive_spawn(self, spmd):
        """Fig. 5: p ships f1 to q; f1 ships f2 to r.  A barrier-based
        finish lets r exit before f2 lands."""
        f2_done = []

        def f2(img):
            yield from img.compute(1e-6)
            f2_done.append(img.now)

        def f1(img):
            yield from img.compute(5e-5)  # long enough to straddle the barrier
            yield from img.spawn(f2, 2)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(f1, 1)
            yield from img.finish_end(detector="barrier")
            return (img.now, list(f2_done))

        _m, results = spmd(kernel, n=3)
        exit_time, seen = results[2]
        # image r (rank 2) left the "finish" before f2 completed: unsound.
        assert seen == []
        assert f2_done, "f2 eventually ran (after the broken barrier exit)"
        assert exit_time < f2_done[0]

    def test_epoch_fixes_the_same_scenario(self, spmd):
        f2_done = []

        def f2(img):
            yield from img.compute(1e-6)
            f2_done.append(img.now)

        def f1(img):
            yield from img.compute(5e-5)
            yield from img.spawn(f2, 2)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(f1, 1)
            yield from img.finish_end(detector="epoch")
            return img.now

        _m, results = spmd(kernel, n=3)
        assert f2_done and min(results) >= f2_done[0]


class TestTheorem1:
    @pytest.mark.parametrize("chain_len", [1, 2, 3, 5, 8])
    def test_wave_bound_holds(self, spmd, chain_len):
        _m, results = spmd(_chain_kernel("epoch", chain_len=chain_len), n=6)
        assert results[0] <= chain_len + 1

    def test_wave_bound_tight_on_adversarial_chain(self, spmd, fast_params):
        """With work long enough that each hop straddles a reduction wave,
        the detector needs close to L+1 waves — and never more."""

        def hop(img, remaining):
            # Out-wait a full allreduce so every hop forces a new wave.
            yield from img.compute(5e-5)
            if remaining > 1:
                yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                     remaining - 1)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(hop, 1, 4)
            rounds = yield from img.finish_end()
            return rounds

        _m, results = spmd(kernel, n=4, params=fast_params(4))
        assert 2 <= results[0] <= 5  # L=4 -> bound L+1=5

    def test_no_jitter_dependence(self, spmd, fast_params):
        """The algorithm assumes no FIFO channels: heavy latency jitter
        (which reorders messages) must not break detection."""
        params = fast_params(4, jitter=0.8)
        _m, results = spmd(_chain_kernel("epoch", chain_len=5), n=4,
                           params=params)
        assert all(r >= 1 for r in results)
