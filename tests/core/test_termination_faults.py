"""Detector resilience: the epoch termination detector (Fig. 7) must
reach the right answer when its counter messages are duplicated,
reordered, or dropped-and-retransmitted by a hostile network."""

import pytest

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.runtime.program import run_spmd


def chain_kernel(img, length, cost=5e-5):
    """The Theorem 1 workload: a spawn chain hopping around the ring,
    slow enough that every hop straddles an allreduce wave."""
    def hop(img2, remaining):
        yield from img2.compute(cost)
        if remaining > 1:
            yield from img2.spawn(hop, (img2.team_rank() + 1) % img2.nimages,
                                  remaining - 1)

    yield from img.finish_begin()
    if img.rank == 0 and length > 0:
        yield from img.spawn(hop, 1, length)
    rounds = yield from img.finish_end()
    return rounds


def reliable(n, **kwargs):
    return MachineParams.uniform(n, reliable=True, **kwargs)


class TestWaveCountStability:
    def test_duplicates_leave_wave_count_identical(self):
        """Duplicated deliveries are suppressed before any counter code
        runs, and dup copies consume no modelled resources — the wave
        count must be bit-identical to the clean run."""
        _m, clean = run_spmd(chain_kernel, 4, params=reliable(4), args=(4,))
        m, chaos = run_spmd(chain_kernel, 4, params=reliable(4), args=(4,),
                            faults=FaultPlan(duplicate=0.5, seed=7))
        assert m.stats["net.dups"] > 0
        assert chaos == clean

    def test_theorem1_bound_holds_under_duplication(self):
        for length in (1, 2, 4):
            m, rounds = run_spmd(
                chain_kernel, 4, params=reliable(4), args=(length,),
                faults=FaultPlan(duplicate=0.4, seed=11))
            assert 1 <= rounds[0] <= length + 1

    def test_terminates_under_heavy_reordering(self):
        """Reorder jitter far beyond MachineParams.jitter: detection may
        need extra waves but must terminate with every image agreeing."""
        m, rounds = run_spmd(
            chain_kernel, 4, params=reliable(4), args=(3,),
            faults=FaultPlan(reorder=5.0, seed=13))
        assert all(r >= 1 for r in rounds)
        assert len(set(rounds)) == 1  # collective: all images same count


class TestScriptedCounterLoss:
    @pytest.mark.parametrize("kind", ["coll.up", "coll.down", "spawn"])
    def test_detector_survives_losing_first_counter_message(self, kind):
        """Surgically kill the first message of each detector-critical
        kind; the reliable transport must recover and finish must still
        terminate with the correct result."""
        plan = FaultPlan().drop_nth(kind, 1)
        m, rounds = run_spmd(chain_kernel, 4, params=reliable(4), args=(2,),
                             faults=plan)
        assert m.stats["net.drops"] == 1
        assert m.stats["net.retransmits"] >= 1
        assert all(r >= 1 for r in rounds)

    def test_losing_every_nth_wave_message_still_terminates(self):
        plan = FaultPlan().drop_nth("coll.up", (1, 3, 5, 7))
        m, rounds = run_spmd(chain_kernel, 8, params=reliable(8), args=(3,),
                             faults=plan)
        assert m.stats["net.retransmits"] >= 1
        assert all(r >= 1 for r in rounds)


class TestMixedChaos:
    def test_epoch_detector_correct_under_full_chaos(self):
        """Drops + dups + reorder together: finish still terminates and
        the spawn chain ran to the end exactly once (counters balance)."""
        done = []

        def leaf(img):
            done.append(img.rank)
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                for dst in range(img.nimages):
                    yield from img.spawn(leaf, dst)
            rounds = yield from img.finish_end()
            return rounds

        m, rounds = run_spmd(
            kernel, 4, params=reliable(4),
            faults=FaultPlan(drop=0.1, duplicate=0.1, reorder=1.0, seed=21))
        assert sorted(done) == [0, 1, 2, 3]  # exactly once each
        assert all(r >= 1 for r in rounds)
