"""Tests for function shipping (paper §II-C.2)."""

import numpy as np
import pytest

from repro.core.spawn import payload_size, SPAWN_HEADER_BYTES, REF_BYTES
from repro.net.active_messages import AMSizeError
from repro.sim.tasks import TaskFailed


class TestPayloadSize:
    def test_header_only(self):
        assert payload_size(()) == SPAWN_HEADER_BYTES

    def test_value_args_charged_by_size(self):
        assert payload_size((np.zeros(4),)) == SPAWN_HEADER_BYTES + 32
        assert payload_size((1, 2.0)) == SPAWN_HEADER_BYTES + 16

    def test_refs_charged_as_descriptors(self):
        from repro.runtime.program import Machine
        m = Machine(2)
        A = m.coarray("A", shape=64)
        ev = m.make_event()
        assert payload_size((A.ref(1),)) == SPAWN_HEADER_BYTES + REF_BYTES
        assert payload_size((ev,)) == SPAWN_HEADER_BYTES + REF_BYTES
        assert payload_size((m.team_world,)) == SPAWN_HEADER_BYTES + REF_BYTES


class TestExecution:
    def test_runs_on_target_with_target_rank(self, spmd):
        where = []

        def remote(img, sender):
            where.append((sender, img.rank))
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 2, img.rank)
            yield from img.finish_end()

        spmd(kernel, n=3)
        assert where == [(0, 2)]

    def test_value_args_are_copied(self, spmd):
        """Mutating the caller's array after spawn must not affect the
        shipped value (the paper: arrays/scalars are copied)."""
        seen = []

        def remote(img, arr):
            yield from img.compute(1e-6)
            seen.append(arr.tolist())

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                data = np.array([1.0, 2.0])
                yield from img.spawn(remote, 1, data)
            yield from img.finish_end()

        spmd(kernel, n=2)
        assert seen == [[1.0, 2.0]]

    def test_coarray_ref_is_by_reference(self, spmd):
        """A coarray section argument gives the shipped function access
        to the section where it lives (Fig. 3 pattern)."""

        def remote(img, section):
            # runs on image 1, manipulating image 1's section in place
            section.coarray.local_at(img.rank)[section.index] += 10
            yield from img.compute(1e-7)

        def setup(m):
            m.coarray("A", shape=4)

        def kernel(img):
            A = img.machine.coarray_by_name("A")
            A.local_at(img.rank)[:] = img.rank
            yield from img.barrier()
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1, A.ref(1, slice(0, 2)))
            yield from img.finish_end()
            return A.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=2, setup=setup)
        assert results[1] == [11.0, 11.0, 1.0, 1.0]

    def test_completion_event(self, spmd):
        def remote(img):
            yield from img.compute(5e-6)

        def setup(m):
            m.make_event(name="done")

        def kernel(img):
            ev = img.machine.event_by_name("done")
            if img.rank == 0:
                op = yield from img.spawn(remote, 1, event=ev)
                yield from img.event_wait(ev)
                # execution completion implies delivery long since done
                assert op.local_op.done
                return img.now
            yield from img.compute(1e-6)
            return None

        _m, results = spmd(kernel, n=2, setup=setup)
        # wait covers ship + 5us execution + notify hop
        assert results[0] > 5e-6

    def test_transitive_spawn_chain_runs_everywhere(self, spmd):
        visits = []

        def hop(img, remaining):
            visits.append(img.rank)
            yield from img.compute(1e-6)
            if remaining > 0:
                yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                     remaining - 1)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(hop, 1, 4)
            yield from img.finish_end()

        spmd(kernel, n=3)
        assert visits == [1, 2, 0, 1, 2]

    def test_non_generator_function_rejected(self, spmd):
        def kernel(img):
            with pytest.raises(TypeError, match="generator"):
                yield from img.spawn(lambda img2: None, 0)
            yield from img.barrier()

        spmd(kernel, n=1)

    def test_payload_exceeding_medium_cap_rejected(self, spmd):
        """Spawns travel as medium AMs: the paper's 9-item steal limit."""

        def remote(img, blob):
            yield from img.compute(1e-7)

        def kernel(img):
            big = np.zeros(1024)  # 8KB >> am_medium_max
            with pytest.raises(AMSizeError):
                yield from img.spawn(remote, 0, big)
            yield from img.barrier()

        spmd(kernel, n=1)

    def test_spawn_team_relative_target(self, spmd):
        where = []

        def remote(img):
            where.append(img.rank)
            yield from img.compute(1e-7)

        def kernel(img):
            sub = yield from img.team_split(img.team_world,
                                            color=img.rank % 2,
                                            key=img.rank)
            yield from img.finish_begin()
            if img.rank == 1:
                # team rank 1 of the odd team is world rank 3
                yield from img.spawn(remote, 1, team=sub)
            yield from img.finish_end()

        spmd(kernel, n=4)
        assert where == [3]

    def test_finish_inside_shipped_function_rejected(self, spmd):
        failures = []

        def remote(img):
            try:
                yield from img.finish_begin()
            except Exception as e:
                failures.append(type(e).__name__)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()

        spmd(kernel, n=2)
        assert failures == ["FinishUsageError"]

    def test_spawn_stats(self, spmd):
        def remote(img):
            yield from img.compute(1e-7)

        def kernel(img):
            yield from img.finish_begin()
            yield from img.spawn(remote, (img.rank + 1) % img.nimages)
            yield from img.finish_end()

        m, _ = spmd(kernel, n=4)
        assert m.stats["spawn.initiated"] == 4
        assert m.stats["spawn.executed"] == 4
