"""The happens-before race detector: seeded racy micro-programs must be
flagged (with both access sites named), their correctly-synchronized
counterparts must be clean, and enabling detection must not perturb the
simulation."""

import numpy as np

from repro.analysis.racecheck import vc_join, vc_leq
from repro.runtime.memory_model import ANY, READ, WRITE


def _setup(machine):
    machine.coarray("T", shape=16, dtype=np.float64)
    machine.make_event(name="ev1")
    machine.make_event(name="ev2")


def races(machine):
    return machine.racecheck.races


class TestVectorClocks:
    def test_join_is_pointwise_max(self):
        a = {1: 2, 2: 1}
        vc_join(a, {2: 5, 3: 1})
        assert a == {1: 2, 2: 5, 3: 1}

    def test_leq(self):
        assert vc_leq({}, {1: 1})
        assert vc_leq({1: 1}, {1: 2, 2: 1})
        assert not vc_leq({1: 2}, {1: 1})
        assert not vc_leq({1: 1, 2: 1}, {1: 1})

    def test_incomparable(self):
        a, b = {1: 1}, {2: 1}
        assert not vc_leq(a, b) and not vc_leq(b, a)


class TestMissingCofence:
    """The tentpole's canonical bug: overwrite a copy's source buffer
    without waiting for local data completion."""

    def kernel(self, img, fenced):
        T = img.machine.coarray_by_name("T")
        src = np.zeros(8)
        if img.rank == 0:
            img.copy_async(T.ref(1, slice(0, 8)), src)
            if fenced:
                yield from img.cofence()
            img.local_write(src, np.ones(8))
        yield from img.barrier()

    def test_flagged_without_cofence(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(False,),
                          racecheck=True)
        assert len(races(machine)) == 1
        report = races(machine)[0]
        # both access sites named, with op kind, thread and direction
        assert report.a.op == "copy.put.src" and not report.a.write
        assert report.b.op == "local.write" and report.b.write
        assert report.a.thread == "main@0" and report.b.thread == "main@0"
        assert "cofence" in report.hint
        text = str(report)
        assert "copy.put.src" in text and "local.write" in text

    def test_clean_with_cofence(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(True,),
                          racecheck=True)
        assert races(machine) == []


class TestWrongDownwardClass:
    """cofence(downward=READ) lets read-class operations (puts) defer
    completion past the fence — overwriting the put's source after such
    a fence is exactly the paper's §III-B footgun."""

    def kernel(self, img, downward):
        T = img.machine.coarray_by_name("T")
        src = np.zeros(8)
        if img.rank == 0:
            img.copy_async(T.ref(1, slice(0, 8)), src)  # classes: {READ}
            yield from img.cofence(downward=downward)
            img.local_write(src, np.ones(8))
        yield from img.barrier()

    def test_read_class_passes_and_races(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(READ,),
                          racecheck=True)
        assert len(races(machine)) == 1

    def test_any_class_passes_and_races(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(ANY,),
                          racecheck=True)
        assert len(races(machine)) == 1

    def test_write_class_waits_and_is_clean(self, spmd):
        # a put is READ-class: downward=WRITE does not let it pass
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(WRITE,),
                          racecheck=True)
        assert races(machine) == []

    def test_default_waits_everything(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(None,),
                          racecheck=True)
        assert races(machine) == []


class TestUnorderedRemoteAccess:
    """Cross-image: image 0 puts into image 1's section while image 1
    reads it with no edge in between."""

    def kernel(self, img, sync):
        T = img.machine.coarray_by_name("T")
        ev = img.machine.event_by_name("ev1")
        if img.rank == 0:
            yield from img.put(T.ref(1, slice(0, 4)), np.ones(4))
            if sync:
                yield from img.event_notify(ev.ref_for(1))
        elif img.rank == 1:
            if sync:
                yield from img.event_wait(ev)
            img.local_read(T)

    def test_flagged_without_sync(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(False,),
                          racecheck=True)
        assert len(races(machine)) == 1
        report = races(machine)[0]
        assert {report.a.thread, report.b.thread} == {"main@0", "main@1"}
        assert "event_notify" in report.hint
        assert "T" in report.location

    def test_clean_with_event_pair(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(True,),
                          racecheck=True)
        assert races(machine) == []


class TestWrongEventPredicate:
    """An event wait that consumes the wrong event's post orders nothing:
    the reader still races with the copy's destination write."""

    def kernel(self, img, right_event):
        T = img.machine.coarray_by_name("T")
        ev1 = img.machine.event_by_name("ev1")
        ev2 = img.machine.event_by_name("ev2")
        if img.rank == 0:
            img.copy_async(T.ref(1, slice(0, 4)), np.ones(4),
                           dest_event=ev1.ref_for(1))
            yield from img.event_notify(ev2.ref_for(1))
        elif img.rank == 1:
            yield from img.event_wait(ev1 if right_event else ev2)
            img.local_read(T.ref(1, slice(0, 4)))
        yield from img.barrier()

    def test_wrong_predicate_flagged(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(False,),
                          racecheck=True)
        assert len(races(machine)) == 1
        report = races(machine)[0]
        assert report.a.op == "copy.put.dest" and report.a.write
        assert report.b.op == "local.read"

    def test_right_predicate_clean(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(True,),
                          racecheck=True)
        assert races(machine) == []


class TestFinishAndSpawnEdges:
    def kernel(self, img, use_finish):
        T = img.machine.coarray_by_name("T")

        def writer(image):
            image.local_write(
                image.machine.coarray_by_name("T").ref(image.rank,
                                                       slice(0, 4)),
                np.full(4, 7.0))
            yield from image.compute(1e-6)

        if use_finish:
            yield from img.finish_begin()
        if img.rank == 0:
            yield from img.spawn(writer, 1)
        if use_finish:
            yield from img.finish_end()
        else:
            yield from img.barrier()
        if img.rank == 1:
            img.local_read(T)

    def test_finish_orders_shipped_writes(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(True,),
                          racecheck=True)
        assert races(machine) == []

    def test_barrier_alone_does_not(self, spmd):
        # A barrier is not finish: the shipped function may still be
        # running (or its effects unpublished) when the barrier exits.
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(False,),
                          racecheck=True)
        assert len(races(machine)) >= 1

    def test_spawn_body_sees_spawner_writes(self, spmd):
        # spawn→body edge: the shipped function inherits the spawner's
        # clock, so it may read what the spawner wrote before spawning.
        def kernel(img):
            T = img.machine.coarray_by_name("T")

            def reader(image):
                yield from image.get(
                    image.machine.coarray_by_name("T").ref(0, slice(0, 4)))

            yield from img.finish_begin()
            if img.rank == 0:
                img.local_write(T.ref(0, slice(0, 4)), np.ones(4))
                yield from img.spawn(reader, 1)
            yield from img.finish_end()

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        assert races(machine) == []


class TestLockEdges:
    def kernel(self, img, locked):
        T = img.machine.coarray_by_name("T")
        lock = img.machine.lock_by_name("L")
        if locked:
            yield from lock.acquire(img, 0)
        yield from img.put(T.ref(0, img.rank % 2), float(img.rank))
        if locked:
            lock.release(img, 0)
        yield from img.barrier()

    @staticmethod
    def _setup(machine):
        machine.coarray("T", shape=16, dtype=np.float64)
        machine.make_lock(name="L")

    def test_lock_orders_conflicting_puts(self, spmd):
        machine, _ = spmd(self.kernel, n=4, setup=self._setup,
                          args=(True,), racecheck=True)
        assert races(machine) == []

    def test_unlocked_puts_race(self, spmd):
        machine, _ = spmd(self.kernel, n=4, setup=self._setup,
                          args=(False,), racecheck=True)
        assert len(races(machine)) >= 1


class TestCollectiveEdges:
    def kernel(self, img, with_barrier):
        T = img.machine.coarray_by_name("T")
        if img.rank == 0:
            img.local_write(T.ref(0, slice(0, 8)), np.arange(8.0))
        if with_barrier:
            yield from img.barrier()
        if img.rank == 1:
            yield from img.get(T.ref(0, slice(0, 8)))

    def test_barrier_orders_remote_read(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(True,),
                          racecheck=True)
        assert races(machine) == []

    def test_no_barrier_races(self, spmd):
        machine, _ = spmd(self.kernel, n=2, setup=_setup, args=(False,),
                          racecheck=True)
        assert len(races(machine)) == 1

    def test_rooted_reduce_does_not_order_non_roots(self, spmd):
        # reduce's exit is only a join at the root: non-roots get no
        # barrier out of it, so a reader on image 2 still races.
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                img.local_write(T.ref(0, slice(0, 4)), np.ones(4))
            yield from img.reduce(float(img.rank), root=1)
            if img.rank == 2:
                yield from img.get(T.ref(0, slice(0, 4)))

        machine, _ = spmd(kernel, n=4, setup=_setup, racecheck=True)
        assert len(races(machine)) == 1

    def test_allreduce_orders_everyone(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                img.local_write(T.ref(0, slice(0, 4)), np.ones(4))
            yield from img.allreduce(1.0)
            if img.rank == 2:
                yield from img.get(T.ref(0, slice(0, 4)))

        machine, _ = spmd(kernel, n=4, setup=_setup, racecheck=True)
        assert races(machine) == []


class TestHandleWaits:
    def test_wait_all_orders_explicit_copies(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ev = img.machine.event_by_name("ev1")
            src = np.zeros(4)
            if img.rank == 0:
                op = img.copy_async(T.ref(1, slice(0, 4)), src,
                                    dest_event=ev.ref_for(0))
                yield from img.wait_all([op])
                img.local_write(src, np.ones(4))
            yield from img.barrier()

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        assert races(machine) == []


class TestDetectorMechanics:
    def test_disabled_by_default(self, spmd):
        def kernel(img):
            yield from img.barrier()

        machine, _ = spmd(kernel, n=2)
        assert machine.racecheck is None
        assert "race.accesses" not in machine.stats

    def test_enabling_does_not_perturb_the_simulation(self, spmd):
        from repro.apps.producer_consumer import PCConfig, pc_kernel

        def setup(machine):
            machine.coarray("pc_inbuf", shape=80, dtype=np.uint8)
            machine.make_event(name="pc_ev")

        config = PCConfig(iterations=40)
        base, r0 = spmd(pc_kernel, n=4, setup=setup, args=(config,))
        checked, r1 = spmd(pc_kernel, n=4, setup=setup, args=(config,),
                           racecheck=True)
        assert r0 == r1
        assert base.sim.now == checked.sim.now
        assert (base.stats["net.msgs"], base.stats["copy.initiated"]) == \
               (checked.stats["net.msgs"], checked.stats["copy.initiated"])

    def test_duplicate_pairs_reported_once(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            src = np.zeros(8)
            if img.rank == 0:
                for _ in range(10):
                    img.copy_async(T.ref(1, slice(0, 8)), src)
                    img.local_write(src, np.ones(8))
            yield from img.barrier()

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        # one signature (same location, ops, threads) despite 10 rounds
        assert len(races(machine)) == 1

    def test_report_text(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            src = np.zeros(8)
            if img.rank == 0:
                img.copy_async(T.ref(1, slice(0, 8)), src)
                img.local_write(src, np.ones(8))
            yield from img.barrier()

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        text = machine.racecheck.report()
        assert "1 race(s)" in text
        assert "copy.put.src" in text and "local.write" in text

    def test_clean_report_counts_accesses(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            img.local_write(T.ref(img.rank, 0), 1.0)
            yield from img.barrier()

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        assert "no races" in machine.racecheck.report()
        assert machine.stats["race.accesses"] == 2

    def test_element_ranges_do_not_conflict(self, spmd):
        # disjoint element writes to one section are not a race
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.put(T.ref(0, img.rank), float(img.rank))
            yield from img.barrier()

        machine, _ = spmd(kernel, n=4, setup=_setup, racecheck=True)
        assert races(machine) == []

    def test_overlapping_ranges_conflict(self, spmd):
        def kernel(img):
            T = img.machine.coarray_by_name("T")
            yield from img.put(T.ref(0, slice(0, 4)), np.ones(4))

        machine, _ = spmd(kernel, n=2, setup=_setup, racecheck=True)
        assert len(races(machine)) == 1


class TestOverhead:
    def test_enabled_overhead_within_2x(self):
        import time

        from repro.apps.producer_consumer import (PCConfig,
                                                  run_producer_consumer)

        config = PCConfig(iterations=300)

        def timed(racecheck):
            best = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                run_producer_consumer(8, config, racecheck=racecheck)
                best = min(best, time.perf_counter() - t0)
            return best

        timed(False)  # warm caches
        base = timed(False)
        checked = timed(True)
        assert checked <= 2.0 * base, (checked, base)
