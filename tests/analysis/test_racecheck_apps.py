"""The race detector over the paper's applications: every benchmark under
its default synchronization discipline must audit clean, and the
deliberately racy RandomAccess variant must be flagged."""

from repro.apps.producer_consumer import PCConfig, run_producer_consumer
from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.apps.uts import TreeParams, UTSConfig, run_uts

_SMALL_TREE = UTSConfig(tree=TreeParams(b0=4, max_depth=6, seed=19))


class TestCleanUnderDefaultSync:
    def test_uts_is_clean(self):
        result = run_uts(4, _SMALL_TREE, racecheck=True)
        assert result.races == 0

    def test_randomaccess_function_shipping_is_clean(self):
        config = RAConfig(updates_per_image=32,
                          variant="function-shipping")
        result = run_randomaccess(4, config, verify=True, racecheck=True)
        assert result.races == 0
        assert result.errors == 0

    def test_producer_consumer_cofence_is_clean(self):
        config = PCConfig(iterations=50, variant="cofence")
        result = run_producer_consumer(4, config, racecheck=True)
        assert result.races == 0

    def test_producer_consumer_finish_is_clean(self):
        config = PCConfig(iterations=25, variant="finish")
        result = run_producer_consumer(4, config, racecheck=True)
        assert result.races == 0


class TestRacyVariantsFlagged:
    def test_randomaccess_get_update_put_is_flagged(self):
        # the HPCC reference style: get → xor → put, no lock between the
        # two halves — another image's update can land in the window
        config = RAConfig(updates_per_image=32, variant="get-update-put")
        result = run_randomaccess(4, config, racecheck=True)
        assert result.races > 0

    def test_producer_consumer_events_duplicate_targets(self):
        # The events variant synchronizes the *source* buffer reuse via
        # dest events, which is what the paper's Fig. 11 needs — but two
        # same-round explicit copies that hit the same random target
        # carry no mutual ordering in the model, and the detector calls
        # that out.  Every reported pair must be a copy/copy conflict on
        # the shared inbuf, never a source-buffer (reuse) race.
        config = PCConfig(iterations=50, variant="events")

        # run through run_spmd so the reports themselves are inspectable
        import numpy as np

        from repro.apps.producer_consumer import COPY_BYTES, pc_kernel
        from repro.runtime.program import run_spmd

        def setup(machine):
            machine.coarray("pc_inbuf", shape=COPY_BYTES, dtype=np.uint8)
            machine.make_event(name="pc_ev")

        machine, _ = run_spmd(pc_kernel, 4, args=(config,), setup=setup,
                              racecheck=True)
        for report in machine.racecheck.races:
            assert "pc_inbuf" in report.location
            assert report.a.op.startswith("copy.")
            assert report.b.op.startswith("copy.")
