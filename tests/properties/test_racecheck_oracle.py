"""Property test: the race detector and the reorder-legality oracle agree.

``ReorderOracle.may_sink`` says which operations a ``cofence(downward=D)``
lets complete after the fence; exactly those operations must race with a
conflicting local access issued after the fence, and the constrained ones
must not.  The two implementations were written independently — the
oracle from Fig. 1's tables, the detector from happens-before clocks — so
exact agreement on random programs is a strong cross-check.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.runtime.memory_model import (
    ANY,
    READ,
    WRITE,
    FenceItem,
    OpItem,
    ReorderOracle,
)
from repro.runtime.program import run_spmd

#: op kind -> (reads_local, writes_local), matching what the copy does
KINDS = {
    "put": (True, False),     # reads a local source buffer
    "get": (False, True),     # writes a local destination buffer
    "local": (True, True),    # local-to-local copy touches both
}


def _setup(m):
    m.coarray("T", shape=8, dtype=np.float64)


@settings(max_examples=25, deadline=None)
@given(kinds=st.lists(st.sampled_from(sorted(KINDS)), min_size=1,
                      max_size=4),
       downward=st.sampled_from([None, READ, WRITE, ANY]))
def test_detector_agrees_with_may_sink(kinds, downward):
    fence = FenceItem(downward=downward)
    sinks = [ReorderOracle.may_sink(OpItem(k, *KINDS[k]), fence)
             for k in kinds]
    # Two refinements of the raw oracle prediction, both documented
    # detector behavior:
    #
    # - FIFO-issue strengthening: each implicit op's clock base carries
    #   the issued (global) ticks of every earlier implicit op, because
    #   the simulator injects them in order on the link.  Waiting any op
    #   therefore also orders everything initiated before it, so an op
    #   only stays racy if the fence constrains *no* op at or after it.
    # - Report dedup: one race per (location, op-pair, thread-pair)
    #   signature, and local buffers on an image share a location key —
    #   so the count is over racy *kinds*, not racy ops.
    racy_kinds = set()
    unconstrained_suffix = True
    for kind, may in reversed(list(zip(kinds, sinks))):
        unconstrained_suffix = unconstrained_suffix and may
        if unconstrained_suffix:
            racy_kinds.add(kind)
    expected = len(racy_kinds)

    def kernel(img):
        if img.rank != 0:
            yield from img.compute(1e-6)
            return
        T = img.machine.coarray_by_name("T")
        conflicts = []
        for i, kind in enumerate(kinds):
            buf = np.zeros(1)
            if kind == "put":
                img.copy_async(T.ref(1, slice(i, i + 1)), buf)
                conflicts.append(("w", buf))
            elif kind == "get":
                img.copy_async(buf, T.ref(1, slice(i, i + 1)))
                conflicts.append(("r", buf))
            else:
                img.copy_async(np.zeros(1), buf)
                conflicts.append(("w", buf))
        yield from img.cofence(downward=downward)
        # one conflicting access per op, each on that op's own buffer, so
        # the race count equals the number of unconstrained ops
        for mode, buf in conflicts:
            if mode == "w":
                img.local_write(buf, 1.0)
            else:
                img.local_read(buf)

    machine, _ = run_spmd(kernel, 2, setup=_setup, racecheck=True)
    assert len(machine.racecheck.races) == expected
