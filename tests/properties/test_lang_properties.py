"""Property-based tests for the surface language: generated arithmetic
programs must agree with a Python reference evaluation."""

from hypothesis import given, settings, strategies as st

from repro.lang import run_program
from repro.lang.lexer import tokenize
from repro.lang.parser import parse

SLOW = settings(max_examples=25, deadline=None)


# Expression ASTs as (text, python_value) pairs, integer-only with
# division guarded to nonzero literals.
def exprs():
    literals = st.integers(-50, 50).map(
        lambda v: (f"({v})" if v < 0 else str(v), v))

    def combine(children):
        def binop(pair):
            (lt, lv), (rt, rv), op = pair
            if op == "+":
                return (f"({lt} + {rt})", lv + rv)
            if op == "-":
                return (f"({lt} - {rt})", lv - rv)
            if op == "*":
                return (f"({lt} * {rt})", lv * rv)
            # mod with guaranteed-positive divisor
            return (f"mod({lt}, {abs(rv) % 19 + 1})",
                    lv % (abs(rv) % 19 + 1))

        return st.tuples(children, children,
                         st.sampled_from("+-*m")).map(binop)

    return st.recursive(literals, combine, max_leaves=8)


@SLOW
@given(expr=exprs())
def test_arithmetic_matches_python(expr):
    text, expected = expr
    src = f"program t\nreturn {text}\nend program"
    _m, results, _p = run_program(src, 1, capture_prints=True)
    assert results[0] == expected


@SLOW
@given(values=st.lists(st.integers(-100, 100), min_size=1, max_size=8))
def test_do_loop_accumulates_any_sequence(values):
    lines = [f"program t", f"integer :: a({len(values)})", "integer :: s, i"]
    for i, v in enumerate(values, start=1):
        lines.append(f"a({i}) = {v}" if v >= 0 else f"a({i}) = 0 - {abs(v)}")
    lines += [f"do i = 1, {len(values)}", "s = s + a(i)", "end do",
              "return s", "end program"]
    _m, results, _p = run_program("\n".join(lines), 1, capture_prints=True)
    assert results[0] == sum(values)


@SLOW
@given(n=st.integers(1, 6), contributions=st.lists(
    st.integers(0, 100), min_size=6, max_size=6))
def test_allreduce_in_language_matches_sum(n, contributions):
    values = contributions[:n]
    branches = []
    for r, v in enumerate(values):
        branches.append(f"if (this_image() == {r}) then")
        branches.append(f"  mine = {v}")
        branches.append("end if")
    src = "\n".join([
        "program t", "integer :: mine", *branches,
        "return allreduce(mine)", "end program"])
    _m, results, _p = run_program(src, n, capture_prints=True)
    assert results == [sum(values)] * n


@SLOW
@given(body=st.lists(st.sampled_from([
    "x = x + 1", "call team_barrier()", "cofence()",
    "print *, x",
]), max_size=6))
def test_roundtrip_parse_of_generated_statements(body):
    src = "\n".join(["program t", "integer :: x", *body, "end program"])
    program = parse(src)
    # reparse of the token stream is stable (lexer/parser consistency)
    assert len(tokenize(src)) == len(tokenize(src))
    assert program.name == "t"
    # a declaration plus one node per statement line
    assert len(program.body) == 1 + len(body)
