"""Property-based tests for the application kernels."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.randomaccess import hpcc_starts, hpcc_stream
from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    expand,
    num_children,
    pack_items,
    root_descriptor,
    run_uts,
    sequential_tree_size,
    unpack_items,
)

SLOW = settings(max_examples=12, deadline=None)


class TestHPCCStream:
    @given(n=st.integers(1, 5000))
    @settings(max_examples=30, deadline=None)
    def test_jump_ahead_matches_iteration(self, n):
        """hpcc_starts(n) == the n-th sequential LFSR value, for any n."""
        assert hpcc_starts(n) == int(hpcc_stream(1, n)[-1])

    @given(start=st.integers(0, 3000), count=st.integers(1, 200))
    @settings(max_examples=30, deadline=None)
    def test_segments_tile_the_sequence(self, start, count):
        segment = hpcc_stream(hpcc_starts(start), count)
        whole = hpcc_stream(1, start + count)
        assert segment.tolist() == whole[start:start + count].tolist()

    @given(offset=st.integers(0, 10**6), count=st.integers(128, 512))
    @settings(max_examples=10, deadline=None)
    def test_stream_never_cycles_short(self, offset, count):
        """All values within any window are distinct (the LFSR's period
        is ~1.3e18, so short cycles indicate a broken step)."""
        s = hpcc_stream(hpcc_starts(offset), count)
        assert len(set(s.tolist())) == count


class TestUTSTreeProperties:
    @given(seed=st.integers(0, 10**6), depth=st.integers(0, 5),
           b0=st.floats(0.5, 6.0, allow_nan=False))
    @settings(max_examples=25, deadline=None)
    def test_sequential_count_is_deterministic_and_positive(self, seed,
                                                            depth, b0):
        params = TreeParams(b0=b0, max_depth=depth, seed=seed)
        a = sequential_tree_size(params)
        b = sequential_tree_size(params)
        assert a == b >= 1

    @given(seed=st.integers(0, 10**6), depth=st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_expansion_respects_depth_bound(self, seed, depth):
        params = TreeParams(max_depth=depth, seed=seed)
        stack = [(root_descriptor(params), 0)]
        while stack:
            desc, d = stack.pop()
            children = expand(desc, d, params)
            if d >= depth:
                assert children == []
            assert all(cd == d + 1 for _c, cd in children)
            stack.extend(children)

    @given(items=st.lists(
        st.tuples(st.binary(min_size=20, max_size=20),
                  st.integers(0, 2**31 - 1)),
        max_size=9))
    def test_pack_unpack_roundtrip(self, items):
        assert unpack_items(pack_items(items)) == items


class TestUTSDistributedProperties:
    @SLOW
    @given(n=st.integers(1, 6), seed=st.integers(0, 100),
           depth=st.integers(3, 5))
    def test_distributed_count_always_matches_sequential(self, n, seed,
                                                         depth):
        tree = TreeParams(b0=3.0, max_depth=depth, seed=seed)
        expected = sequential_tree_size(tree)
        result = run_uts(n, UTSConfig(tree=tree), seed=seed)
        assert result.total_nodes == expected
        assert sum(result.nodes_per_image) == expected

    @SLOW
    @given(machine_seed=st.integers(0, 1000))
    def test_count_invariant_under_machine_seed(self, machine_seed):
        """Steal-victim randomness must never change the answer."""
        tree = TreeParams(max_depth=5, seed=19)
        result = run_uts(4, UTSConfig(tree=tree), seed=machine_seed)
        assert result.total_nodes == sequential_tree_size(tree)
