"""Property-based tests for the simulation substrate."""

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Future, Task, all_of, any_of
from repro.runtime.sizeof import sizeof


class TestEngineProperties:
    @given(delays=st.lists(st.floats(min_value=0, max_value=100,
                                     allow_nan=False), min_size=1,
                           max_size=50))
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []
        for d in delays:
            sim.schedule(d, lambda d=d: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        assert sim.now == max(delays)

    @given(delays=st.lists(st.floats(min_value=0, max_value=10,
                                     allow_nan=False), min_size=1,
                           max_size=30),
           horizon=st.floats(min_value=0, max_value=10, allow_nan=False))
    def test_run_until_splits_cleanly(self, delays, horizon):
        """run(until=h) then run() fires exactly the same events as one
        uninterrupted run."""
        def run_split():
            sim = Simulator()
            fired = []
            for i, d in enumerate(delays):
                sim.schedule(d, fired.append, i)
            sim.run(until=horizon)
            sim.run()
            return fired

        def run_whole():
            sim = Simulator()
            fired = []
            for i, d in enumerate(delays):
                sim.schedule(d, fired.append, i)
            sim.run()
            return fired

        assert run_split() == run_whole()


class TestTaskProperties:
    @given(durations=st.lists(st.floats(min_value=1e-9, max_value=1.0,
                                        allow_nan=False), min_size=1,
                              max_size=20))
    def test_sequential_delays_sum(self, durations):
        sim = Simulator()

        def gen():
            for d in durations:
                yield Delay(d)
            return sim.now

        t = Task(sim, gen())
        sim.run()
        assert abs(t.done_future.result() - sum(durations)) < 1e-6

    @given(resolution_order=st.permutations(list(range(6))))
    def test_all_of_insensitive_to_resolution_order(self, resolution_order):
        futures = [Future(str(i)) for i in range(6)]
        combined = all_of(futures)
        for idx in resolution_order:
            assert not combined.done or idx == resolution_order[-1]
            futures[idx].set_result(idx * 10)
        assert combined.result() == [i * 10 for i in range(6)]

    @given(resolution_order=st.permutations(list(range(5))))
    def test_any_of_returns_first_resolved(self, resolution_order):
        futures = [Future(str(i)) for i in range(5)]
        combined = any_of(futures)
        futures[resolution_order[0]].set_result("x")
        assert combined.result() == (resolution_order[0], "x")


class TestSizeofProperties:
    scalar = st.one_of(st.integers(), st.floats(allow_nan=False),
                       st.text(max_size=20), st.booleans(), st.none())

    @given(value=st.recursive(scalar,
                              lambda children: st.lists(children,
                                                        max_size=5),
                              max_leaves=20))
    def test_sizeof_non_negative(self, value):
        assert sizeof(value) >= 0

    @given(items=st.lists(st.integers(), max_size=20))
    def test_sizeof_list_grows_with_elements(self, items):
        assert sizeof(items + [1]) > sizeof(items)

    @given(data=st.binary(max_size=256))
    def test_sizeof_bytes_is_length(self, data):
        assert sizeof(data) == len(data)
