"""Property-based tests for collectives: results must equal their
sequential specification for any team size, values and operator."""

import functools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import run_spmd

sizes = st.integers(min_value=1, max_value=9)
value_lists = st.lists(st.integers(-10**6, 10**6), min_size=9, max_size=9)

SLOW = settings(max_examples=20, deadline=None)


@SLOW
@given(n=sizes, values=value_lists,
       op=st.sampled_from(["sum", "max", "min"]))
def test_allreduce_matches_sequential_reduce(n, values, op):
    values = values[:n]
    fn = {"sum": lambda a, b: a + b, "max": max, "min": min}[op]
    expected = functools.reduce(fn, values)

    def kernel(img):
        return (yield from img.allreduce(values[img.rank], op=op))

    _m, results = run_spmd(kernel, n)
    assert results == [expected] * n


@SLOW
@given(n=sizes, values=value_lists)
def test_scan_matches_prefix_sums(n, values):
    values = values[:n]

    def kernel(img):
        return (yield from img.scan(values[img.rank]))

    _m, results = run_spmd(kernel, n)
    expected = list(np.cumsum(values))
    assert results == expected


@SLOW
@given(n=sizes, values=value_lists, root_seed=st.integers(0, 100))
def test_broadcast_delivers_root_value(n, values, root_seed):
    root = root_seed % n

    def kernel(img):
        v = values[img.rank] if img.team_rank() == root else None
        return (yield from img.broadcast(v, root=root))

    _m, results = run_spmd(kernel, n)
    assert results == [values[root]] * n


@SLOW
@given(n=sizes, values=value_lists, root_seed=st.integers(0, 100))
def test_gather_collects_in_rank_order(n, values, root_seed):
    root = root_seed % n

    def kernel(img):
        return (yield from img.gather(values[img.rank], root=root))

    _m, results = run_spmd(kernel, n)
    assert results[root] == values[:n]
    for r in range(n):
        if r != root:
            assert results[r] is None


@SLOW
@given(n=sizes, values=value_lists)
def test_alltoall_is_transpose(n, values):
    def kernel(img):
        row = [(img.rank, j, values[img.rank]) for j in range(n)]
        return (yield from img.alltoall(row))

    _m, results = run_spmd(kernel, n)
    for j in range(n):
        assert results[j] == [(i, j, values[i]) for i in range(n)]


@SLOW
@given(n=st.integers(2, 6),
       chunks=st.lists(st.lists(st.integers(-100, 100), min_size=3,
                                max_size=3), min_size=6, max_size=6))
def test_sort_produces_globally_sorted_partition(n, chunks):
    chunks = chunks[:n]

    def kernel(img):
        chunk = yield from img.sort(np.array(chunks[img.rank]))
        return chunk.tolist()

    _m, results = run_spmd(kernel, n)
    merged = [v for chunk in results for v in chunk]
    assert merged == sorted(v for c in chunks for v in c)


@SLOW
@given(n=st.integers(2, 8), colors=st.lists(st.integers(0, 2), min_size=8,
                                            max_size=8))
def test_team_split_partitions_world(n, colors):
    colors = colors[:n]

    def kernel(img):
        team = yield from img.team_split(img.team_world,
                                         color=colors[img.rank],
                                         key=img.rank)
        return tuple(team.members)

    _m, results = run_spmd(kernel, n)
    # every member's team is exactly the set of ranks with its color
    for r in range(n):
        expected = tuple(w for w in range(n) if colors[w] == colors[r])
        assert results[r] == expected
