"""Property-based tests for copy_async across all endpoint placements."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import run_spmd

SLOW = settings(max_examples=20, deadline=None)


@SLOW
@given(n=st.integers(2, 6),
       src_rank=st.integers(0, 5), dst_rank=st.integers(0, 5),
       initiator=st.integers(0, 5),
       data=st.lists(st.integers(-1000, 1000), min_size=1, max_size=16))
def test_copy_lands_for_every_placement(n, src_rank, dst_rank, initiator,
                                        data):
    """For any (initiator, source image, destination image) triple and
    any payload, the data is at the destination by global completion."""
    src_rank %= n
    dst_rank %= n
    initiator %= n
    payload = np.array(data, dtype=np.float64)

    def setup(m):
        m.coarray("S", shape=len(data), dtype=np.float64)
        m.coarray("D", shape=len(data), dtype=np.float64)

    def kernel(img):
        S = img.machine.coarray_by_name("S")
        D = img.machine.coarray_by_name("D")
        if img.rank == src_rank:
            S.local_at(img.rank)[:] = payload
        yield from img.barrier()
        if img.rank == initiator:
            op = img.copy_async(D.ref(dst_rank), S.ref(src_rank))
            yield op.global_done
        yield from img.barrier()
        return D.local_at(img.rank).tolist()

    _m, results = run_spmd(kernel, n, setup=setup)
    assert results[dst_rank] == payload.tolist()
    for r in range(n):
        if r != dst_rank:
            assert results[r] == [0.0] * len(data)


@SLOW
@given(n=st.integers(2, 5), size=st.integers(1, 64),
       case=st.sampled_from(["put", "get", "forward"]))
def test_completion_order_invariant_all_cases(n, size, case):
    """local_data <= local_op <= global_done regardless of placement and
    payload size (Fig. 1's timeline)."""
    order = {}

    def setup(m):
        m.coarray("T", shape=size, dtype=np.float64)

    def kernel(img):
        T = img.machine.coarray_by_name("T")
        yield from img.barrier()
        if img.rank == 0:
            if case == "put":
                op = img.copy_async(T.ref(1), np.ones(size))
            elif case == "get":
                op = img.copy_async(np.zeros(size), T.ref(1))
            else:
                op = img.copy_async(T.ref(n - 1), T.ref(1))
            for name, fut in (("ld", op.local_data), ("lo", op.local_op),
                              ("gd", op.global_done)):
                fut.add_done_callback(
                    lambda _f, k=name: order.setdefault(k, img.now))
            yield op.global_done
        yield from img.barrier()

    run_spmd(kernel, n, setup=setup)
    assert order["ld"] <= order["lo"] <= order["gd"]


@SLOW
@given(n=st.integers(2, 4), writes=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 7),
              st.integers(-100, 100)),
    min_size=1, max_size=12))
def test_finish_makes_all_implicit_copies_visible(n, writes):
    """Any batch of implicit copies inside a finish is globally visible
    at end finish — image 0 issues them all, every image checks."""
    writes = [(dst % n, idx, val) for dst, idx, val in writes]
    # last-writer-wins per (dst, idx) is not deterministic under racing
    # copies; restrict to unique destinations slots
    seen = {}
    unique = []
    for dst, idx, val in writes:
        if (dst, idx) not in seen:
            seen[(dst, idx)] = val
            unique.append((dst, idx, val))

    def setup(m):
        m.coarray("T", shape=8, dtype=np.float64)

    def kernel(img):
        T = img.machine.coarray_by_name("T")
        yield from img.finish_begin()
        if img.rank == 0:
            for dst, idx, val in unique:
                img.copy_async(T.ref(dst, idx), np.float64(val))
        yield from img.finish_end()
        return T.local_at(img.rank).tolist()

    _m, results = run_spmd(kernel, n, setup=setup)
    for dst, idx, val in unique:
        assert results[dst][idx] == float(val)
