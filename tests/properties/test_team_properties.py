"""Property-based tests for Team tree/hypercube structure."""

from hypothesis import given, strategies as st

from repro.runtime.team import Team

team_sizes = st.integers(min_value=1, max_value=40)
radixes = st.integers(min_value=2, max_value=5)


@given(size=team_sizes, root_seed=st.integers(0, 10**6), radix=radixes)
def test_tree_spans_all_ranks_exactly_once(size, root_seed, radix):
    team = Team(range(size))
    root = root_seed % size
    seen = {root}
    frontier = [root]
    while frontier:
        r = frontier.pop()
        for c in team.tree_children(r, root, radix):
            assert c not in seen, "tree revisits a rank"
            seen.add(c)
            frontier.append(c)
    assert seen == set(range(size))


@given(size=team_sizes, root_seed=st.integers(0, 10**6), radix=radixes)
def test_tree_parent_inverts_children(size, root_seed, radix):
    team = Team(range(size))
    root = root_seed % size
    for r in range(size):
        parent = team.tree_parent(r, root, radix)
        if r == root:
            assert parent is None
        else:
            assert r in team.tree_children(parent, root, radix)


@given(size=team_sizes, root_seed=st.integers(0, 10**6), radix=radixes)
def test_tree_depth_is_logarithmic(size, root_seed, radix):
    import math
    team = Team(range(size))
    root = root_seed % size
    max_depth = 0
    for r in range(size):
        depth, cur = 0, r
        while cur != root:
            cur = team.tree_parent(cur, root, radix)
            depth += 1
        max_depth = max(max_depth, depth)
    if size > 1:
        assert max_depth <= math.ceil(math.log(size, radix)) + 1


@given(size=team_sizes)
def test_hypercube_neighbors_symmetric_and_bounded(size):
    team = Team(range(size))
    for r in range(size):
        neighbors = team.hypercube_neighbors(r)
        assert len(set(neighbors)) == len(neighbors)
        assert all(0 <= n < size and n != r for n in neighbors)
        for n in neighbors:
            assert r in team.hypercube_neighbors(n)


@given(members=st.lists(st.integers(0, 1000), min_size=1, max_size=30,
                        unique=True))
def test_rank_world_roundtrip(members):
    team = Team(members)
    for tr in range(team.size):
        assert team.rank_of(team.world_rank(tr)) == tr
    for w in members:
        assert team.world_rank(team.rank_of(w)) == w
