"""Property-based tests for the reorder-legality oracle."""

from hypothesis import given, strategies as st

from repro.runtime.memory_model import (
    ANY,
    READ,
    WRITE,
    FenceItem,
    NotifyItem,
    OpItem,
    ReorderOracle,
    WaitItem,
    allowed_set,
    may_pass,
)

ops = st.builds(
    OpItem,
    name=st.text(alphabet="abcdef", min_size=1, max_size=3),
    reads_local=st.booleans(),
    writes_local=st.booleans(),
)
fence_args = st.sampled_from([None, READ, WRITE, ANY])
fences = st.builds(FenceItem, downward=fence_args, upward=fence_args)
syncs = st.one_of(fences, st.just(NotifyItem()), st.just(WaitItem()))


@given(op=ops, fence=fences)
def test_any_direction_admits_every_op(op, fence):
    assert ReorderOracle.may_sink(op, FenceItem(downward=ANY))
    assert ReorderOracle.may_hoist(op, FenceItem(upward=ANY))


@given(op=ops)
def test_default_fence_admits_only_no_effect_ops(op):
    fence = FenceItem()
    expected = op.classes == frozenset()
    assert ReorderOracle.may_sink(op, fence) == expected
    assert ReorderOracle.may_hoist(op, fence) == expected


@given(op=ops, sync=syncs)
def test_sink_hoist_are_total(op, sync):
    assert isinstance(ReorderOracle.may_sink(op, sync), bool)
    assert isinstance(ReorderOracle.may_hoist(op, sync), bool)


@given(op=ops)
def test_notify_wait_duality(op):
    """Release and acquire are mirror images: what a notify pins
    downward, a wait frees downward, and vice versa upward."""
    assert ReorderOracle.may_sink(op, NotifyItem()) is False
    assert ReorderOracle.may_sink(op, WaitItem()) is True
    assert ReorderOracle.may_hoist(op, NotifyItem()) is True
    assert ReorderOracle.may_hoist(op, WaitItem()) is False


@given(op_classes=st.frozensets(st.sampled_from([READ, WRITE])),
       arg=fence_args)
def test_may_pass_is_monotone_in_allowed_set(op_classes, arg):
    """Growing the allowed set never newly blocks an operation."""
    allowed = allowed_set(arg)
    if may_pass(op_classes, allowed):
        assert may_pass(op_classes, allowed | frozenset({READ}))
        assert may_pass(op_classes, allowed | frozenset({WRITE}))


@given(before=ops, after=ops, sync=syncs)
def test_legal_orders_agree_with_pairwise_rules(before, after, sync):
    """legal_initiation_orders on a minimal program agrees with the
    pairwise sink/hoist predicates."""
    before = OpItem("x", before.reads_local, before.writes_local)
    after = OpItem("y", after.reads_local, after.writes_local)
    program = [before, sync, after]
    orders = set(ReorderOracle.legal_initiation_orders(program))
    assert ("x", "y") in orders  # program order is always legal
    swap_legal = ("y", "x") in orders
    # Swapping initiation requires the later op to be hoistable above
    # the sync or the earlier one to be sinkable below it.
    expected = (ReorderOracle.may_hoist(after, sync)
                or ReorderOracle.may_sink(before, sync))
    assert swap_legal == expected
