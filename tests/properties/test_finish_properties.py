"""Property-based tests of finish's termination detection: for *any*
randomly-shaped spawn forest, finish must not return until every
transitively spawned task has completed, its counters must balance, and
the wave count must respect Theorem 1."""

from hypothesis import given, settings, strategies as st

from repro import run_spmd
from repro.net.topology import MachineParams

SLOW = settings(max_examples=15, deadline=None)

# A spawn tree: each node is (work_cost_us, [children]).
spawn_trees = st.recursive(
    st.tuples(st.integers(1, 20), st.just([])),
    lambda children: st.tuples(st.integers(1, 20),
                               st.lists(children, max_size=3)),
    max_leaves=12,
)


def tree_depth(tree) -> int:
    _cost, children = tree
    return 1 + max((tree_depth(c) for c in children), default=0)


def tree_size(tree) -> int:
    _cost, children = tree
    return 1 + sum(tree_size(c) for c in children)


@SLOW
@given(tree=spawn_trees, n=st.integers(2, 6),
       jitter=st.sampled_from([0.0, 0.5]))
def test_finish_waits_for_arbitrary_spawn_forests(tree, n, jitter):
    completed = []

    def task(img, path):
        # trees are looked up by path so the spawn payload stays tiny
        # (spawns are medium AMs with a hard size cap)
        subtree = img.machine.scratch["tree"]
        for idx in path:
            subtree = subtree[1][idx]
        cost, children = subtree
        yield from img.compute(cost * 1e-6)
        for i in range(len(children)):
            target = (img.team_rank() + i + 1) % img.nimages
            yield from img.spawn(task, target, path + (i,))
        completed.append(img.now)

    def kernel(img):
        img.machine.scratch["tree"] = tree
        yield from img.finish_begin()
        if img.rank == 0:
            yield from img.spawn(task, 1 % img.nimages, ())
        waves = yield from img.finish_end()
        return (img.now, waves)

    params = MachineParams.uniform(n, jitter=jitter)
    _m, results = run_spmd(kernel, n, params=params)

    assert len(completed) == tree_size(tree)
    last_task_done = max(completed)
    for exit_time, _waves in results:
        assert exit_time >= last_task_done
    # Theorem 1: waves <= L + 1 where L = longest spawn chain
    waves = results[0][1]
    assert waves <= tree_depth(tree) + 1
    assert all(w == waves for _t, w in results)


@SLOW
@given(tree=spawn_trees, n=st.integers(2, 5))
def test_counters_balance_after_finish(tree, n):
    def task(img, path):
        subtree = img.machine.scratch["tree"]
        for idx in path:
            subtree = subtree[1][idx]
        cost, children = subtree
        yield from img.compute(cost * 1e-6)
        for i in range(len(children)):
            target = (img.team_rank() + i + 1) % img.nimages
            yield from img.spawn(task, target, path + (i,))

    def kernel(img):
        img.machine.scratch["tree"] = tree
        yield from img.finish_begin()
        if img.rank == 0:
            yield from img.spawn(task, 1 % img.nimages, ())
        yield from img.finish_end()

    machine, _ = run_spmd(kernel, n)
    total = {"sent": 0, "delivered": 0, "received": 0, "completed": 0}
    for (_rank, _key), frame in machine._frames.items():
        for epoch in (frame.even, frame.odd):
            total["sent"] += epoch.sent
            total["delivered"] += epoch.delivered
            total["received"] += epoch.received
            total["completed"] += epoch.completed
    assert total["sent"] == total["delivered"] \
        == total["received"] == total["completed"] == tree_size(tree)


@SLOW
@given(n=st.integers(2, 6), blocks=st.integers(1, 4))
def test_repeated_empty_finishes_cost_one_wave_each(n, blocks):
    def kernel(img):
        waves = []
        for _ in range(blocks):
            yield from img.finish_begin()
            waves.append((yield from img.finish_end()))
        return waves

    _m, results = run_spmd(kernel, n)
    for per_image in results:
        assert per_image == [1] * blocks
