"""Unit tests for the reporting helpers."""

import pytest

from repro.harness.reporting import Table, format_seconds


class TestFormatSeconds:
    def test_ranges(self):
        assert format_seconds(0) == "0"
        assert format_seconds(2.5) == "2.500 s"
        assert format_seconds(3.25e-3) == "3.250 ms"
        assert format_seconds(4.2e-6) == "4.20 us"
        assert format_seconds(1.0) == "1.000 s"
        assert format_seconds(1e-3) == "1.000 ms"


class TestTable:
    def test_render_alignment(self):
        t = Table("demo", ["a", "long_header"])
        t.add_row([1, "x"])
        t.add_row([100, "yyy"])
        text = t.render()
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "long_header" in lines[1]
        # all data lines same width structure
        assert lines[3].startswith("1  ")
        assert lines[4].startswith("100")

    def test_row_width_validation(self):
        t = Table("t", ["a", "b"])
        with pytest.raises(ValueError, match="cells"):
            t.add_row([1])

    def test_empty_table_renders(self):
        t = Table("empty", ["x"])
        assert "empty" in t.render()

    def test_print_smoke(self, capsys):
        t = Table("t", ["v"])
        t.add_row([7])
        t.print()
        out = capsys.readouterr().out
        assert "7" in out
