"""Smoke tests for the experiment runners at tiny scales (full-scale
shape assertions live in benchmarks/)."""

import pytest

from repro.harness import (
    ablation_detectors,
    ablation_steal_chunk,
    ablation_tree_radix,
    fig05_barrier_failure,
    fig12_cofence_micro,
    fig13_randomaccess_scaling,
    fig14_bunch_size,
    fig16_uts_load_balance,
    fig17_uts_efficiency,
    fig18_allreduce_rounds,
    theorem1_waves,
)
from repro.apps.uts import TreeParams


def test_fig05(capsys):
    outcomes = fig05_barrier_failure()
    assert not outcomes["barrier"]["sound"]
    assert outcomes["epoch"]["sound"]
    assert "Fig. 5" in capsys.readouterr().out


def test_fig12_tiny(capsys):
    results = fig12_cofence_micro(cores=(4, 8), iterations=5)
    assert set(results) == {"finish", "events", "cofence"}
    for series in results.values():
        assert set(series) == {4, 8}
        assert all(t > 0 for t in series.values())
    assert "Fig. 12" in capsys.readouterr().out


def test_fig13_tiny():
    results = fig13_randomaccess_scaling(
        cores=(2, 4), updates_per_image=16,
        finish_granularities=(2,), quiet=True)
    assert "get-update-put" in results
    assert "FS w/ 2 finish/img" in results


def test_fig14_tiny():
    results = fig14_bunch_size(cores=(4,), bunch_sizes=(4, 16),
                               updates_per_image=32, quiet=True)
    assert results[4][4] > results[4][16]


def test_fig16_tiny():
    results = fig16_uts_load_balance(
        cores=(4,), tree=TreeParams(max_depth=5), quiet=True)
    assert 0 < results[4]["min"] <= 1 <= results[4]["max"]
    assert len(results[4]["fractions"]) == 4


def test_fig17_tiny():
    results = fig17_uts_efficiency(
        cores=(2, 4), tree=TreeParams(max_depth=5), quiet=True)
    assert 0 < results[4] <= results[2] <= 1.001


def test_fig18_tiny():
    results = fig18_allreduce_rounds(
        cores=(4,), tree=TreeParams(max_depth=5), quiet=True)
    assert results["epoch"][4] <= results["wave_unbounded"][4]


def test_theorem1_tiny():
    results = theorem1_waves(chain_lengths=(1, 2), n_images=4, quiet=True)
    assert results[1]["waves"] <= 2
    assert results[2]["waves"] <= 3


def test_ablation_detectors_tiny():
    results = ablation_detectors(
        n_images=4, tree=TreeParams(max_depth=5), quiet=True)
    nodes = {row["total_nodes"] for row in results.values()}
    assert len(nodes) == 1  # every detector counted the same tree


def test_ablation_radix_tiny():
    results = ablation_tree_radix(radixes=(2, 4), n_images=8, repeats=3,
                                  quiet=True)
    assert set(results) == {2, 4}


def test_ablation_steal_chunk_tiny():
    results = ablation_steal_chunk(
        medium_sizes=(80, 256), n_images=4,
        tree=TreeParams(max_depth=5), quiet=True)
    assert results[80]["chunk"] < results[256]["chunk"]
