"""Tests for the `python -m repro.harness` entry point."""

import pytest

from repro.harness.__main__ import EXPERIMENTS, main


def test_experiment_registry_covers_every_figure():
    assert {"fig05", "fig12", "fig13", "fig14", "fig16", "fig17",
            "fig18", "theorem1"} <= set(EXPERIMENTS)


def test_quick_single_experiment(capsys):
    assert main(["--quick", "fig05"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 5" in out
    assert "NO (exited early)" in out


def test_report_file(tmp_path, capsys):
    out_file = tmp_path / "report.txt"
    assert main(["--quick", "theorem1", "--out", str(out_file)]) == 0
    text = out_file.read_text()
    assert "Theorem 1" in text


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["--quick", "fig99"])
