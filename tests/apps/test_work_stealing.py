"""Tests for the Fig. 2 vs Fig. 3 steal-protocol comparison."""

import pytest

from repro.apps.work_stealing import WSConfig, run_work_stealing


class TestConfig:
    def test_invalid_protocol(self):
        with pytest.raises(ValueError, match="protocol"):
            WSConfig(protocol="quantum")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            WSConfig(initial_tasks=0)


class TestProtocols:
    def test_both_protocols_steal_everything_available(self):
        cfg_kwargs = dict(initial_tasks=64, steal_chunk=4,
                          steals_per_thief=8)
        for protocol in ("shipped", "get-put"):
            result = run_work_stealing(
                3, WSConfig(protocol=protocol, **cfg_kwargs))
            # 2 thieves x 8 attempts x 4 items = 64 = everything
            assert result.tasks_stolen == 64
            assert result.steal_attempts == 16

    def test_shipped_uses_fewer_messages(self):
        """Fig. 3 reduces a steal from 5 round trips to 2 one-way
        spawns: the message count collapses."""
        cfg = dict(initial_tasks=128, steal_chunk=4, steals_per_thief=4)
        shipped = run_work_stealing(4, WSConfig(protocol="shipped", **cfg))
        getput = run_work_stealing(4, WSConfig(protocol="get-put", **cfg))
        assert shipped.messages < getput.messages

    def test_shipped_steals_are_faster(self):
        cfg = dict(initial_tasks=128, steal_chunk=4, steals_per_thief=4)
        shipped = run_work_stealing(4, WSConfig(protocol="shipped", **cfg))
        getput = run_work_stealing(4, WSConfig(protocol="get-put", **cfg))
        assert shipped.mean_steal_latency < getput.mean_steal_latency

    def test_no_oversteal(self):
        """Thieves can never steal more tasks than exist."""
        result = run_work_stealing(
            5, WSConfig(protocol="shipped", initial_tasks=16,
                        steal_chunk=8, steals_per_thief=10))
        assert result.tasks_stolen == 16

    def test_single_image_degenerate(self):
        result = run_work_stealing(1, WSConfig())
        assert result.tasks_stolen == 0
        assert result.steal_attempts == 0
