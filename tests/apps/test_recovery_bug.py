"""The seeded crash-recovery bug (the fuzzing service's acceptance
target).

These tests pin the app's *shape* — the empirical timeline constants
the crash menu encodes, the incremental re-apply ladder the coverage
signal climbs, and the fact that only the full conjunction (the one
magic crash time plus every done-post lagged past it) trips the
invariant while every decoy stays clean.  If engine timing changes move
the baseline delivery times, these tests fail before the fuzzing
acceptance runs start silently finding nothing.
"""

import pytest

from repro.apps.recovery_bug import (
    COORDINATOR,
    STORE,
    WORKER,
    RecoveryBugConfig,
    default_crash_menu,
    make_recovery_bug_target,
    run_recovery_bug,
)
from repro.explore.schedule import (
    DefaultSource,
    RecordingSource,
    ReplaySource,
)
from repro.net.faults import FaultPlan

CONFIG = RecoveryBugConfig()
MENU = default_crash_menu(CONFIG)
#: the one reachable-by-lag-only candidate, just past the last baseline
#: done-post delivery
MAGIC = CONFIG.items * CONFIG.work_cost + 3.25e-6
#: fault-menu alternative index for MAGIC (0 is "no crash")
MAGIC_CHOICE = MENU.index(MAGIC) + 1
DONE_KEY = f"event.post:{WORKER}->{COORDINATOR}"


def record_baseline():
    """Record the baseline run (crash menu present, every menu and lag
    choice at its default) and return the records."""
    plan = FaultPlan().crash_choice(WORKER, MENU)
    recorder = RecordingSource(DefaultSource())
    result = run_recovery_bug(CONFIG, faults=plan, schedule=recorder)
    assert result.ok, result
    return recorder.records


def replay(records):
    """Lenient replay (the run re-records itself past any divergence),
    the way fuzzing mutations execute."""
    plan = FaultPlan().crash_choice(WORKER, MENU)
    source = ReplaySource(records, strict=False)
    return run_recovery_bug(CONFIG, faults=plan, schedule=source)


def with_crash(records, choice, lagged_dones=0):
    """The baseline records with the crash menu resolved to ``choice``
    and the first ``lagged_dones`` done-posts lagged to max."""
    out = []
    remaining = lagged_dones
    for r in records:
        if r.domain == "fault" and r.key == f"crash@{WORKER}":
            r = r.replace(choice)
        elif r.domain == "lag" and r.key == DONE_KEY and remaining > 0:
            r = r.replace(r.n - 1)
            remaining -= 1
        out.append(r)
    return out


class TestBaseline:
    def test_clean_run_is_exact(self):
        result = run_recovery_bug()
        assert result.ok
        assert result.store == CONFIG.items
        assert result.done_count == CONFIG.items
        assert not result.recovered

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RecoveryBugConfig(items=0)
        with pytest.raises(ValueError):
            RecoveryBugConfig(work_cost=0)

    def test_drift_tolerance_is_items_minus_one(self):
        assert RecoveryBugConfig(items=5).drift_tolerance == 4


class TestCrashMenu:
    def test_menu_is_sorted_unique_and_contains_magic(self):
        assert list(MENU) == sorted(set(MENU))
        assert MAGIC in MENU
        assert len(MENU) == 14

    def test_baseline_records_carry_the_menu(self):
        records = record_baseline()
        fault = [r for r in records if r.domain == "fault"]
        assert len(fault) == 1
        assert fault[0].key == f"crash@{WORKER}"
        assert fault[0].n == len(MENU) + 1      # + "no crash"
        assert fault[0].labels[MAGIC_CHOICE] == f"t={MAGIC:g}"

    def test_one_done_lag_record_per_item(self):
        records = record_baseline()
        dones = [r for r in records if r.key == DONE_KEY]
        assert len(dones) == CONFIG.items


class TestConjunction:
    """Only crash-at-magic with *every* done post lagged past it fires;
    every proper sub-conjunction and every decoy stays clean."""

    @pytest.fixture(scope="class")
    def baseline(self):
        return record_baseline()

    def test_magic_crash_alone_is_clean(self, baseline):
        # the dones beat the crash to the coordinator: no recovery
        result = replay(with_crash(baseline, MAGIC_CHOICE))
        assert result.ok and not result.recovered

    @pytest.mark.parametrize("lagged", range(1, 5))
    def test_partial_ladder_recovers_within_tolerance(self, baseline,
                                                      lagged):
        # each lagged done strands one item: the recovery path
        # re-applies it (store = items + lagged), but the reconciler
        # writes the drift off — the observable staircase
        result = replay(with_crash(baseline, MAGIC_CHOICE, lagged))
        assert result.recovered
        assert result.done_count == CONFIG.items - lagged
        assert result.store == CONFIG.items + lagged
        assert result.store <= CONFIG.items + CONFIG.drift_tolerance

    def test_full_conjunction_fires_the_invariant(self, baseline):
        result = replay(with_crash(baseline, MAGIC_CHOICE,
                                   CONFIG.items))
        assert result.recovered
        assert result.done_count == 0
        assert result.store == 2 * CONFIG.items
        assert result.store > CONFIG.items + CONFIG.drift_tolerance

    @pytest.mark.parametrize("choice", [
        c for c in range(1, len(MENU) + 1) if c != MAGIC_CHOICE])
    def test_every_decoy_is_clean_even_fully_lagged(self, baseline,
                                                    choice):
        result = replay(with_crash(baseline, choice, CONFIG.items))
        assert CONFIG.items - CONFIG.drift_tolerance <= result.store \
            <= CONFIG.items + CONFIG.drift_tolerance, (choice, result)


class TestTarget:
    def test_target_classifies_the_conjunction_as_invariant(self):
        target = make_recovery_bug_target()
        baseline = record_baseline()
        records = with_crash(baseline, MAGIC_CHOICE, CONFIG.items)
        outcome = target(ReplaySource(records, strict=False))
        assert outcome.failed and outcome.kind == "invariant"
        assert "double-counted" in outcome.message
        assert outcome.fault_picks == {
            f"crash@{WORKER}": f"t={MAGIC:g}"}

    def test_target_baseline_passes(self):
        target = make_recovery_bug_target()
        outcome = target(DefaultSource())
        assert not outcome.failed and outcome.kind == "ok"

    def test_caller_fault_plan_is_not_mutated(self):
        plan = FaultPlan()
        make_recovery_bug_target(faults=plan)
        assert not plan.crash_choices
