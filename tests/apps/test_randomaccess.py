"""Tests for HPCC RandomAccess."""

import numpy as np
import pytest

from repro.apps.randomaccess import (
    RAConfig,
    hpcc_starts,
    hpcc_stream,
    run_randomaccess,
    _owner_and_index,
)


class TestStream:
    def test_starts_zero_is_one(self):
        assert hpcc_starts(0) == 1

    def test_starts_matches_sequential_iteration(self):
        # jump-ahead must agree with stepping the LFSR directly
        seq = hpcc_stream(1, 64)
        for n in (1, 2, 5, 17, 63):
            assert hpcc_starts(n) == int(seq[n - 1])

    def test_stream_values_are_64bit(self):
        s = hpcc_stream(hpcc_starts(100), 100)
        assert s.dtype == np.uint64
        assert int(s.max()) <= (1 << 64) - 1

    def test_stream_deterministic(self):
        assert hpcc_stream(1, 32).tolist() == hpcc_stream(1, 32).tolist()

    def test_disjoint_segments_chain(self):
        whole = hpcc_stream(1, 100)
        second_half = hpcc_stream(hpcc_starts(50), 50)
        assert whole[50:].tolist() == second_half.tolist()


class TestIndexing:
    def test_owner_and_index_cover_table(self):
        ran = hpcc_stream(1, 1000)
        owner, local = _owner_and_index(ran, n_images=4, local_size=256)
        assert owner.min() >= 0 and owner.max() < 4
        assert local.min() >= 0 and local.max() < 256

    def test_global_index_decomposition(self):
        ran = np.array([0x12345678ABCDEF01], dtype=np.uint64)
        owner, local = _owner_and_index(ran, n_images=2, local_size=8)
        g = int(ran[0]) & 15
        assert owner[0] == g // 8
        assert local[0] == g % 8


class TestConfig:
    def test_invalid_variant(self):
        with pytest.raises(ValueError, match="variant"):
            RAConfig(variant="magic")

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            RAConfig(log2_local_table=0)
        with pytest.raises(ValueError):
            RAConfig(bunch_size=0)

    def test_non_power_of_two_images_rejected(self):
        with pytest.raises(ValueError, match="power-of-two"):
            run_randomaccess(3, RAConfig(updates_per_image=4))


class TestRuns:
    def test_function_shipping_checksum_exact(self):
        """FS updates are atomic: the final table xor equals the initial
        xor xored with every update value."""
        cfg = RAConfig(variant="function-shipping", updates_per_image=64,
                       log2_local_table=8, bunch_size=16)
        n = 4
        local = 2 ** cfg.log2_local_table
        expected = 0
        for i in range(n * local):
            expected ^= i
        for r in range(n):
            stream = hpcc_stream(
                hpcc_starts(cfg.stream_offset + cfg.updates_per_image * r),
                cfg.updates_per_image)
            for v in stream:
                expected ^= int(v)
        result = run_randomaccess(n, cfg)
        assert result.checksum == expected
        assert result.total_updates == n * cfg.updates_per_image

    def test_get_update_put_runs(self):
        cfg = RAConfig(variant="get-update-put", updates_per_image=32,
                       log2_local_table=8, window=4)
        result = run_randomaccess(4, cfg)
        assert result.sim_time > 0
        assert result.total_updates == 128
        assert result.finish_blocks == 0

    def test_finish_block_count(self):
        cfg = RAConfig(variant="function-shipping", updates_per_image=64,
                       bunch_size=16)
        result = run_randomaccess(2, cfg)
        # 64/16 = 4 blocks per image, 2 images
        assert result.finish_blocks == 8

    def test_more_finish_blocks_cost_more_time(self):
        """Fig. 14's left side: tiny bunches drown in synchronization."""
        base = dict(variant="function-shipping", updates_per_image=64,
                    log2_local_table=8)
        tiny = run_randomaccess(4, RAConfig(bunch_size=4, **base))
        big = run_randomaccess(4, RAConfig(bunch_size=64, **base))
        assert tiny.sim_time > big.sim_time

    def test_gups_positive(self):
        result = run_randomaccess(2, RAConfig(updates_per_image=32))
        assert result.gups > 0

    def test_verification_fs_is_error_free(self):
        """HPCC verification: the atomic function-shipping variant must
        reproduce the sequential oracle exactly."""
        cfg = RAConfig(variant="function-shipping", updates_per_image=128,
                       log2_local_table=8, bunch_size=32)
        result = run_randomaccess(4, cfg, verify=True)
        assert result.errors == 0
        assert result.error_rate == 0.0

    def test_verification_skipped_by_default(self):
        result = run_randomaccess(2, RAConfig(updates_per_image=16))
        assert result.errors is None
        assert result.error_rate is None

    def test_get_update_put_races_are_real_under_contention(self):
        """§IV-B: 'the reference version has data races.'  Forcing
        contention (a tiny 64-word table under 1024 updates) makes the
        read-modify-write window demonstrably lose updates."""
        cfg = RAConfig(variant="get-update-put", updates_per_image=256,
                       log2_local_table=6, window=16)
        result = run_randomaccess(4, cfg, verify=True)
        assert result.error_rate is not None
        assert result.error_rate > 0.01

    def test_get_update_put_race_free_at_low_contention(self):
        """At realistic table-to-update ratios concurrent updates rarely
        collide — HPCC's <1%-errors acceptance criterion holds."""
        cfg = RAConfig(variant="get-update-put", updates_per_image=64,
                       log2_local_table=10, window=8)
        result = run_randomaccess(4, cfg, verify=True)
        assert result.error_rate < 0.01

    def test_function_shipping_atomic_even_under_contention(self):
        """The FS variant's RMW runs where the data lives: error-free
        even on the contended configuration that breaks get-update-put."""
        cfg = RAConfig(variant="function-shipping", updates_per_image=256,
                       log2_local_table=6, bunch_size=64)
        result = run_randomaccess(4, cfg, verify=True)
        assert result.errors == 0
