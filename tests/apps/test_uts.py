"""Tests for the UTS application."""

import numpy as np
import pytest

from repro.runtime.program import Machine
from repro.apps.uts import (
    DESCRIPTOR_BYTES,
    ITEM_BYTES,
    TreeParams,
    UTSConfig,
    child_descriptor,
    chunk_limit,
    expand,
    num_children,
    pack_items,
    root_descriptor,
    run_uts,
    sequential_tree_size,
    unpack_items,
)


class TestTreeGeneration:
    def test_root_descriptor_is_sha1_of_seed(self):
        import hashlib
        import struct
        p = TreeParams(seed=19)
        assert root_descriptor(p) == hashlib.sha1(
            struct.pack(">i", 19)).digest()
        assert len(root_descriptor(p)) == DESCRIPTOR_BYTES

    def test_children_deterministic(self):
        p = TreeParams()
        root = root_descriptor(p)
        assert expand(root, 0, p) == expand(root, 0, p)

    def test_child_descriptors_distinct(self):
        p = TreeParams()
        root = root_descriptor(p)
        kids = [child_descriptor(root, i) for i in range(10)]
        assert len(set(kids)) == 10

    def test_depth_bound_terminates_tree(self):
        p = TreeParams(max_depth=3)
        assert num_children(root_descriptor(p), 3, p) == 0
        assert num_children(root_descriptor(p), 99, p) == 0

    def test_mean_branching_near_b0(self):
        p = TreeParams(b0=4.0, max_depth=10**9)
        rng = np.random.default_rng(0)
        descs = [bytes(rng.bytes(20)) for _ in range(4000)]
        counts = [num_children(d, 0, p) for d in descs]
        assert 3.5 < np.mean(counts) < 4.5

    def test_sequential_size_reference_values(self):
        # Pin the exact tree sizes so any change to the generation rule
        # is caught (these are this implementation's ground truth).
        assert sequential_tree_size(TreeParams(b0=4, max_depth=4, seed=19)) == 296
        assert sequential_tree_size(TreeParams(b0=4, max_depth=6, seed=19)) == 4845

    def test_params_validation(self):
        with pytest.raises(ValueError):
            TreeParams(b0=0)
        with pytest.raises(ValueError):
            TreeParams(max_depth=-1)

    def test_paper_configuration(self):
        p = TreeParams.paper()
        assert (p.b0, p.max_depth, p.seed) == (4.0, 18, 19)


class TestPacking:
    def test_roundtrip(self):
        items = [(bytes(range(20)), 3), (bytes(20), 0)]
        assert unpack_items(pack_items(items)) == items

    def test_item_size(self):
        assert ITEM_BYTES == 24
        assert len(pack_items([(bytes(20), 1)])) == ITEM_BYTES

    def test_corrupt_payload_rejected(self):
        with pytest.raises(ValueError, match="corrupt"):
            unpack_items(b"x" * 25)

    def test_chunk_limit_is_nine_items_by_default(self):
        # Paper §IV-C.1a: GASNet's medium packet caps a steal at 9 items.
        assert chunk_limit(Machine(2)) == 9


class TestDistributedRun:
    @pytest.mark.parametrize("n_images", [1, 2, 4, 8])
    def test_counts_match_sequential(self, n_images):
        tree = TreeParams(b0=4, max_depth=5, seed=19)
        expected = sequential_tree_size(tree)
        result = run_uts(n_images, UTSConfig(tree=tree))
        assert result.total_nodes == expected

    def test_different_seeds_different_trees(self):
        a = run_uts(2, UTSConfig(tree=TreeParams(max_depth=5, seed=19)))
        b = run_uts(2, UTSConfig(tree=TreeParams(max_depth=5, seed=20)))
        assert a.total_nodes != b.total_nodes

    def test_count_exact_under_hoisted_handler_sends(self):
        # Regression: machine seed 726 used to produce an inconsistent
        # allreduce cut — a shipped function whose receive was folded
        # into the even epoch kept running and its steal/lifeline sends
        # were hidden in the odd epoch, so the finish concluded with
        # counted work outstanding and the kernel returned a stale node
        # count (1112 of 1200).  Causal send tagging in
        # FinishFrame.on_send keeps such sends inside the cut.
        tree = TreeParams(max_depth=5, seed=19)
        expected = sequential_tree_size(tree)
        result = run_uts(4, UTSConfig(tree=tree), seed=726)
        assert result.total_nodes == expected

    def test_run_is_deterministic(self):
        cfg = UTSConfig(tree=TreeParams(max_depth=5))
        a = run_uts(4, cfg, seed=7)
        b = run_uts(4, cfg, seed=7)
        assert a.nodes_per_image == b.nodes_per_image
        assert a.sim_time == b.sim_time

    def test_stealing_happens(self):
        result = run_uts(8, UTSConfig(tree=TreeParams(max_depth=6)))
        assert result.steals_attempted > 0
        assert result.lifeline_pushes > 0

    def test_load_balance_reasonable(self):
        result = run_uts(8, UTSConfig(tree=TreeParams(max_depth=7)))
        frac = np.array(result.nodes_per_image) / (result.total_nodes / 8)
        assert frac.min() > 0.5
        assert frac.max() < 2.0

    def test_parallel_efficiency_band(self):
        tree = TreeParams(max_depth=7)
        cfg = UTSConfig(tree=tree, node_cost=2e-6)
        total = sequential_tree_size(tree)
        result = run_uts(8, cfg)
        efficiency = (total * cfg.node_cost / 8) / result.sim_time
        assert 0.5 < efficiency <= 1.0

    def test_finish_rounds_recorded(self):
        result = run_uts(4, UTSConfig(tree=TreeParams(max_depth=5)))
        assert result.finish_rounds >= 1
