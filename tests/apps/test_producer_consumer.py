"""Tests for the cofence micro-benchmark (Fig. 11/12)."""

import pytest

from repro.apps.producer_consumer import (
    COPY_BYTES,
    FANOUT,
    PCConfig,
    VARIANTS,
    run_producer_consumer,
)


class TestConfig:
    def test_paper_constants(self):
        assert COPY_BYTES == 80
        assert FANOUT == 5

    def test_invalid_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            PCConfig(variant="mutex")

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            PCConfig(iterations=0)


class TestVariants:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_variant_completes(self, variant):
        result = run_producer_consumer(
            4, PCConfig(variant=variant, iterations=20))
        assert result.sim_time > 0
        assert result.variant == variant
        assert result.copies == 20 * FANOUT

    def test_fig12_ordering(self):
        """The paper's core claim: local data completion (cofence) beats
        local operation completion (events) beats global completion
        (finish)."""
        times = {}
        for variant in VARIANTS:
            result = run_producer_consumer(
                8, PCConfig(variant=variant, iterations=50))
            times[variant] = result.sim_time
        assert times["cofence"] < times["events"] < times["finish"]

    def test_finish_gap_grows_with_cores(self):
        """finish costs O(log p) latencies per round; the cofence/finish
        ratio must widen as the team grows."""
        ratios = {}
        for n in (4, 16):
            cf = run_producer_consumer(
                n, PCConfig(variant="cofence", iterations=30)).sim_time
            fi = run_producer_consumer(
                n, PCConfig(variant="finish", iterations=30)).sim_time
            ratios[n] = fi / cf
        assert ratios[16] > ratios[4]

    def test_deterministic(self):
        a = run_producer_consumer(4, PCConfig(iterations=10), seed=3)
        b = run_producer_consumer(4, PCConfig(iterations=10), seed=3)
        assert a.sim_time == b.sim_time
