"""Unit tests for the surface-dialect lexer."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(source):
    return [(t.kind, t.value) for t in tokenize(source)
            if t.kind not in ("NEWLINE", "EOF")]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("FINISH Finish finish") == [
            ("KEYWORD", "finish")] * 3

    def test_names_preserve_case(self):
        assert kinds("myVar") == [("NAME", "myVar")]

    def test_integers_and_floats(self):
        assert kinds("42 3.5 1e3 2.5e-2") == [
            ("INT", "42"), ("FLOAT", "3.5"), ("FLOAT", "1e3"),
            ("FLOAT", "2.5e-2"),
        ]

    def test_strings_both_quotes(self):
        assert kinds("\"hi\" 'there'") == [
            ("STRING", "hi"), ("STRING", "there")]

    def test_operators_longest_match(self):
        assert kinds("a ** b == c /= d :: e <= f") == [
            ("NAME", "a"), ("OP", "**"), ("NAME", "b"), ("OP", "=="),
            ("NAME", "c"), ("OP", "/="), ("NAME", "d"), ("OP", "::"),
            ("NAME", "e"), ("OP", "<="), ("NAME", "f"),
        ]

    def test_comments_stripped(self):
        assert kinds("x = 1  ! the answer") == [
            ("NAME", "x"), ("OP", "="), ("INT", "1")]

    def test_comment_only_line_produces_no_tokens(self):
        toks = tokenize("! nothing here\nx = 1")
        assert toks[0].kind in ("NAME",)

    def test_newlines_separate_statements(self):
        toks = tokenize("a = 1\nb = 2")
        newlines = [t for t in toks if t.kind == "NEWLINE"]
        assert len(newlines) == 2

    def test_line_numbers(self):
        toks = tokenize("a = 1\n\nb = 2")
        b = next(t for t in toks if t.value == "b")
        assert b.line == 3

    def test_unterminated_string(self):
        with pytest.raises(LexError, match="unterminated"):
            tokenize('x = "oops')

    def test_bad_character(self):
        with pytest.raises(LexError, match="unexpected character"):
            tokenize("x = 1 @ 2")

    def test_codimension_brackets(self):
        assert kinds("a(2)[3]") == [
            ("NAME", "a"), ("OP", "("), ("INT", "2"), ("OP", ")"),
            ("OP", "["), ("INT", "3"), ("OP", "]"),
        ]
