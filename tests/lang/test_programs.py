"""End-to-end tests of the bundled .caf programs and paper listings."""

import pathlib

import pytest

from repro.lang import run_program

CAF_DIR = pathlib.Path(__file__).parents[2] / "examples" / "caf"


def load(name: str) -> str:
    return (CAF_DIR / name).read_text()


class TestBundledPrograms:
    def test_fig3_steal(self):
        machine, results, prints = run_program(load("fig3_steal.caf"), 4,
                                               capture_prints=True)
        # 3 thieves x chunk 8 = 24 tasks executed, visible everywhere
        assert results == [24] * 4
        assert machine.stats["spawn.executed"] == 6  # 3 steals + 3 provides
        assert any("24" in line for line in prints)

    def test_fig3_steal_single_thief(self):
        _m, results, _p = run_program(load("fig3_steal.caf"), 2,
                                      capture_prints=True)
        assert results == [8] * 2

    def test_fig11_microbench(self):
        machine, _results, prints = run_program(load("fig11_microbench.caf"),
                                                4, capture_prints=True)
        assert machine.stats["copy.initiated"] == 50 * 5
        assert machine.stats["cofence.calls"] == 50
        assert any("producer done" in line for line in prints)

    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_ring(self, n):
        _m, results, _p = run_program(load("ring.caf"), n,
                                      capture_prints=True)
        expected = 2 * sum(range(n))
        assert results[0] == expected

    @pytest.mark.parametrize("n", [2, 4])
    def test_fig8_pipeline(self, n):
        machine, results, _p = run_program(load("fig8_pipeline.caf"), n,
                                           capture_prints=True)
        # every image received its predecessor's 8 values
        for r in range(n):
            pred = (r - 1) % n
            expected = sum(pred * 100 + i for i in range(1, 9))
            assert results[r] == expected
        assert machine.stats["cofence.calls"] == 8 * n

    @pytest.mark.parametrize("n", [1, 3, 4])
    def test_fib(self, n):
        machine, results, _p = run_program(load("fib.caf"), n,
                                           capture_prints=True)
        assert results == [55] * n  # fib(10), summed across all images
        assert machine.stats["spawn.executed"] == 177  # full spawn tree


class TestPaperListings:
    def test_fig10_cofence_dynamic_scoping(self):
        """Paper Fig. 10: a cofence inside a shipped function covers only
        that function's asynchronous operations."""
        src = """
program fig10
  integer :: a(4)[*]
  integer :: b(4)[*]
  integer :: mine(4)
  mine = 1
  copy_async(a(:)[1], mine(:))
  finish
    if (this_image() == 0) then
      spawn foo() [1]
    end if
    cofence()
  end finish
  return b(1)[0]
end program

function foo()
  integer :: local(4)
  local = 7
  copy_async(b(:)[0], local(:))
  cofence()
end function
"""
        _m, results, _p = run_program(src, 2, capture_prints=True)
        assert results == [7, 7]

    def test_fig9_broadcast_style_double_buffer(self):
        """The Fig. 9 idea expressed with copy_async + directed cofence:
        overwrite the send buffer as soon as WRITE-class ops may pass."""
        src = """
program fig9ish
  integer :: stage(1)[*]
  integer :: out(1)
  event :: tick[*]
  integer :: r, succ
  succ = mod(this_image() + 1, num_images())
  do r = 1, 3
    out(1) = this_image() * 10 + r
    copy_async(stage(1)[succ], out(1), tick[succ])
    call event_wait(tick)
    call team_barrier()
  end do
  return stage(1)
end program
"""
        _m, results, _p = run_program(src, 3, capture_prints=True)
        # each image holds its predecessor's round-3 value
        assert results == [(r - 1) % 3 * 10 + 3 for r in range(3)]

    def test_fig2_get_put_lock_steal(self):
        """Paper Fig. 2: the five-round-trip steal written with blocking
        remote reads/writes and a remote lock."""
        src = """
program fig2
  integer :: metadata(1)[*]
  integer :: queue(32)[*]
  integer :: stolen(1)[*]
  lock :: qlock[*]
  integer :: m, w, i

  if (this_image() == 0) then
    metadata(1) = 32
    do i = 1, 32
      queue(i) = i
    end do
  end if
  call team_barrier()

  if (this_image() /= 0) then
    m = metadata(1)[0]
    if (m > 0) then
      call lock(qlock, 0)
      m = metadata(1)[0]
      if (m > 0) then
        w = min(m, 4)
        metadata(1)[0] = m - w
        stolen(1) = stolen(1) + w
      end if
      call unlock(qlock, 0)
    end if
  end if
  call team_barrier()
  return allreduce(stolen(1))
end program
"""
        _m, results, _p = run_program(src, 5, capture_prints=True)
        assert results == [16] * 5  # 4 thieves x 4 tasks, race-free
