"""Tests for teams in the surface language (§II-A)."""

import pytest

from repro.lang import run_program
from repro.sim.tasks import TaskFailed


def run(source, n=6):
    return run_program(source, n, capture_prints=True)


def test_world_team_default():
    src = """
program t
  team :: everyone
  return team_size(everyone) * 100 + team_rank(everyone)
end program
"""
    _m, results, _p = run(src, n=3)
    assert results == [300, 301, 302]


def test_team_split_by_parity():
    src = """
program t
  team :: half
  half = team_split(world(), mod(this_image(), 2), this_image())
  return team_size(half) * 100 + team_rank(half)
end program
"""
    _m, results, _p = run(src, n=6)
    assert results == [300, 300, 301, 301, 302, 302]


def test_subteam_collectives_are_isolated():
    src = """
program t
  team :: half
  half = team_split(world(), mod(this_image(), 2), this_image())
  return allreduce_on(half, this_image())
end program
"""
    _m, results, _p = run(src, n=6)
    assert results == [6, 9, 6, 9, 6, 9]


def test_broadcast_on_subteam():
    src = """
program t
  team :: half
  half = team_split(world(), mod(this_image(), 2), this_image())
  return broadcast_on(half, this_image() * 10, 1)
end program
"""
    _m, results, _p = run(src, n=4)
    # team rank 1 of evens is image 2; of odds is image 3
    assert results == [20, 30, 20, 30]


def test_finish_on_subteam():
    src = """
program t
  team :: half
  integer :: hits(1)[*]
  half = team_split(world(), mod(this_image(), 2), this_image())
  finish(half)
    if (team_rank(half) == 0) then
      spawn mark() [this_image() + 2]
    end if
  end finish
  call team_barrier()
  return allreduce(hits(1))
end program

function mark()
  hits(1) = hits(1) + 1
  call compute(1.0e-6)
end function
"""
    _m, results, _p = run(src, n=6)
    assert results == [2] * 6  # one spawn per half-team


def test_finish_requires_team_value():
    src = """
program t
  finish(42)
  end finish
end program
"""
    with pytest.raises(TaskFailed, match="team value"):
        run(src, n=2)


def test_barrier_on_synchronizes_subteam():
    src = """
program t
  team :: half
  half = team_split(world(), mod(this_image(), 2), this_image())
  if (mod(this_image(), 2) == 0) then
    call compute(1.0e-5)
  end if
  call barrier_on(half)
  return 1
end program
"""
    m, results, _p = run(src, n=4)
    assert results == [1] * 4
