"""Interpreter tests: surface programs executed on the runtime."""

import numpy as np
import pytest

from repro.lang import CafError, run_program
from repro.sim.tasks import TaskFailed


def run(source, n=4, **kwargs):
    return run_program(source, n, capture_prints=True, **kwargs)


def wrap(body, functions=""):
    return f"program t\n{body}\nend program\n{functions}"


class TestSequentialCore:
    def test_arithmetic_and_assignment(self):
        _m, results, _p = run(wrap(
            "integer :: a\n"
            "a = 2 + 3 * 4 - 1\n"
            "return a"), n=1)
        assert results == [13]

    def test_integer_division_truncates(self):
        _m, results, _p = run(wrap("return 7 / 2"), n=1)
        assert results == [3]

    def test_real_division(self):
        _m, results, _p = run(wrap("return 7.0 / 2"), n=1)
        assert results == [3.5]

    def test_do_loop_sum(self):
        _m, results, _p = run(wrap(
            "integer :: s, i\n"
            "do i = 1, 10\ns = s + i\nend do\nreturn s"), n=1)
        assert results == [55]

    def test_do_loop_step_and_exit_cycle(self):
        _m, results, _p = run(wrap(
            "integer :: s, i\n"
            "do i = 1, 100, 2\n"
            "  if (i == 5) then\n    cycle\n  end if\n"
            "  if (i > 9) then\n    exit\n  end if\n"
            "  s = s + i\n"
            "end do\nreturn s"), n=1)
        assert results == [1 + 3 + 7 + 9]

    def test_do_while(self):
        _m, results, _p = run(wrap(
            "integer :: n, c\nn = 20\n"
            "do while (n > 1)\n"
            "  n = n / 2\n  c = c + 1\n"
            "end do\nreturn c"), n=1)
        assert results == [4]

    def test_if_elseif_else(self):
        src = wrap(
            "integer :: x\n"
            "if (this_image() == 0) then\nx = 10\n"
            "else if (this_image() == 1) then\nx = 20\n"
            "else\nx = 30\nend if\n"
            "return x")
        _m, results, _p = run(src, n=3)
        assert results == [10, 20, 30]

    def test_arrays_one_based(self):
        _m, results, _p = run(wrap(
            "integer :: a(5)\ninteger :: i\n"
            "do i = 1, 5\na(i) = i * i\nend do\n"
            "return a(1) + a(5)"), n=1)
        assert results == [26]

    def test_array_slices(self):
        _m, results, _p = run(wrap(
            "integer :: a(6)\n"
            "a(1:3) = 7\n"
            "return sum(a(1:4))"), n=1)
        assert results == [21]

    def test_out_of_bounds_is_an_error(self):
        with pytest.raises(TaskFailed, match="main"):
            run(wrap("integer :: a(3)\na(4) = 1"), n=1)

    def test_undeclared_name_is_an_error(self):
        with pytest.raises(TaskFailed):
            run(wrap("ghost = 1"), n=1)

    def test_print_capture(self):
        _m, _r, prints = run(wrap('print *, "value", 1 + 1'), n=2)
        assert len(prints) == 2
        assert all("value 2" in line for line in prints)


class TestParallelConstructs:
    def test_this_image_and_num_images(self):
        _m, results, _p = run(wrap(
            "return this_image() * 100 + num_images()"), n=3)
        assert results == [3, 103, 203]

    def test_coarray_sections_are_private(self):
        _m, results, _p = run(wrap(
            "integer :: x(2)[*]\n"
            "x = this_image()\n"
            "call team_barrier()\n"
            "return x(1)"), n=3)
        assert results == [0, 1, 2]

    def test_remote_read_and_write(self):
        src = wrap(
            "integer :: x(4)[*]\n"
            "x = this_image() + 1\n"
            "call team_barrier()\n"
            "if (this_image() == 0) then\n"
            "  x(2)[1] = 99\n"           # remote put
            "end if\n"
            "call team_barrier()\n"
            "return x(2)[1]")            # remote read from everyone
        _m, results, _p = run(src, n=3)
        assert results == [99, 99, 99]

    def test_collectives(self):
        src = wrap(
            "integer :: g\n"
            "g = allreduce(this_image() + 1)\n"
            "g = g + team_broadcast(this_image() * 10, 2)\n"
            "return g")
        _m, results, _p = run(src, n=4)
        assert results == [10 + 20] * 4

    def test_event_wait_notify(self):
        src = wrap(
            "event :: e[*]\n"
            "integer :: x(1)[*]\n"
            "if (this_image() == 1) then\n"
            "  x(1) = 42\n"
            "  call event_notify(e[0])\n"
            "end if\n"
            "if (this_image() == 0) then\n"
            "  call event_wait(e)\n"
            "  return x(1)[1]\n"
            "end if\n"
            "return 0")
        _m, results, _p = run(src, n=2)
        assert results[0] == 42

    def test_copy_async_and_cofence(self):
        src = wrap(
            "integer :: buf(4)[*]\n"
            "integer :: mine(4)\n"
            "if (this_image() == 0) then\n"
            "  mine = 5\n"
            "  copy_async(buf(:)[1], mine(:))\n"
            "  cofence()\n"
            "  mine = 0\n"               # safe after the fence
            "end if\n"
            "finish\nend finish\n"        # cheap global sync point
            "return buf(1)")
        _m, results, _p = run(src, n=2)
        assert results[1] == 5

    def test_finish_covers_spawn(self):
        src = wrap(
            "integer :: c(1)[*]\n"
            "finish\n"
            "  if (this_image() == 0) then\n"
            "    spawn bump(3) [1]\n"
            "  end if\n"
            "end finish\n"
            "return c(1)[1]",
            functions=(
                "function bump(n)\n"
                "  integer :: i\n"
                "  do i = 1, n\n"
                "    call compute(1.0e-6)\n"
                "    c(1) = c(1) + 1\n"
                "  end do\n"
                "  if (n > 1) then\n"
                "    spawn bump(n - 1) [this_image()]\n"
                "  end if\n"
                "end function"))
        _m, results, _p = run(src, n=2)
        # 3 + 2 + 1 increments, all complete before anyone's end finish
        assert results == [6, 6]

    def test_spawn_passes_coarray_by_reference(self):
        src = wrap(
            "integer :: tab(4)[*]\n"
            "finish\n"
            "  if (this_image() == 0) then\n"
            "    spawn fill(tab(2)[1], 9) [1]\n"
            "  end if\n"
            "end finish\n"
            "return tab(2)[1]",
            functions=(
                "function fill(slot, v)\n"
                "  slot = v\n"
                "end function"))
        # `slot` arrives as a CoarrayRef (by reference, §II-C.2) and
        # assignment writes through it to image 1's section.
        _m, results, _p = run(src, n=2)
        assert results == [9, 9]

    def test_spawn_manipulates_target_section(self):
        src = wrap(
            "integer :: tab(4)[*]\n"
            "finish\n"
            "  if (this_image() == 0) then\n"
            "    spawn fill(2, 9) [1]\n"
            "  end if\n"
            "end finish\n"
            "return tab(2)[1]",
            functions=(
                "function fill(i, v)\n"
                "  tab(i) = v\n"          # tab's *local* section: image 1's
                "end function"))
        _m, results, _p = run(src, n=2)
        assert results == [9, 9]

    def test_lock_mutual_exclusion(self):
        src = wrap(
            "integer :: counter(1)[*]\n"
            "lock :: l[*]\n"
            "integer :: i, v\n"
            "finish\n"
            "  do i = 1, 3\n"
            "    spawn bump_home() [0]\n"
            "  end do\n"
            "end finish\n"
            "call team_barrier()\n"
            "return counter(1)[0]",
            functions=(
                "function bump_home()\n"
                "  integer :: v\n"
                "  call lock(l, this_image())\n"
                "  v = counter(1)\n"
                "  call compute(1.0e-6)\n"
                "  counter(1) = v + 1\n"
                "  call unlock(l, this_image())\n"
                "end function"))
        _m, results, _p = run(src, n=4)
        assert results[0] == 12  # 4 images x 3 spawns, none lost


class TestErrors:
    def test_event_without_codimension(self):
        with pytest.raises(TaskFailed, match="co-dimension"):
            run(wrap("integer :: x\nif (x == 0) then\n"
                     "event :: e\nend if"), n=1)

    def test_spawn_unknown_function(self):
        with pytest.raises(TaskFailed, match="unknown function"):
            run(wrap("finish\nspawn ghost() [0]\nend finish"), n=1)

    def test_spawn_wrong_arity(self):
        with pytest.raises(TaskFailed, match="argument"):
            run(wrap("finish\nspawn f(1, 2) [0]\nend finish",
                     functions="function f(a)\nend function"), n=1)

    def test_non_coarray_remote_access(self):
        with pytest.raises(TaskFailed, match="co-dimension"):
            run(wrap("integer :: a(2)\ninteger :: v\nv = a(1)[1]"), n=2)

    def test_determinism(self):
        src = wrap(
            "integer :: v\n"
            "v = random_int(1, 1000)\n"
            "return allreduce(v)")
        _m1, r1, _ = run(src, n=4, seed=5)
        _m2, r2, _ = run(src, n=4, seed=5)
        assert r1 == r2
