"""Unit tests for the surface-dialect builtins."""

import numpy as np
import pytest

from repro.lang import builtins as B
from repro.lang import run_program


def test_lookup_is_case_insensitive_and_total():
    assert B.lookup("MOD") is B.lookup("mod") is not None
    assert B.lookup("nonesuch") is None


def test_event_arg_builtins_registry():
    assert B.EVENT_ARG_BUILTINS == {"event_wait", "event_notify"}
    for name in B.EVENT_ARG_BUILTINS:
        assert B.lookup(name) is not None


class TestIntrinsicsThroughPrograms:
    def run_expr(self, expr, n=1):
        src = f"program t\nreturn {expr}\nend program"
        _m, results, _p = run_program(src, n, capture_prints=True)
        return results[0]

    def test_mod(self):
        assert self.run_expr("mod(17, 5)") == 2

    def test_min_max(self):
        assert self.run_expr("min(4, 2, 9)") == 2
        assert self.run_expr("max(4, 2, 9)") == 9

    def test_abs(self):
        assert self.run_expr("abs(0 - 7)") == 7

    def test_int_real_conversion(self):
        assert self.run_expr("int(3.9)") == 3
        assert self.run_expr("real(3) / 2") == 1.5

    def test_size_and_sum(self):
        src = ("program t\ninteger :: a(5)\na = 2\n"
               "return size(a) * 100 + sum(a)\nend program")
        _m, results, _p = run_program(src, 1, capture_prints=True)
        assert results[0] == 510

    def test_random_int_range(self):
        for _ in range(3):
            v = self.run_expr("random_int(3, 5)")
            assert 3 <= v <= 5

    def test_random_image_excludes_self(self):
        src = ("program t\ninteger :: i, v\n"
               "do i = 1, 20\n"
               "  v = random_image()\n"
               "  if (v == this_image()) then\n    return -1\n  end if\n"
               "  if (v < 0 or v >= num_images()) then\n"
               "    return -2\n  end if\n"
               "end do\nreturn 0\nend program")
        _m, results, _p = run_program(src, 4, capture_prints=True)
        assert results == [0] * 4

    def test_random_image_single_image(self):
        assert self.run_expr("random_image()", n=1) == 0

    def test_compute_advances_clock(self):
        src = ("program t\ncall compute(5.0e-6)\nreturn 1\nend program")
        m, _r, _p = run_program(src, 1, capture_prints=True)
        assert m.sim.now >= 5e-6

    def test_collective_builtins(self):
        src = ("program t\n"
               "integer :: s, b\n"
               "s = team_scan(this_image() + 1)\n"
               "b = team_broadcast(s, num_images() - 1)\n"
               "return s * 100 + b\nend program")
        _m, results, _p = run_program(src, 3, capture_prints=True)
        # scans are 1, 3, 6; the broadcast distributes the last one
        assert results == [106, 306, 606]
