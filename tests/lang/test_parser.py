"""Unit tests for the surface-dialect parser."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import ParseError, parse


def parse_body(statements: str) -> tuple:
    return parse(f"program t\n{statements}\nend program").body


class TestStructure:
    def test_minimal_program(self):
        prog = parse("program p\nend program")
        assert prog.name == "p"
        assert prog.body == ()

    def test_program_with_functions(self):
        prog = parse(
            "program p\nend program\n"
            "function f(a, b)\nend function\n"
            "subroutine s()\nend subroutine\n")
        assert set(prog.functions) == {"f", "s"}
        assert prog.functions["f"].params == ("a", "b")

    def test_duplicate_function_rejected(self):
        with pytest.raises(ParseError, match="twice"):
            parse("program p\nend program\n"
                  "function f()\nend function\n"
                  "function f()\nend function\n")

    def test_unclosed_block(self):
        with pytest.raises(ParseError, match="mismatched"):
            parse("program p\nif (true) then\nend program")
        with pytest.raises(ParseError, match="end of file"):
            parse("program p\nif (true) then\nx = 1")

    def test_mismatched_end(self):
        with pytest.raises(ParseError, match="mismatched"):
            parse("program p\ndo i = 1, 3\nend if\nend do\nend program")


class TestDeclarations:
    def test_scalar(self):
        (decl,) = parse_body("integer :: n")
        assert decl == A.Decl("integer", "n", None, False)

    def test_array_coarray(self):
        (decl,) = parse_body("real :: a(8)[*]")
        assert decl.type_name == "real"
        assert decl.shape == A.Num(8)
        assert decl.codimension

    def test_multi_declaration(self):
        (group,) = parse_body("integer :: a, b(4), c[*]")
        names = [d.name for d in group.then_body]
        assert names == ["a", "b", "c"]

    def test_event_and_lock(self):
        body = parse_body("event :: e[*]\nlock :: l[*]")
        assert body[0].type_name == "event"
        assert body[1].type_name == "lock"


class TestStatements:
    def test_assignment_targets(self):
        body = parse_body("integer :: a(4)[*]\n"
                          "a = 1\na(2) = 1\na(1:3) = 1\na(2)[1] = 1")
        assert isinstance(body[1].target, A.Var)
        assert body[2].target.selector == A.Num(2)
        assert isinstance(body[3].target.selector, A.Slice)
        assert body[4].target.image == A.Num(1)

    def test_if_else(self):
        (stmt,) = parse_body(
            "if (x > 1) then\ny = 1\nelse\ny = 2\nend if")
        assert isinstance(stmt, A.If)
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_do_loop_with_step(self):
        (stmt,) = parse_body("do i = 1, 10, 2\nend do")
        assert stmt.var == "i"
        assert stmt.step == A.Num(2)

    def test_do_while(self):
        (stmt,) = parse_body("do while (n > 0)\nn = n - 1\nend do")
        assert isinstance(stmt, A.DoWhile)

    def test_finish_block(self):
        (stmt,) = parse_body("finish\nx = 1\nend finish")
        assert isinstance(stmt, A.Finish)
        assert len(stmt.body) == 1

    def test_cofence_arguments(self):
        body = parse_body("cofence\ncofence()\n"
                          "cofence(downward=write)\n"
                          "cofence(downward=read, upward=any)")
        assert body[0] == A.Cofence(None, None)
        assert body[1] == A.Cofence(None, None)
        assert body[2] == A.Cofence("write", None)
        assert body[3] == A.Cofence("read", "any")

    def test_cofence_bad_keyword(self):
        with pytest.raises(ParseError, match="DOWNWARD/UPWARD"):
            parse_body("cofence(sideways=read)")

    def test_copy_async_with_events(self):
        (stmt,) = parse_body("copy_async(a(1)[2], b(1), pre, se, de)")
        assert isinstance(stmt, A.CopyAsync)
        assert len(stmt.events) == 3

    def test_copy_async_too_many_events(self):
        with pytest.raises(ParseError, match="at most 3"):
            parse_body("copy_async(a, b, e1, e2, e3, e4)")

    def test_spawn(self):
        (stmt,) = parse_body("spawn work(x, 3) [victim]")
        assert stmt.function == "work"
        assert len(stmt.args) == 2
        assert stmt.image == A.Var("victim")
        assert stmt.event is None

    def test_spawn_with_event(self):
        (stmt,) = parse_body("spawn(e) work() [2]")
        assert stmt.event == A.Var("e")

    def test_print(self):
        (stmt,) = parse_body('print *, "x is", x')
        assert stmt.values == (A.Str("x is"), A.Var("x"))

    def test_return(self):
        body = parse_body("return\nreturn x + 1")
        assert body[0].value is None
        assert isinstance(body[1].value, A.BinOp)


class TestExpressions:
    def expr(self, text):
        (stmt,) = parse_body(f"x = {text}")
        return stmt.value

    def test_precedence(self):
        e = self.expr("1 + 2 * 3")
        assert e == A.BinOp("+", A.Num(1),
                            A.BinOp("*", A.Num(2), A.Num(3)))

    def test_power_right_associative(self):
        e = self.expr("2 ** 3 ** 2")
        assert e == A.BinOp("**", A.Num(2),
                            A.BinOp("**", A.Num(3), A.Num(2)))

    def test_comparison_and_logic(self):
        e = self.expr("a < b and not c")
        assert e.op == "and"
        assert e.left.op == "<"
        assert e.right.op == "not"

    def test_single_arg_is_index(self):
        e = self.expr("a(i)")
        assert isinstance(e, A.Index)

    def test_multi_arg_is_call(self):
        e = self.expr("mod(a, b)")
        assert e == A.Call("mod", (A.Var("a"), A.Var("b")))

    def test_empty_parens_is_call(self):
        e = self.expr("this_image()")
        assert e == A.Call("this_image")

    def test_remote_element(self):
        e = self.expr("a(i)[p]")
        assert e == A.Index(A.Var("a"), A.Var("i"), A.Var("p"))

    def test_slices(self):
        e = self.expr("a(1:4)")
        assert e.selector == A.Slice(A.Num(1), A.Num(4))
        e = self.expr("a(:)")
        assert e.selector == A.Slice(None, None)
