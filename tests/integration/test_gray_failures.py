"""Gray-failure acceptance: UTS weak-scale survives a ×10 straggler and
a mid-run-healing partition with the *exact* sequential tree count —
zero re-executed spawns, zero surfaced PeerFailedErrors, zero confirmed
deaths (ISSUE PR6 acceptance criteria).

The straggler makes one image slow enough to be falsely suspected; its
traffic parks in the transport quarantine and flushes on unsuspect, so
the count stays exact without any compensation.  The healing partition
additionally exercises the reconciliation algebra in reverse: if a
false *confirmation* slipped through, add-back (unreconcile) would have
to repair the counters — the zero-recovered assertion proves it never
needed to.
"""

import pytest

from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    run_uts,
    sequential_tree_size,
)
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology
from repro.runtime.failure import FailureConfig

TREE = TreeParams(b0=4, max_depth=7, seed=19)


def _expected() -> int:
    return sequential_tree_size(TREE)


class TestStragglerScenario:
    def test_uts_exact_through_x10_straggler(self):
        plan = FaultPlan().straggle(1, 10.0, degrade_at=2e-4)
        r = run_uts(4, UTSConfig(tree=TREE), seed=42, faults=plan,
                    failure_detection=FailureConfig(recover=True))
        assert r.total_nodes == _expected()
        assert r.recovered_spawns == 0          # nothing re-executed
        assert r.failed_images == ()            # nothing confirmed dead


class TestHealingPartitionScenario:
    @pytest.mark.parametrize("detector", ["timeout", "phi"])
    def test_uts_exact_through_mid_run_healing_partition(self, detector):
        """Reliable transport parks cross-partition retransmissions on
        suspicion and flushes them at the heal; finish completes with
        the exact count.

        The phi case is a regression guard: sustained mutual suspicion
        across the partition once let a coordinator round decide over
        ``alive_members`` only — an inconsistent cut whose unmatched
        sends/completions cancelled to a spurious zero verdict, so
        finish concluded while suspected images still held live work
        (UTS undercount 2582/19438).  Rounds now require a report from
        every member not confirmed dead."""
        n = 4
        params = MachineParams(topology=UniformTopology(n), reliable=True)
        plan = FaultPlan().partition([[0, 1], [2, 3]], at=3e-4,
                                     heal_at=1.5e-3)
        r = run_uts(n, UTSConfig(tree=TREE), seed=42, params=params,
                    faults=plan,
                    failure_detection=FailureConfig(recover=True,
                                                    detector=detector))
        assert r.total_nodes == _expected()
        assert r.recovered_spawns == 0
        assert r.failed_images == ()
        assert r.retransmits > 0                # the partition did bite


class TestGrayFailureDeterminism:
    @pytest.mark.parametrize("plan_maker", [
        lambda: FaultPlan().straggle(1, 10.0, degrade_at=2e-4),
        lambda: FaultPlan().partition([[0, 1], [2, 3]], at=3e-4,
                                      heal_at=1.5e-3),
    ], ids=["straggler", "partition"])
    def test_identical_seed_and_plan_replay_bit_identical(self, plan_maker):
        params = MachineParams(topology=UniformTopology(4), reliable=True)

        def once():
            r = run_uts(4, UTSConfig(tree=TREE), seed=7, params=params,
                        faults=plan_maker(),
                        failure_detection=FailureConfig(recover=True))
            return (r.total_nodes, r.sim_time, r.retransmits,
                    r.recovered_spawns, r.failed_images)

        assert once() == once()
