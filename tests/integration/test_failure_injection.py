"""Failure injection: the runtime must stay consistent when user code
misbehaves or the network is hostile."""

import numpy as np
import pytest

from repro import MachineParams, run_spmd
from repro.sim.tasks import TaskFailed


class TestFailingShippedFunctions:
    def test_finish_terminates_when_shipped_function_raises(self, spmd):
        """A crashing shipped function still counts as completed (its
        failure is its own problem) — finish must not hang."""

        def bomb(img):
            yield from img.compute(1e-6)
            raise RuntimeError("shipped function crashed")

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(bomb, 1)
            rounds = yield from img.finish_end()
            return rounds

        _m, results = spmd(kernel, n=3)
        assert all(r >= 1 for r in results)

    def test_crash_in_chain_does_not_orphan_counters(self, spmd):
        """A crash mid-chain: work spawned before the raise completes,
        work after it never starts, finish still terminates."""
        done = []

        def leaf(img):
            done.append(img.rank)
            yield from img.compute(1e-7)

        def middle(img):
            yield from img.spawn(leaf, 0)
            raise ValueError("boom")
            yield from img.spawn(leaf, 2)  # unreachable

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(middle, 1)
            yield from img.finish_end()
            return list(done)

        _m, results = spmd(kernel, n=3)
        assert results[0] == [0]

    def test_main_kernel_exception_is_not_swallowed(self, spmd):
        def kernel(img):
            yield from img.compute(1e-6)
            if img.rank == 1:
                raise KeyError("user bug on image 1")

        with pytest.raises(TaskFailed, match="main@1"):
            spmd(kernel, n=2)


class TestHostileNetworks:
    @pytest.mark.parametrize("jitter", [0.3, 0.9])
    def test_heavy_jitter_never_breaks_finish(self, spmd, jitter):
        def hop(img, n):
            yield from img.compute(1e-6)
            if n:
                yield from img.spawn(hop, (img.team_rank() + 1) % img.nimages,
                                     n - 1)

        def kernel(img):
            yield from img.finish_begin()
            yield from img.spawn(hop, (img.rank + 1) % img.nimages, 3)
            yield from img.finish_end()

        params = MachineParams.uniform(5, jitter=jitter)
        spmd(kernel, n=5, params=params)

    def test_slow_acks_delay_local_op_not_local_data(self, spmd):
        def setup(m):
            m.coarray("T", shape=4)

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                op = img.copy_async(T.ref(1), np.ones(4))
                yield op.local_data
                t_ld = img.now
                yield op.local_op
                return (t_ld, img.now)
            yield from img.compute(1e-3)
            return None

        fast = MachineParams.uniform(2, ack_latency_factor=1.0)
        slow = MachineParams.uniform(2, ack_latency_factor=20.0)
        _m, r_fast = spmd(kernel, n=2, setup=setup, params=fast)
        _m, r_slow = spmd(kernel, n=2, setup=setup, params=slow)
        # local data unchanged; local op pays the slow ack
        assert r_slow[0][0] == pytest.approx(r_fast[0][0])
        assert r_slow[0][1] > r_fast[0][1]

    def test_tight_flow_control_preserves_uts_correctness(self):
        from repro.apps.uts import (TreeParams, UTSConfig, run_uts,
                                    sequential_tree_size)
        tree = TreeParams(max_depth=5)
        params = MachineParams.uniform(
            4, flow_credits=1, flow_credit_scope="source",
            flow_stall_penalty=1e-6)
        result = run_uts(4, UTSConfig(tree=tree), params=params)
        assert result.total_nodes == sequential_tree_size(tree)


class TestScaleSmoke:
    def test_hundred_plus_images_barrier_and_finish(self, spmd):
        def kernel(img):
            yield from img.barrier()
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(_noop, img.nimages - 1)
            rounds = yield from img.finish_end()
            total = yield from img.allreduce(1)
            return (rounds, total)

        _m, results = spmd(kernel, n=128)
        assert all(total == 128 for _r, total in results)

    def test_single_image_machine_degenerates_gracefully(self, spmd):
        def kernel(img):
            yield from img.barrier()
            yield from img.finish_begin()
            yield from img.spawn(_noop, 0)  # spawn to self
            rounds = yield from img.finish_end()
            v = yield from img.allreduce(42)
            buf = np.zeros(2)
            buf[:] = 7.0
            op = img.broadcast_async(buf, root=0)
            yield op.local_op
            return (rounds, v)

        _m, results = spmd(kernel, n=1)
        assert results[0][1] == 42


def _noop(img):
    yield from img.compute(1e-7)
