"""Chaos integration: the full application stack above an unreliable
network.  With the reliable transport, application results must match
the clean-network baseline; without it, the liveness watchdog must turn
the resulting stall into a diagnostic rather than a hang."""

import pytest

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.runtime.program import DeadlockError, Machine, run_spmd
from repro.sim.engine import LivenessError
from repro.apps.producer_consumer import PCConfig, run_producer_consumer
from repro.apps.randomaccess import RAConfig, run_randomaccess
from repro.apps.uts import TreeParams, UTSConfig, run_uts, sequential_tree_size

CHAOS = dict(drop=0.05, duplicate=0.02)


def reliable(n, **kwargs):
    return MachineParams.uniform(n, reliable=True, **kwargs)


class TestUTSUnderChaos:
    TREE = TreeParams(b0=4, max_depth=7, seed=19)

    def test_uts_result_matches_baseline_and_oracle(self):
        config = UTSConfig(tree=self.TREE)
        base = run_uts(8, config, params=reliable(8), seed=5)
        chaos = run_uts(8, config, params=reliable(8), seed=5,
                        faults=FaultPlan(**CHAOS, seed=23))
        expected = sequential_tree_size(self.TREE)
        assert base.total_nodes == expected
        assert chaos.total_nodes == expected
        assert chaos.retransmits > 0
        assert chaos.drops > 0
        assert chaos.dups > 0

    def test_uts_chaos_run_is_reproducible(self):
        """Same seeds → bit-identical chaos run, including timing and
        per-image work distribution."""
        config = UTSConfig(tree=self.TREE)
        runs = [run_uts(8, config, params=reliable(8), seed=5,
                        faults=FaultPlan(**CHAOS, seed=23))
                for _ in range(2)]
        assert runs[0] == runs[1]

    def test_duplication_only_chaos_is_behavior_identical(self):
        """Duplicates are suppressed before any user-visible side effect
        and the fault rng is a separate stream, so a duplicate-only plan
        changes nothing the application can observe.  (The machine's
        final clock may differ by the tail of late dup re-acks draining
        after the kernels finish, so ``sim_time`` is not compared.)"""
        config = UTSConfig(tree=self.TREE)
        base = run_uts(8, config, params=reliable(8), seed=5)
        dup = run_uts(8, config, params=reliable(8), seed=5,
                      faults=FaultPlan(duplicate=0.3, seed=29))
        assert dup.dups > 0
        assert dup.nodes_per_image == base.nodes_per_image
        assert dup.steals_attempted == base.steals_attempted
        assert dup.steals_successful == base.steals_successful
        assert dup.finish_rounds == base.finish_rounds


class TestRandomAccessUnderChaos:
    CONFIG = RAConfig(log2_local_table=8, updates_per_image=64)

    def test_checksum_identical_and_verified(self):
        base = run_randomaccess(4, self.CONFIG, params=reliable(4),
                                seed=5, verify=True)
        chaos = run_randomaccess(4, self.CONFIG, params=reliable(4),
                                 seed=5, verify=True,
                                 faults=FaultPlan(**CHAOS, seed=31))
        assert base.errors == 0
        assert chaos.errors == 0  # exactly-once xor updates
        assert chaos.checksum == base.checksum
        assert chaos.total_updates == base.total_updates
        assert chaos.retransmits > 0 and chaos.drops > 0


class TestProducerConsumerUnderChaos:
    @pytest.mark.parametrize("variant", ["events", "cofence", "finish"])
    def test_both_variants_complete(self, variant):
        config = PCConfig(variant=variant, iterations=4)
        base = run_producer_consumer(4, config, params=reliable(4), seed=5)
        chaos = run_producer_consumer(4, config, params=reliable(4), seed=5,
                                      faults=FaultPlan(**CHAOS, seed=37))
        assert chaos.copies == base.copies
        assert chaos.iterations == base.iterations


class TestTheorem1UnderChaos:
    def test_wave_bound_with_faults(self):
        def hop(img, remaining):
            yield from img.compute(5e-5)
            if remaining > 1:
                yield from img.spawn(hop,
                                     (img.team_rank() + 1) % img.nimages,
                                     remaining - 1)

        def kernel(img, length):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(hop, 1, length)
            rounds = yield from img.finish_end()
            return rounds

        for length in (2, 4):
            m, rounds = run_spmd(kernel, 8, params=reliable(8),
                                 args=(length,),
                                 faults=FaultPlan(duplicate=0.3, seed=41))
            clean_m, clean = run_spmd(kernel, 8, params=reliable(8),
                                      args=(length,))
            assert rounds == clean
            assert clean[0] <= length + 1


class TestLivenessWatchdog:
    def _stalling_kernel(self):
        def remote(img):
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()
            return img.rank

        return kernel

    def test_unreliable_drop_becomes_diagnostic_not_hang(self):
        """Acceptance criterion: with reliability disabled a lost counted
        message stalls finish; the watchdog must name the stalled images
        and quote their counter snapshots."""
        with pytest.raises(LivenessError) as exc:
            run_spmd(self._stalling_kernel(), 4,
                     faults=FaultPlan().drop_nth("spawn", 1),
                     max_events=500_000)
        text = str(exc.value)
        assert "quiescence without completion" in text
        assert "main@0" in text and "main@3" in text
        assert "sent=1, delivered=0" in text  # image 0's stranded epoch
        assert "reliable=OFF" in text
        assert "lost: " in text and "spawn" in text

    def test_random_drops_without_reliability_also_diagnosed(self):
        with pytest.raises(LivenessError):
            run_spmd(self._stalling_kernel(), 4,
                     faults=FaultPlan(drop=0.9, seed=43),
                     max_events=500_000)

    def test_plain_deadlock_still_raises_deadlock_error(self):
        """No fault evidence → the watchdog stays out of the way, even
        with a (duplicate-only) plan installed."""
        def kernel(img):
            if img.rank == 0:
                ev = img.machine.make_event(name="never")
                yield from img.event_wait(ev)  # nobody posts
            yield from img.barrier()

        with pytest.raises(DeadlockError, match="main@"):
            run_spmd(kernel, 2,
                     faults=FaultPlan(duplicate=0.2, seed=47),
                     max_events=100_000)

    def test_failed_image_exception_still_wins(self):
        """A crashed image wedges its peers; the root-cause exception
        must surface, not a liveness report."""
        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                raise RuntimeError("application bug")
            yield from img.finish_end()

        with pytest.raises(RuntimeError, match="application bug"):
            run_spmd(kernel, 2, faults=FaultPlan(drop=0.3, seed=53),
                     max_events=100_000)

    def test_watchdog_reports_machine_run_too(self):
        """The hook fires from Machine.run as well as run_spmd."""
        machine = Machine(2, faults=FaultPlan().drop_nth("spawn", 1))

        def remote(img):
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()

        machine.launch(kernel)
        with pytest.raises(LivenessError):
            machine.run(max_events=100_000)
