"""Cross-module integration scenarios: realistic programs that compose
several constructs at once."""

import numpy as np
import pytest

from repro import HierarchicalTopology, MachineParams, run_spmd


class TestBroadcastDoubleBuffering:
    def test_fig9_pattern(self, spmd):
        """Paper Fig. 9: the broadcast root uses the window between
        local data completion and local operation completion to prepare
        the next round's buffer while participants capture arrival with
        a cofence-equivalent wait."""
        ROUNDS = 4

        def kernel(img):
            received = []
            buf = np.zeros(8)
            for rnd in range(ROUNDS):
                if img.rank == 0:
                    buf[:] = float(rnd)
                    op = img.broadcast_async(buf, root=0)
                    # local data completion: buf reusable immediately
                    yield op.local_data
                    buf[:] = -99.0  # prepare next round early
                    yield op.local_op
                else:
                    op = img.broadcast_async(buf, root=0)
                    yield op.local_data  # arrival
                    received.append(float(buf[0]))
                yield from img.barrier()
            return received

        _m, results = spmd(kernel, n=6)
        for r in range(1, 6):
            assert results[r] == [0.0, 1.0, 2.0, 3.0]

    def test_pipeline_with_cofence_fig8(self, spmd):
        """Paper Fig. 8: a ring pipeline where each stage uses directed
        cofences to overlap its sends and receives."""
        STEPS = 5

        def setup(m):
            m.coarray("ring", shape=STEPS, dtype=np.float64)
            m.make_event(name="step")

        def kernel(img):
            ring = img.machine.coarray_by_name("ring")
            step_ev = img.machine.event_by_name("step")
            succ = (img.rank + 1) % img.nimages
            out = np.zeros(1)
            for i in range(STEPS):
                out[0] = img.rank * 100 + i
                img.copy_async(ring.ref(succ, i), out)
                # WRITE-class ops (none here) may pass; the READ-class
                # send must be locally complete before out is reused.
                yield from img.cofence(downward="write")
                yield from img.event_notify(step_ev.at(succ))
                yield from img.event_wait(step_ev)
            yield from img.barrier()
            return ring.local_at(img.rank).tolist()

        _m, results = spmd(kernel, n=4, setup=setup)
        for r in range(4):
            pred = (r - 1) % 4
            assert results[r] == [pred * 100 + i for i in range(STEPS)]


class TestMapReduceStyle:
    def test_spawn_map_then_gather_reduce(self, spmd):
        """Ship map tasks with finish, then tree-reduce the results."""

        def map_task(img, lo, hi):
            part = img.machine.coarray_by_name("partials")
            total = sum(i * i for i in range(lo, hi))
            part.local_at(img.rank)[0] += total
            yield from img.compute((hi - lo) * 1e-8)

        def setup(m):
            m.coarray("partials", shape=1, dtype=np.float64)

        def kernel(img):
            part = img.machine.coarray_by_name("partials")
            N = 1000
            yield from img.finish_begin()
            if img.rank == 0:
                chunk = N // img.nimages
                for t in range(img.nimages):
                    lo = t * chunk
                    hi = N if t == img.nimages - 1 else lo + chunk
                    yield from img.spawn(map_task, t, lo, hi)
            yield from img.finish_end()
            total = yield from img.allreduce(float(part.local_at(img.rank)[0]))
            return total

        _m, results = spmd(kernel, n=5, setup=setup)
        expected = float(sum(i * i for i in range(1000)))
        assert results == [expected] * 5


class TestConcurrentSubteamFinishes:
    def test_disjoint_teams_run_independent_finishes(self, spmd):
        """Two halves of the machine run separate finish blocks with
        separate spawn traffic, concurrently."""

        def work(img, tag):
            box = img.machine.scratch.setdefault("boxes", [])
            box.append((tag, img.rank))
            yield from img.compute(1e-6)

        def kernel(img):
            half = yield from img.team_split(img.team_world,
                                             color=img.rank % 2,
                                             key=img.rank)
            yield from img.finish_begin(team=half)
            partner = (img.team_rank(half) + 1) % half.size
            yield from img.spawn(work, partner, img.rank % 2, team=half)
            yield from img.finish_end()
            yield from img.barrier()
            return sorted(img.machine.scratch["boxes"])

        _m, results = spmd(kernel, n=6)
        boxes = results[0]
        evens = [(t, r) for t, r in boxes if t == 0]
        odds = [(t, r) for t, r in boxes if t == 1]
        assert len(evens) == 3 and all(r % 2 == 0 for _t, r in evens)
        assert len(odds) == 3 and all(r % 2 == 1 for _t, r in odds)

    def test_nested_finish_with_subteam_collective(self, spmd):
        def kernel(img):
            evens = yield from img.team_split(img.team_world,
                                              color=img.rank % 2,
                                              key=img.rank)
            yield from img.finish_begin()              # world finish
            if img.rank % 2 == 0:
                yield from img.finish_begin(team=evens)  # nested, subset
                buf = np.zeros(2)
                if img.team_rank(evens) == 0:
                    buf[:] = 5.0
                img.broadcast_async(buf, root=0, team=evens)
                yield from img.finish_end()
                assert buf.tolist() == [5.0, 5.0]
            yield from img.finish_end()

        spmd(kernel, n=4)


class TestHierarchicalMachine:
    def test_everything_composes_on_a_clustered_topology(self):
        """Smoke the full construct set on a hierarchical (node-based)
        topology with flow control and jitter at once."""
        n = 16
        params = MachineParams(
            topology=HierarchicalTopology(n, images_per_node=4),
            flow_credits=8, jitter=0.3,
        )

        def worker(img):
            yield from img.compute(1e-6)

        def kernel(img):
            yield from img.finish_begin()
            yield from img.spawn(worker, (img.rank + 5) % img.nimages)
            yield from img.finish_end()
            v = yield from img.allreduce(1)
            return v

        _m, results = run_spmd(kernel, n, params=params)
        assert results == [n] * n
