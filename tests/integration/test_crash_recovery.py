"""End-to-end fail-stop crash scenarios (DESIGN §11): UTS completing
correctly despite a mid-run crash, structured failure reporting when
recovery is off, and deterministic replay of both."""

import pytest

from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    run_uts,
    sequential_tree_size,
)
from repro.net.faults import FaultPlan
from repro.runtime.failure import FailureConfig, ImageFailureError
from repro.runtime.program import run_spmd

TREE = TreeParams(b0=4, max_depth=7, seed=19)
#: crash during initial work sharing: the victim has neither processed
#: nor forwarded work yet, so recovery is exact (DESIGN §11.5)
CRASH_T = 1e-5


def crash_plan(image=2, t=CRASH_T):
    return FaultPlan().crash_at(image, t)


class TestUTSCrashRecovery:
    def test_recovery_reproduces_exact_tree_count(self):
        expected = sequential_tree_size(TREE)
        r = run_uts(4, UTSConfig(tree=TREE), seed=42, faults=crash_plan(),
                    failure_detection=FailureConfig(recover=True))
        assert r.total_nodes == expected
        assert r.failed_images == (2,)
        assert r.nodes_per_image[2] is None  # its memory died with it
        assert r.recovered_spawns > 0

    def test_crash_after_n_sends_also_recovers(self):
        expected = sequential_tree_size(TREE)
        r = run_uts(4, UTSConfig(tree=TREE), seed=42,
                    faults=FaultPlan().crash_after_n_sends(2, 1),
                    failure_detection=FailureConfig(recover=True))
        assert r.total_nodes == expected
        assert r.failed_images == (2,)

    def test_fixed_seed_reproducible(self):
        runs = [run_uts(4, UTSConfig(tree=TREE), seed=42,
                        faults=crash_plan(),
                        failure_detection=FailureConfig(recover=True))
                for _ in range(2)]
        a, b = runs
        assert a.total_nodes == b.total_nodes
        assert a.nodes_per_image == b.nodes_per_image
        assert a.sim_time == b.sim_time
        assert a.recovered_spawns == b.recovered_spawns

    def test_report_only_raises_structured_error_not_hang(self):
        with pytest.raises(ImageFailureError) as ei:
            run_uts(4, UTSConfig(tree=TREE), seed=42, faults=crash_plan(),
                    failure_detection=FailureConfig())
        exc = ei.value
        assert exc.dead == (2,)
        assert exc.detected_at >= CRASH_T
        assert exc.orphans  # the crash orphaned counted sends
        assert exc.epochs   # non-quiet frames were snapshotted

    def test_report_only_error_reproducible(self):
        def capture():
            try:
                run_uts(4, UTSConfig(tree=TREE), seed=42,
                        faults=crash_plan(),
                        failure_detection=FailureConfig())
            except ImageFailureError as exc:
                return (exc.dead, exc.detected_at, exc.orphans)
            return None

        assert capture() == capture() != None


class TestCrashWithoutDetection:
    def test_watchdog_raises_instead_of_hanging(self):
        """No failure detector: the drain-hook watchdog still surfaces a
        structured ImageFailureError when the crash wedges survivors."""

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(_remote_work, 1)
            yield from img.finish_end()

        def _remote_work(img):
            yield from img.compute(1e-3)

        with pytest.raises(ImageFailureError) as ei:
            run_spmd(kernel, 2, faults=FaultPlan().crash_at(1, 5e-5))
        assert ei.value.dead == (1,)


class TestRecoveryMechanics:
    def test_lost_spawn_reexecutes_on_surviving_spawner(self):
        done_on = []

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(_mark, 1)
            rounds = yield from img.finish_end()
            return rounds

        def _mark(img):
            yield from img.compute(1e-4)
            done_on.append(img.rank)

        m, rounds = run_spmd(kernel, 2,
                             faults=FaultPlan().crash_at(1, 5e-5),
                             failure_detection=FailureConfig(recover=True))
        assert done_on == [0]  # re-executed locally on the spawner
        assert m.stats["spawn.recovered"] == 1
        assert rounds[0] >= 1 and rounds[1] is None

    def test_spawn_to_already_suspected_peer_reroutes(self):
        done_on = []

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.compute(2e-3)  # outlive detection
                yield from img.spawn(_mark, 1)
            yield from img.finish_end()

        def _mark(img):
            done_on.append(img.rank)
            yield from img.compute(1e-6)

        m, _ = run_spmd(kernel, 2, faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig(recover=True))
        assert done_on == [0]
        assert m.stats["spawn.rerouted"] == 1

    def test_crash_after_work_done_recovers_nothing(self):
        """A crash after the shipped function completed (and the finish
        closed) must not re-execute anything."""
        done_on = []

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(_mark, 1)
            yield from img.finish_end()

        def _mark(img):
            yield from img.compute(1e-5)
            done_on.append(img.rank)

        m, _ = run_spmd(kernel, 2, faults=FaultPlan().crash_at(1, 1.0),
                        failure_detection=FailureConfig(recover=True))
        assert done_on == [1]
        assert m.stats["spawn.recovered"] == 0
