"""Fuzzing-service acceptance (DESIGN.md §15): coverage-guided search
must beat a blind single-process random walk by an order of magnitude
on both seeded bugs, at equal seeds and in the same choice space, and
every finding must replay deterministically from its JSON artifact.

The measured gap (see EXPERIMENTS.md) is ~19-27x depending on the
random-walk cap; the assertion keeps 2x slack below the measured floor
so engine-timing drift fails loudly only when the mechanism actually
degrades.
"""

import pytest

from repro.explore import Explorer, RandomWalkStrategy, Schedule, \
    check_replay_determinism
from repro.explore.fuzz import FuzzConfig, FuzzService, TargetSpec

#: the two seeded bugs, as picklable target specs
SPECS = {
    "ordering_bug": TargetSpec(
        "repro.apps.ordering_bug:make_ordering_bug_target", {}),
    "recovery_bug": TargetSpec(
        "repro.apps.recovery_bug:make_recovery_bug_target", {}),
}
SEEDS = (0, 1, 2, 3)
LAG_STEPS = 4          # both searchers face the same quantized space
RW_CAP = 2000          # unfound random walks are charged the full cap
FUZZ_BUDGET = 1500


class TestCoverageGuidedBeatsRandomWalk:
    @pytest.fixture(scope="class")
    def totals(self, tmp_path_factory):
        findings_root = tmp_path_factory.mktemp("findings")
        rw_total = 0
        fuzz_total = 0
        artifacts = []
        for name, spec in sorted(SPECS.items()):
            target = spec.build()
            for seed in SEEDS:
                explorer = Explorer(target, budget=RW_CAP,
                                    minimize=False)
                report = explorer.run_strategy(RandomWalkStrategy(
                    seed=seed, lag_steps=LAG_STEPS))
                rw_total += (report.found_at + 1 if report.found
                             else RW_CAP)

                service = FuzzService(
                    spec,
                    # sync_every=10: the inline loop stops on chunk
                    # boundaries, so coarse chunks would overcharge the
                    # fuzzer for schedules it never needed (the search
                    # trajectory itself is chunk-size independent)
                    FuzzConfig(budget=FUZZ_BUDGET, workers=0,
                               seed=seed, lag_steps=LAG_STEPS,
                               max_findings=1, minimize_budget=300,
                               sync_every=10),
                    findings_dir=str(findings_root / f"{name}-{seed}"))
                fuzz_report = service.run()
                assert fuzz_report.found, (
                    f"{name} seed {seed}: coverage-guided search "
                    f"missed the seeded bug in {FUZZ_BUDGET} schedules")
                finding = fuzz_report.findings[0]
                assert finding.verified, (name, seed,
                                          finding.to_json())
                fuzz_total += fuzz_report.schedules_run
                artifacts.append((spec, finding.path))
        return rw_total, fuzz_total, artifacts

    def test_at_least_ten_x_fewer_schedules(self, totals):
        rw_total, fuzz_total, _ = totals
        ratio = rw_total / fuzz_total
        assert ratio >= 10.0, (
            f"coverage-guided fuzzing spent {fuzz_total} schedules vs "
            f"random walk's {rw_total} (ratio {ratio:.1f}x < 10x)")

    def test_every_finding_replays_from_its_artifact(self, totals):
        _, _, artifacts = totals
        assert artifacts
        for spec, path in artifacts:
            schedule = Schedule.load(path)
            target = spec.build()
            assert check_replay_determinism(target, schedule, times=2)
            outcome = target(schedule.source(strict=True))
            assert outcome.failed and outcome.kind == "invariant"
