"""Smoke tests: every bundled example must run end-to-end (with scaled
arguments where supported)."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parents[2] / "examples"


def run_example(name: str, argv: list, monkeypatch, capsys) -> str:
    monkeypatch.setattr(sys, "argv", [name] + argv)
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(monkeypatch, capsys):
    out = run_example("quickstart.py", [], monkeypatch, capsys)
    assert "allreduce of ranks = 28" in out
    assert "shipped function" in out


def test_uts_demo(monkeypatch, capsys):
    out = run_example("uts_demo.py", ["--images", "4", "--depth", "5"],
                      monkeypatch, capsys)
    assert "MATCH" in out
    assert "parallel efficiency" in out


def test_randomaccess_demo(monkeypatch, capsys):
    out = run_example("randomaccess_demo.py",
                      ["--images", "4", "--updates", "64"],
                      monkeypatch, capsys)
    assert "function-shipping" in out
    assert "bunch size" in out


def test_halo_exchange(monkeypatch, capsys):
    out = run_example("halo_exchange.py",
                      ["--images", "4", "--cells", "16", "--steps", "4"],
                      monkeypatch, capsys)
    assert "max |error| vs sequential reference: 0.00e+00" in out


def test_work_stealing_demo(monkeypatch, capsys):
    out = run_example("work_stealing_demo.py", ["--images", "3"],
                      monkeypatch, capsys)
    assert "faster" in out


def test_caf_demo(monkeypatch, capsys):
    out = run_example("caf_demo.py", ["--images", "4"],
                      monkeypatch, capsys)
    assert "fig3_steal.caf" in out
    assert "shipped functions" in out


def test_trace_demo(monkeypatch, capsys, tmp_path):
    out_file = tmp_path / "trace.json"
    out = run_example(
        "trace_demo.py",
        ["--images", "4", "--depth", "5", "--out", str(out_file)],
        monkeypatch, capsys)
    assert "trace events" in out
    assert out_file.exists()
    import json
    events = json.loads(out_file.read_text())["traceEvents"]
    assert any(e.get("name") == "compute" for e in events)
