"""Tests for Machine assembly and SPMD launch."""

import numpy as np
import pytest

from repro import MachineParams
from repro.runtime.program import DeadlockError, Machine, run_spmd


class TestConstruction:
    def test_defaults(self):
        m = Machine(4)
        assert m.n_images == 4
        assert m.team_world.size == 4
        assert m.params.n_images == 4

    def test_params_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="describe"):
            Machine(4, params=MachineParams.uniform(8))

    def test_flow_credits_wire_up(self):
        m = Machine(2, params=MachineParams.uniform(2, flow_credits=4))
        assert m.credits is not None
        assert m.am.credits is m.credits

    def test_team_interning(self):
        m = Machine(4)
        a = m.intern_team([1, 2])
        b = m.intern_team([1, 2])
        c = m.intern_team([0, 3])
        assert a is b
        assert a is not c
        assert m.team_by_id(a.id) is a

    def test_unknown_team_id(self):
        m = Machine(2)
        with pytest.raises(KeyError):
            m.team_by_id(10**9)


class TestRunSpmd:
    def test_results_in_rank_order(self):
        def kernel(img):
            yield from img.compute((img.rank + 1) * 1e-6)
            return img.rank * 10

        _m, results = run_spmd(kernel, n_images=4)
        assert results == [0, 10, 20, 30]

    def test_args_forwarded(self):
        def kernel(img, base):
            yield from img.barrier()
            return base + img.rank

        _m, results = run_spmd(kernel, n_images=3, args=(100,))
        assert results == [100, 101, 102]

    def test_setup_runs_before_launch(self):
        seen = []

        def setup(m):
            seen.append(m.n_images)
            m.coarray("A", shape=2)

        def kernel(img):
            yield from img.barrier()
            return img.machine.coarray_by_name("A").local_at(img.rank).sum()

        run_spmd(kernel, n_images=2, setup=setup)
        assert seen == [2]

    def test_determinism(self):
        def kernel(img):
            victim = int(img.rng.integers(0, img.nimages))
            yield from img.compute(1e-6)
            v = yield from img.allreduce(victim)
            return v

        _m1, r1 = run_spmd(kernel, n_images=4, seed=42)
        _m2, r2 = run_spmd(kernel, n_images=4, seed=42)
        assert r1 == r2
        _m3, r3 = run_spmd(kernel, n_images=4, seed=43)
        # different seed gives different victim choices (overwhelmingly)
        assert r1 == r2 != r3 or r1 == r2 == r3  # equality allowed but rare

    def test_deadlock_detection(self):
        def kernel(img):
            if img.rank == 0:
                # waits forever: nobody notifies
                ev = img.machine.make_event(name=f"never{img.rank}")
                yield from img.event_wait(ev)
            yield from img.barrier()

        with pytest.raises(DeadlockError, match="main@"):
            run_spmd(kernel, n_images=2)

    def test_kernel_exception_propagates(self):
        def kernel(img):
            yield from img.compute(1e-6)
            raise RuntimeError("user bug")

        from repro.sim.tasks import TaskFailed
        with pytest.raises(TaskFailed, match="main@0"):
            run_spmd(kernel, n_images=1)

    def test_busy_accounting(self):
        def kernel(img):
            yield from img.compute(2e-6 * (img.rank + 1))

        m, _ = run_spmd(kernel, n_images=2)
        assert m.busy.busy.tolist() == pytest.approx([2e-6, 4e-6])

    def test_summary(self):
        def kernel(img):
            yield from img.compute(1e-6)
            yield from img.finish_begin()
            yield from img.finish_end()
            yield from img.cofence()

        m, _ = run_spmd(kernel, n_images=4)
        s = m.summary()
        assert s["images"] == 4
        assert s["sim_time"] == m.sim.now > 0
        assert s["finish_blocks"] == 4
        assert s["cofences"] == 4
        assert s["busy_total"] == pytest.approx(4e-6)
        assert s["busy_imbalance"] == pytest.approx(1.0)
        assert s["messages"] > 0


class TestWaitHelpers:
    def test_wait_all(self):
        import numpy as np

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                ops = [img.copy_async(T.ref(1, i), np.float64(i))
                       for i in range(3)]
                yield from img.wait_all(ops)
                assert all(op.global_done.done for op in ops)
            yield from img.barrier()
            return T.local_at(img.rank).tolist()

        m = Machine(2)
        m.coarray("T", shape=3)
        m.launch(kernel)
        results = m.run()
        assert results[1] == [0.0, 1.0, 2.0]

    def test_wait_any_returns_first_index(self):
        import numpy as np

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            if img.rank == 0:
                slow = img.copy_async(T.ref(1, slice(None)),
                                      np.ones(4096))    # remote, bulky
                fast = img.copy_async(T.ref(0, 0),
                                      np.float64(9))    # local memcpy
                winner = yield from img.wait_any([slow, fast])
                return winner
            yield from img.compute(1e-4)
            return None

        m = Machine(2, params=None)
        m.coarray("T", shape=4096)
        m.launch(kernel)
        results = m.run()
        assert results[0] == 1  # the small copy completed first

    def test_wait_all_empty_is_noop(self):
        def kernel(img):
            yield from img.wait_all([])
            return img.now

        m = Machine(1)
        m.launch(kernel)
        assert m.run() == [0.0]

    def test_wait_any_empty_rejected(self):
        def kernel(img):
            yield from img.wait_any([])

        from repro.sim.tasks import TaskFailed
        m = Machine(1)
        m.launch(kernel)
        with pytest.raises(TaskFailed):
            m.run()


class TestEventPosting:
    def test_post_event_local_is_immediate(self):
        m = Machine(2)
        ev = m.make_event(name="e")
        m.post_event(ev.ref_for(0), from_rank=0)
        assert ev.count_at(0) == 1

    def test_post_event_remote_travels(self):
        m = Machine(2)
        ev = m.make_event(name="e")
        m.post_event(ev.ref_for(1), from_rank=0)
        assert ev.count_at(1) == 0  # not yet delivered
        m.sim.run()
        assert ev.count_at(1) == 1

    def test_when_event_local(self):
        m = Machine(2)
        ev = m.make_event(name="e")
        fired = []
        m.when_event(ev.ref_for(0), initiator=0, action=lambda: fired.append(m.sim.now))
        m.sim.schedule(3e-6, ev.post, 0)
        m.sim.run()
        assert fired == [pytest.approx(3e-6)]

    def test_when_event_remote_round_trips(self):
        m = Machine(2)
        ev = m.make_event(name="e")
        fired = []
        m.when_event(ev.ref_for(1), initiator=0, action=lambda: fired.append(m.sim.now))
        m.sim.schedule(1e-6, ev.post, 1)
        m.sim.run()
        # action fires at the initiator after the notify hop back
        assert fired and fired[0] > 1e-6 + m.params.topology.latency(1, 0)
