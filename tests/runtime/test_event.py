"""Unit and SPMD tests for event variables."""

import pytest

from repro.runtime.program import Machine


class TestCounters:
    def test_post_and_count(self):
        m = Machine(2)
        ev = m.make_event(name="e")
        assert ev.count_at(0) == 0
        ev.post(0)
        ev.post(0, 2)
        assert ev.count_at(0) == 3
        assert ev.count_at(1) == 0

    def test_at_translates_team_rank(self):
        m = Machine(4)
        sub = m.intern_team([2, 3])
        ev = m.make_event(team=sub)
        assert ev.at(0).world_rank == 2
        with pytest.raises(ValueError):
            ev.at(2)

    def test_ref_for_nonmember_rejected(self):
        m = Machine(4)
        sub = m.intern_team([0, 1])
        ev = m.make_event(team=sub)
        with pytest.raises(ValueError):
            ev.ref_for(3)

    def test_invalid_counts(self):
        m = Machine(2)
        ev = m.make_event()
        with pytest.raises(ValueError):
            ev.post(0, 0)
        with pytest.raises(ValueError):
            list(ev.consume_when_ready(0, 0))

    def test_named_registration(self):
        m = Machine(2)
        ev = m.make_event(name="mine")
        assert m.event_by_name("mine") is ev
        with pytest.raises(ValueError):
            m.make_event(name="mine")


class TestWaitNotify:
    def test_local_notify_wakes_waiter(self, spmd):
        def setup(m):
            m.make_event(name="e")

        def kernel(img):
            ev = img.machine.event_by_name("e")
            if img.rank == 0:
                yield from img.event_wait(ev)
                return img.now
            elif img.rank == 1:
                yield from img.compute(5e-6)
                yield from img.event_notify(ev.at(0))
                return None
            return None

        _m, results = spmd(kernel, n=2, setup=setup)
        # waiter resumed only after the remote notify landed
        assert results[0] > 5e-6

    def test_wait_consumes_posts(self, spmd):
        def setup(m):
            m.make_event(name="e")

        def kernel(img):
            ev = img.machine.event_by_name("e")
            if img.rank == 1:
                for _ in range(3):
                    yield from img.event_notify(ev.at(0))
            if img.rank == 0:
                yield from img.event_wait(ev, count=2)
                yield from img.event_wait(ev, count=1)
                return ev.count_at(0)
            yield from img.barrier()
            return None

        # note: rank 0 skips the barrier; keep ranks consistent instead
        def kernel2(img):
            ev = img.machine.event_by_name("e")
            if img.rank == 1:
                for _ in range(3):
                    yield from img.event_notify(ev.at(0))
            if img.rank == 0:
                yield from img.event_wait(ev, count=2)
                yield from img.event_wait(ev, count=1)
            yield from img.barrier()
            return ev.count_at(0)

        _m, results = spmd(kernel2, n=2, setup=setup)
        assert results[0] == 0

    def test_wait_on_remote_counter_rejected(self, spmd):
        def setup(m):
            m.make_event(name="e")

        def kernel(img):
            ev = img.machine.event_by_name("e")
            if img.rank == 0:
                with pytest.raises(ValueError, match="own counter"):
                    yield from img.event_wait(ev.at(1))
            yield from img.barrier()

        spmd(kernel, n=2, setup=setup)

    def test_notify_release_orders_prior_copies(self, spmd):
        """Release semantics (§III-B.4a): a waiter that observes the post
        must observe data written by copies issued before the notify."""
        import numpy as np

        def setup(m):
            m.coarray("buf", shape=4)
            m.make_event(name="ready")

        def kernel(img):
            buf = img.machine.coarray_by_name("buf")
            ev = img.machine.event_by_name("ready")
            if img.rank == 0:
                img.copy_async(buf.ref(1), np.full(4, 7.0))  # implicit copy
                yield from img.event_notify(ev.at(1))
            elif img.rank == 1:
                yield from img.event_wait(ev)
                # The notify must not have overtaken the copy.
                assert buf.local_at(1).tolist() == [7.0] * 4
            return None

        spmd(kernel, n=2, setup=setup)

    def test_event_stats(self, spmd):
        def setup(m):
            m.make_event(name="e")

        def kernel(img):
            ev = img.machine.event_by_name("e")
            if img.rank == 0:
                yield from img.event_notify(ev)
                yield from img.event_wait(ev)
            yield from img.barrier()

        m, _ = spmd(kernel, n=2, setup=setup)
        assert m.stats["event.notifies"] == 1
        assert m.stats["event.waits"] == 1
