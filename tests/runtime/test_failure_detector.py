"""Heartbeat failure detector: configuration, suspicion timing, image
queries, two-level membership (suspected / confirmed / recovered, with
incarnation numbers), and detector shutdown."""

import pytest

from repro.core.finish import stall_report
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology
from repro.runtime.failure import FailureConfig, ImageFailureError
from repro.runtime.program import run_spmd


def idle_kernel(img, cost=2e-3):
    yield from img.compute(cost)
    return img.rank


class TestFailureConfig:
    def test_defaults(self):
        cfg = FailureConfig()
        assert cfg.timeout == pytest.approx(10 * cfg.period)
        assert cfg.recover is False

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period"):
            FailureConfig(period=0.0)

    def test_rejects_timeout_not_exceeding_period(self):
        with pytest.raises(ValueError, match="timeout"):
            FailureConfig(period=1e-4, timeout=1e-4)


class TestSuspicion:
    def test_crashed_image_suspected_within_timeout(self):
        cfg = FailureConfig(period=5e-5)
        m, _ = run_spmd(idle_kernel, 4, faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=cfg)
        assert 1 in m.network.suspects
        assert m.dead_images == {1}
        assert m.stats["fail.suspected"] == 1

    def test_no_false_suspicion_on_clean_run(self):
        m, results = run_spmd(idle_kernel, 4,
                              failure_detection=FailureConfig())
        assert m.network.suspects == set()
        assert results == [0, 1, 2, 3]
        assert m.stats["fail.hb_rounds"] > 0

    def test_detection_time_bounded_by_timeout_plus_period(self):
        """Suspicion lands within one timeout plus one detector period
        of the crash (plus heartbeat delivery slack)."""
        cfg = FailureConfig(period=5e-5)
        crash_t = 1e-4
        m, _ = run_spmd(idle_kernel, 4,
                        faults=FaultPlan().crash_at(1, crash_t),
                        failure_detection=cfg)
        assert 1 in m.network.suspects
        assert m.sim.now >= crash_t + cfg.timeout

    def test_survivor_results_kept_dead_result_none(self):
        m, results = run_spmd(idle_kernel, 4,
                              faults=FaultPlan().crash_at(2, 1e-4),
                              failure_detection=FailureConfig())
        assert results[2] is None
        assert results[0] == 0 and results[1] == 1 and results[3] == 3

    def test_main_finished_before_crash_keeps_result(self):
        """A crash after an image's main completed must not erase the
        result it already produced."""
        m, results = run_spmd(idle_kernel, 4, args=(1e-5,),
                              faults=FaultPlan().crash_at(2, 1.0),
                              failure_detection=FailureConfig())
        assert results == [0, 1, 2, 3]


class TestImageQueries:
    def test_failed_and_alive_images(self):
        seen = {}

        def kernel(img):
            yield from img.compute(2e-3)
            if img.rank == 0:
                seen["failed"] = img.failed_images()
                seen["alive"] = img.alive_images()
                seen["is_failed"] = img.image_failed(1)

        run_spmd(kernel, 4, faults=FaultPlan().crash_at(1, 1e-4),
                 failure_detection=FailureConfig(period=5e-5))
        assert seen["failed"] == [1]
        assert seen["alive"] == [0, 2, 3]
        assert seen["is_failed"] is True

    def test_queries_without_detector_report_nothing(self):
        seen = {}

        def kernel(img):
            if img.rank == 0:
                seen["failed"] = img.failed_images()
                seen["alive"] = img.alive_images()
            yield from img.compute(1e-6)

        run_spmd(kernel, 2)
        assert seen["failed"] == []
        assert seen["alive"] == [0, 1]


class TestDetectorShutdown:
    def test_event_queue_drains_after_mains_finish(self):
        """Detector timers must stop once every surviving main is done,
        or run_spmd would never return; reaching this assert is most of
        the test."""
        m, results = run_spmd(idle_kernel, 4,
                              failure_detection=FailureConfig())
        assert results == [0, 1, 2, 3]
        assert m.stats["fail.detectors"] == 4

    def test_detectors_die_with_their_image(self):
        """The dead image's own detector is killed by the crash; only
        survivors keep heartbeating (3 targets per round, not 4)."""
        m, _ = run_spmd(idle_kernel, 4,
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig(period=5e-5))
        assert 1 in m.dead_images


class TestTwoLevelMembership:
    """SUSPECTED is revocable, CONFIRMED_DEAD is not; only hard silence
    past ``confirm_timeout`` may confirm (DESIGN §12)."""

    def test_straggler_suspected_then_unsuspected_never_confirmed(self):
        """A ×15 straggler outruns the fixed timeout (one heartbeat gap
        of 15 periods > the 10-period timeout) but never the 30-period
        confirmation window, so the timeout detector flaps — suspect,
        heartbeat lands, unsuspect — without ever confirming."""
        cfg = FailureConfig(period=5e-5)
        plan = FaultPlan().straggle(1, 15.0, degrade_at=2e-4,
                                    recover_at=4e-3)
        m, results = run_spmd(idle_kernel, 4, args=(5e-3,), faults=plan,
                              failure_detection=cfg)
        assert results == [0, 1, 2, 3]          # nobody lost any work
        service = m.failure
        assert m.stats["fail.false_suspected"] >= 1
        assert m.stats["fail.unsuspected"] >= 1
        assert m.stats["fail.confirmed"] == 0
        assert m.stats["fail.false_confirmed"] == 0
        assert service.recovered == {1}
        assert service.incarnations[1] >= 1
        assert service.time_to_unsuspect        # metric accumulated

    def test_phi_accrues_fewer_false_suspicions_than_timeout(self):
        """The phi window adapts to the degraded cadence; the fixed
        timeout flaps on every degraded heartbeat gap."""
        plan = lambda: FaultPlan().straggle(1, 15.0, degrade_at=5e-4)

        m_timeout, _ = run_spmd(idle_kernel, 4, args=(5e-3,),
                                faults=plan(),
                                failure_detection=FailureConfig(
                                    period=5e-5, detector="timeout"))
        m_phi, _ = run_spmd(idle_kernel, 4, args=(5e-3,), faults=plan(),
                            failure_detection=FailureConfig(
                                period=5e-5, detector="phi",
                                phi_suspect=12.0))
        false_timeout = m_timeout.stats["fail.false_suspected"]
        false_phi = m_phi.stats["fail.false_suspected"]
        assert false_phi < false_timeout, (false_phi, false_timeout)
        assert m_phi.stats["fail.confirmed"] == 0

    def test_real_crash_is_confirmed_with_incarnation_zero(self):
        cfg = FailureConfig(period=5e-5)
        m, _ = run_spmd(idle_kernel, 4, args=(6e-3,),
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=cfg)
        service = m.failure
        assert service.confirmed == {1}
        assert m.stats["fail.confirmed"] == 1
        assert m.stats["fail.false_confirmed"] == 0
        assert service.incarnations[1] == 0     # never came back
        assert service.confirm_latency          # real-crash metric
        assert service.confirm_latency[0] >= cfg.confirm_timeout - cfg.period

    def test_false_confirmation_resurrects_on_heal(self):
        """An asymmetric gray failure — one image's *outbound* links
        down past ``confirm_timeout`` — forces the irreversible verdict
        on a live peer; its first delivery after the links return
        resurrects it with a bumped incarnation."""
        cfg = FailureConfig(period=5e-5, timeout=1.5e-4,
                            confirm_timeout=5e-4)
        plan = FaultPlan()
        for dst in (0, 2, 3):
            # Down 2e-4..1e-3: long enough that the survivors confirm 1
            # (silence > 5e-4), short enough that 1 — which stops being
            # heartbeated the moment it is confirmed — hears the
            # survivors again before *it* would confirm *them*.
            plan.flap_link(1, dst, at=2e-4, down_for=8e-4, up_for=1.0)
        m, results = run_spmd(idle_kernel, 4, args=(5e-3,), faults=plan,
                              failure_detection=cfg)
        assert results == [0, 1, 2, 3]
        service = m.failure
        assert m.stats["fail.false_confirmed"] >= 1
        assert m.stats["fail.resurrected"] >= 1
        assert service.confirmed == set()       # every verdict retracted
        assert 1 in service.recovered
        assert service.incarnations[1] >= 1


class TestMembershipQueries:
    def test_suspected_vs_confirmed_vs_recovered_queries(self):
        """In-kernel view mid-flap: the straggler shows up as recovered
        (with a bumped incarnation) once its first suspicion heals."""
        seen = {}

        def kernel(img):
            yield from img.compute(3e-3)
            if img.rank == 0:
                seen["confirmed"] = img.confirmed_dead_images()
                seen["recovered"] = img.recovered_images()
                seen["incarnation"] = img.image_incarnation(1)

        cfg = FailureConfig(period=5e-5)
        plan = FaultPlan().straggle(1, 15.0, degrade_at=2e-4)
        run_spmd(kernel, 4, faults=plan, failure_detection=cfg)
        assert seen["confirmed"] == []
        assert seen["recovered"] == [1]
        assert seen["incarnation"] >= 1

    def test_confirmed_dead_query_after_real_crash(self):
        seen = {}

        def kernel(img):
            yield from img.compute(6e-3)
            if img.rank == 0:
                seen["confirmed"] = img.confirmed_dead_images()
                seen["suspected"] = img.suspected_images()
                seen["recovered"] = img.recovered_images()

        run_spmd(kernel, 4, faults=FaultPlan().crash_at(2, 1e-4),
                 failure_detection=FailureConfig(period=5e-5))
        assert seen["confirmed"] == [2]
        assert seen["suspected"] == []          # escalated past level one
        assert seen["recovered"] == []

    def test_membership_queries_without_detector(self):
        seen = {}

        def kernel(img):
            if img.rank == 0:
                seen["suspected"] = img.suspected_images()
                seen["confirmed"] = img.confirmed_dead_images()
                seen["recovered"] = img.recovered_images()
                seen["incarnation"] = img.image_incarnation(1)
            yield from img.compute(1e-6)

        run_spmd(kernel, 2)
        assert seen == {"suspected": [], "confirmed": [],
                        "recovered": [], "incarnation": 0}


class TestStallReportMembership:
    def test_report_names_confirmed_dead_images(self):
        m, _ = run_spmd(idle_kernel, 4, args=(6e-3,),
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig(period=5e-5))
        report = stall_report(m, [0])
        assert "confirmed dead images: [1]" in report

    def test_report_names_recovered_images_with_incarnations(self):
        cfg = FailureConfig(period=5e-5)
        plan = FaultPlan().straggle(1, 15.0, degrade_at=2e-4)
        m, _ = run_spmd(idle_kernel, 4, args=(3e-3,), faults=plan,
                        failure_detection=cfg)
        report = stall_report(m, [])
        incarnation = m.failure.incarnations[1]
        assert f"recovered images: 1 (incarnation {incarnation})" in report

    def test_report_distinguishes_suspects_and_quarantine(self):
        """Diagnostic formatting: a merely-suspected peer is listed as
        suspected (not dead) together with its parked-send count."""
        m, _ = run_spmd(idle_kernel, 2,
                        failure_detection=FailureConfig())
        m.network.suspects.add(1)
        m.network._quarantine[1] = [("send", None, None, False)] * 3
        report = stall_report(m, [])
        assert "suspected images: [1]" in report
        assert "quarantined sends per suspect: {1: 3}" in report
        assert "confirmed dead" not in report


class TestKillImage:
    def test_kill_image_idempotent(self):
        m, _ = run_spmd(idle_kernel, 2,
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig())
        assert m.stats["fail.crashes"] == 1
        m.kill_image(1)
        assert m.stats["fail.crashes"] == 1

    def test_kill_image_range_checked(self):
        m, _ = run_spmd(idle_kernel, 2,
                        failure_detection=FailureConfig())
        with pytest.raises(ValueError):
            m.kill_image(7)
