"""Heartbeat failure detector: configuration, suspicion timing, image
queries, and detector shutdown."""

import pytest

from repro.net.faults import FaultPlan
from repro.runtime.failure import FailureConfig, ImageFailureError
from repro.runtime.program import run_spmd


def idle_kernel(img, cost=2e-3):
    yield from img.compute(cost)
    return img.rank


class TestFailureConfig:
    def test_defaults(self):
        cfg = FailureConfig()
        assert cfg.timeout == pytest.approx(10 * cfg.period)
        assert cfg.recover is False

    def test_rejects_nonpositive_period(self):
        with pytest.raises(ValueError, match="period"):
            FailureConfig(period=0.0)

    def test_rejects_timeout_not_exceeding_period(self):
        with pytest.raises(ValueError, match="timeout"):
            FailureConfig(period=1e-4, timeout=1e-4)


class TestSuspicion:
    def test_crashed_image_suspected_within_timeout(self):
        cfg = FailureConfig(period=5e-5)
        m, _ = run_spmd(idle_kernel, 4, faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=cfg)
        assert 1 in m.network.suspects
        assert m.dead_images == {1}
        assert m.stats["fail.suspected"] == 1

    def test_no_false_suspicion_on_clean_run(self):
        m, results = run_spmd(idle_kernel, 4,
                              failure_detection=FailureConfig())
        assert m.network.suspects == set()
        assert results == [0, 1, 2, 3]
        assert m.stats["fail.hb_rounds"] > 0

    def test_detection_time_bounded_by_timeout_plus_period(self):
        """Suspicion lands within one timeout plus one detector period
        of the crash (plus heartbeat delivery slack)."""
        cfg = FailureConfig(period=5e-5)
        crash_t = 1e-4
        m, _ = run_spmd(idle_kernel, 4,
                        faults=FaultPlan().crash_at(1, crash_t),
                        failure_detection=cfg)
        assert 1 in m.network.suspects
        assert m.sim.now >= crash_t + cfg.timeout

    def test_survivor_results_kept_dead_result_none(self):
        m, results = run_spmd(idle_kernel, 4,
                              faults=FaultPlan().crash_at(2, 1e-4),
                              failure_detection=FailureConfig())
        assert results[2] is None
        assert results[0] == 0 and results[1] == 1 and results[3] == 3

    def test_main_finished_before_crash_keeps_result(self):
        """A crash after an image's main completed must not erase the
        result it already produced."""
        m, results = run_spmd(idle_kernel, 4, args=(1e-5,),
                              faults=FaultPlan().crash_at(2, 1.0),
                              failure_detection=FailureConfig())
        assert results == [0, 1, 2, 3]


class TestImageQueries:
    def test_failed_and_alive_images(self):
        seen = {}

        def kernel(img):
            yield from img.compute(2e-3)
            if img.rank == 0:
                seen["failed"] = img.failed_images()
                seen["alive"] = img.alive_images()
                seen["is_failed"] = img.image_failed(1)

        run_spmd(kernel, 4, faults=FaultPlan().crash_at(1, 1e-4),
                 failure_detection=FailureConfig(period=5e-5))
        assert seen["failed"] == [1]
        assert seen["alive"] == [0, 2, 3]
        assert seen["is_failed"] is True

    def test_queries_without_detector_report_nothing(self):
        seen = {}

        def kernel(img):
            if img.rank == 0:
                seen["failed"] = img.failed_images()
                seen["alive"] = img.alive_images()
            yield from img.compute(1e-6)

        run_spmd(kernel, 2)
        assert seen["failed"] == []
        assert seen["alive"] == [0, 1]


class TestDetectorShutdown:
    def test_event_queue_drains_after_mains_finish(self):
        """Detector timers must stop once every surviving main is done,
        or run_spmd would never return; reaching this assert is most of
        the test."""
        m, results = run_spmd(idle_kernel, 4,
                              failure_detection=FailureConfig())
        assert results == [0, 1, 2, 3]
        assert m.stats["fail.detectors"] == 4

    def test_detectors_die_with_their_image(self):
        """The dead image's own detector is killed by the crash; only
        survivors keep heartbeating (3 targets per round, not 4)."""
        m, _ = run_spmd(idle_kernel, 4,
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig(period=5e-5))
        assert 1 in m.dead_images


class TestKillImage:
    def test_kill_image_idempotent(self):
        m, _ = run_spmd(idle_kernel, 2,
                        faults=FaultPlan().crash_at(1, 1e-4),
                        failure_detection=FailureConfig())
        assert m.stats["fail.crashes"] == 1
        m.kill_image(1)
        assert m.stats["fail.crashes"] == 1

    def test_kill_image_range_checked(self):
        m, _ = run_spmd(idle_kernel, 2,
                        failure_detection=FailureConfig())
        with pytest.raises(ValueError):
            m.kill_image(7)
