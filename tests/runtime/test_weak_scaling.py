"""Weak-scaling regression tests (DESIGN.md §13).

Two families:

- *Sparse-vs-dense equivalence* — the per-peer maps in
  :class:`~repro.core.finish.FinishFrame` became sparse dicts; these
  tests drive the reconcile/unreconcile algebra against a dense array
  reference model and assert every observable counter is identical, and
  that the fault-tolerant epoch detector still reaches the right
  verdicts through the gray-failure resurrect path (PR 6) once state is
  sparse.

- *Tree heartbeats at scale* — monitoring runs over an O(log p) tree
  instead of all pairs; these tests pin detection latency and
  zero-false-confirmation behavior at 1024 images for both detectors.
"""

import random

import pytest

from repro.apps.uts import (
    TreeParams,
    UTSConfig,
    run_uts,
    sequential_tree_size,
)
from repro.core.finish import FinishFrame
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology
from repro.runtime.failure import FailureConfig
from repro.runtime.program import Machine, run_spmd


def idle_kernel(img, cost=2e-3):
    yield from img.compute(cost)
    return img.rank


# --------------------------------------------------------------------- #
# Sparse-vs-dense equivalence (finish counters)
# --------------------------------------------------------------------- #

class DenseFrameModel:
    """Reference implementation of the finish counter algebra with dense
    O(p) arrays — the representation the sparse maps replaced.  Only the
    even epoch is modeled (the tests drive main-program traffic, which
    is always even-tagged)."""

    def __init__(self, n_images: int):
        self.sent = self.delivered = self.received = self.completed = 0
        self.sent_to = [0] * n_images
        self.delivered_to = [0] * n_images
        self.received_from = [0] * n_images
        self.completed_from = [0] * n_images
        self.reconciled: set[int] = set()
        self._stamps: dict[int, tuple] = {}

    def on_send(self, dst: int) -> None:
        self.sent += 1
        self.sent_to[dst] += 1

    def on_delivered(self, dst: int) -> None:
        if dst in self.reconciled:
            return
        self.delivered += 1
        self.delivered_to[dst] += 1

    def on_received(self, src: int) -> None:
        if src in self.reconciled:
            return
        self.received += 1
        self.received_from[src] += 1

    def on_completed(self, src: int) -> None:
        if src in self.reconciled:
            return
        self.completed += 1
        self.completed_from[src] += 1

    def reconcile(self, dead: int) -> None:
        if dead in self.reconciled:
            return
        self.reconciled.add(dead)
        d = self.delivered_to[dead]
        r = self.received_from[dead]
        c = self.completed_from[dead]
        self.sent -= d
        self.delivered -= d
        self.received -= r
        self.completed -= c
        self.delivered_to[dead] = 0
        self.received_from[dead] = 0
        self.completed_from[dead] = 0
        self._stamps[dead] = (d, r, c)

    def unreconcile(self, peer: int) -> None:
        if peer not in self.reconciled:
            return
        self.reconciled.discard(peer)
        d, r, c = self._stamps.pop(peer, (0, 0, 0))
        self.sent += d
        self.delivered += d
        self.received += r
        self.completed += c
        self.delivered_to[peer] = d
        self.received_from[peer] = r
        self.completed_from[peer] = c


def _assert_equivalent(frame: FinishFrame, dense: DenseFrameModel) -> None:
    assert frame.even.sent == dense.sent
    assert frame.even.delivered == dense.delivered
    assert frame.even.received == dense.received
    assert frame.even.completed == dense.completed
    assert frame.reconciled == dense.reconciled
    for name in ("delivered_to", "received_from", "completed_from"):
        sparse_map = getattr(frame, name)
        dense_arr = getattr(dense, name)
        assert sparse_map == {p: v for p, v in enumerate(dense_arr) if v}


class TestSparseDenseEquivalence:
    N_IMAGES = 4096
    PEERS = (1, 7, 130, 2048, 4095)

    def _machine_and_frame(self):
        machine = Machine(self.N_IMAGES, seed=1)
        frame = FinishFrame(machine, 0, machine.team_world, 0)
        return machine, frame

    def test_peer_maps_scale_with_degree_not_image_count(self):
        """Touching 5 peers out of 4096 leaves 5-entry maps — the frame
        footprint follows communication degree."""
        _machine, frame = self._machine_and_frame()
        for peer in self.PEERS:
            stamp = frame.on_send(dst=peer)
            frame.on_delivered(stamp)
            rstamp = frame.on_received(False, src=peer)
            frame.on_completed(rstamp)
        assert len(frame.sent_to) == len(self.PEERS)
        assert len(frame.delivered_to) == len(self.PEERS)
        assert len(frame.received_from) == len(self.PEERS)
        assert len(frame.completed_from) == len(self.PEERS)
        assert frame.even.locally_quiet()

    def test_randomized_algebra_matches_dense_reference(self):
        """A seeded random interleaving of sends, deliveries, receipts,
        completions, reconciles, and unreconciles (the false-confirmation
        heal from PR 6) stays step-for-step identical to the dense
        model."""
        _machine, frame = self._machine_and_frame()
        dense = DenseFrameModel(self.N_IMAGES)
        rng = random.Random(20260807)
        in_flight: list[tuple] = []     # undelivered send stamps
        uncompleted: list[tuple] = []   # unfinished receive stamps
        for _ in range(600):
            op = rng.choice(("send", "deliver", "receive", "complete",
                             "reconcile", "unreconcile"))
            peer = rng.choice(self.PEERS)
            if op == "send":
                in_flight.append(frame.on_send(dst=peer))
                dense.on_send(peer)
            elif op == "deliver" and in_flight:
                stamp = in_flight.pop(rng.randrange(len(in_flight)))
                frame.on_delivered(stamp)
                dense.on_delivered(stamp[2])
            elif op == "receive":
                uncompleted.append(frame.on_received(False, src=peer))
                dense.on_received(peer)
            elif op == "complete" and uncompleted:
                stamp = uncompleted.pop(rng.randrange(len(uncompleted)))
                frame.on_completed(stamp)
                dense.on_completed(stamp[2])
            elif op == "reconcile":
                frame.reconcile_failure(peer)
                dense.reconcile(peer)
            elif op == "unreconcile":
                frame.unreconcile(peer)
                dense.unreconcile(peer)
            _assert_equivalent(frame, dense)

    def test_reconcile_then_unreconcile_is_exact_inverse(self):
        _machine, frame = self._machine_and_frame()
        for peer in self.PEERS:
            stamp = frame.on_send(dst=peer)
            frame.on_delivered(stamp)
            rstamp = frame.on_received(False, src=peer)
            frame.on_completed(rstamp)
        before = (frame.even.sent, frame.even.delivered,
                  frame.even.received, frame.even.completed,
                  dict(frame.delivered_to), dict(frame.received_from),
                  dict(frame.completed_from))
        victim = self.PEERS[2]
        frame.reconcile_failure(victim)
        assert victim not in frame.delivered_to
        assert frame.even.sent == before[0] - 1
        frame.reconcile_failure(victim)      # idempotent
        frame.unreconcile(victim)
        frame.unreconcile(victim)            # idempotent
        after = (frame.even.sent, frame.even.delivered,
                 frame.even.received, frame.even.completed,
                 dict(frame.delivered_to), dict(frame.received_from),
                 dict(frame.completed_from))
        assert after == before


class TestFtEpochVerdictsWithSparseState:
    """The fault-tolerant epoch detector aggregates reports over a
    radix-4 tree and its frames keep sparse per-peer maps; the verdicts
    must stay exactly what the dense all-to-one implementation produced
    — UTS counts every node once, through gray failures included."""

    TREE = TreeParams(b0=4, max_depth=7, seed=19)

    def test_uts_exact_through_healing_partition_at_16(self):
        """PR 6's healing-partition scenario, scaled past one tree level
        of report aggregation: exact count, nothing re-executed, nobody
        confirmed dead."""
        n = 16
        params = MachineParams(topology=UniformTopology(n), reliable=True)
        plan = FaultPlan().partition(
            [list(range(8)), list(range(8, 16))], at=3e-4, heal_at=1.5e-3)
        r = run_uts(n, UTSConfig(tree=self.TREE), seed=42, params=params,
                    faults=plan,
                    failure_detection=FailureConfig(recover=True))
        assert r.total_nodes == sequential_tree_size(self.TREE)
        assert r.recovered_spawns == 0
        assert r.failed_images == ()
        assert r.retransmits > 0               # the partition did bite

    def test_uts_crash_recovery_with_multi_level_report_tree(self):
        """At 64 images the report tree is three levels deep; a real
        crash must still reconcile to the exact sequential count."""
        r = run_uts(64, UTSConfig(tree=self.TREE), seed=42,
                    faults=FaultPlan().crash_at(2, 1e-5),
                    failure_detection=FailureConfig(recover=True))
        assert r.total_nodes == sequential_tree_size(self.TREE)
        assert r.failed_images == (2,)

    def test_false_confirmation_resurrects_at_64(self):
        """The PR 6 resurrect path with sparse membership tables: outbound
        links of one image flap down long enough for a false confirmation;
        its probe of the surrogate root after the heal resurrects it."""
        cfg = FailureConfig(period=5e-5, timeout=1.5e-4,
                            confirm_timeout=5e-4)
        plan = FaultPlan()
        for dst in range(64):
            if dst != 1:
                plan.flap_link(1, dst, at=2e-4, down_for=8e-4, up_for=1.0)
        m, results = run_spmd(idle_kernel, 64, args=(5e-3,), faults=plan,
                              failure_detection=cfg)
        assert results == list(range(64))      # nobody lost any work
        assert m.stats["fail.false_confirmed"] >= 1
        assert m.stats["fail.resurrected"] >= 1
        assert m.failure.confirmed == set()    # every verdict retracted
        assert m.failure.incarnations[1] >= 1


# --------------------------------------------------------------------- #
# Tree heartbeats at 1024 images
# --------------------------------------------------------------------- #

class TestTreeHeartbeatsAtScale:
    @pytest.mark.parametrize("detector", ["timeout", "phi"])
    def test_crash_confirmed_within_latency_bound_at_1024(self, detector):
        """Tree monitoring must not slow detection down: the victim's
        watchers confirm within ``confirm_timeout`` plus one detector
        period plus heartbeat slack, exactly the all-pairs bound."""
        cfg = FailureConfig(period=5e-5, detector=detector)
        m, _ = run_spmd(idle_kernel, 1024, args=(2.5e-3,),
                        faults=FaultPlan().crash_at(317, 1e-4),
                        failure_detection=cfg)
        assert m.failure.confirmed == {317}
        assert m.stats["fail.false_confirmed"] == 0
        assert len(m.failure.confirm_latency) == 1
        assert (m.failure.confirm_latency[0]
                <= cfg.confirm_timeout + 2 * cfg.period)

    @pytest.mark.parametrize("detector", ["timeout", "phi"])
    def test_zero_false_confirmations_on_clean_run_at_1024(self, detector):
        m, results = run_spmd(idle_kernel, 1024, args=(1.2e-3,),
                              failure_detection=FailureConfig(
                                  period=5e-5, detector=detector))
        assert results == list(range(1024))
        assert m.network.suspects == set()
        assert m.failure.confirmed == set()
        assert m.stats["fail.false_suspected"] == 0
        assert m.stats["fail.false_confirmed"] == 0
        assert m.stats["fail.hb_rounds"] > 0

    def test_startup_heap_grows_sublinearly_with_images(self):
        """16x the images must cost well under 16x the heap: per-image
        state is lazy and per-peer state sparse, so a fresh machine's
        deep footprint is dominated by per-*machine* fixtures."""
        from repro.runtime.sizeof import deep_sizeof

        small = deep_sizeof(Machine(256, seed=1))
        large = deep_sizeof(Machine(4096, seed=1))
        assert large < 8 * small

    def test_deep_sizeof_terminates_on_cycles(self):
        from repro.runtime.sizeof import deep_sizeof

        a: list = []
        b = [a]
        a.append(b)
        assert deep_sizeof(a) > 0

    def test_monitoring_degree_bounded_by_radix(self):
        """Every image watches at most parent + radix children — the
        O(p^2) all-pairs heartbeat matrix is gone."""
        machine = Machine(1024, seed=1,
                          failure_detection=FailureConfig(tree_radix=4))
        service = machine.failure
        for rank in (0, 1, 5, 511, 1023):
            peers = service.monitored_peers(rank)
            assert len(peers) <= 5
            assert rank not in peers
