"""Unit tests for coarrays and coarray references."""

import numpy as np
import pytest

from repro.runtime.program import Machine
from repro.runtime.team import Team


@pytest.fixture
def machine():
    return Machine(4)


class TestAllocation:
    def test_world_coarray_sections(self, machine):
        A = machine.coarray("A", shape=16, dtype=np.int64)
        for r in range(4):
            assert A.local_at(r).shape == (16,)
            assert A.local_at(r).dtype == np.int64
        A.local_at(0)[:] = 7
        assert A.local_at(1).sum() == 0

    def test_fill_value(self, machine):
        A = machine.coarray("A", shape=4, fill=3.5)
        assert A.local_at(2).tolist() == [3.5] * 4

    def test_multidimensional(self, machine):
        A = machine.coarray("A", shape=(3, 5))
        assert A.local_at(0).shape == (3, 5)

    def test_duplicate_name_rejected(self, machine):
        machine.coarray("A", shape=4)
        with pytest.raises(ValueError):
            machine.coarray("A", shape=4)

    def test_lookup(self, machine):
        A = machine.coarray("A", shape=4)
        assert machine.coarray_by_name("A") is A
        with pytest.raises(KeyError):
            machine.coarray_by_name("B")

    def test_subteam_coarray(self, machine):
        sub = machine.intern_team([1, 3])
        A = machine.coarray("A", shape=4, team=sub)
        assert A.local_at(1) is not None
        with pytest.raises(ValueError):
            A.local_at(0)  # not a member


class TestRefs:
    def test_on_and_index(self, machine):
        A = machine.coarray("A", shape=8)
        ref = A.on(2)[1:4]
        assert ref.world_rank == 2
        assert ref.index == slice(1, 4)
        assert ref.nbytes == 24

    def test_ref_shorthand(self, machine):
        A = machine.coarray("A", shape=8)
        ref = A.ref(1, 5)
        assert ref.world_rank == 1
        assert ref.index == 5
        assert ref.nbytes == 8

    def test_whole_section(self, machine):
        A = machine.coarray("A", shape=8)
        assert A.on(0).whole.nbytes == 64

    def test_team_rank_translation(self, machine):
        sub = machine.intern_team([2, 3])
        A = machine.coarray("A", shape=4, team=sub)
        # team rank 0 of the sub-team is world rank 2
        assert A.ref(0).world_rank == 2
        assert A.ref(1).world_rank == 3

    def test_read_write(self, machine):
        A = machine.coarray("A", shape=4)
        ref = A.ref(1, slice(0, 2))
        ref.write([9, 8])
        assert A.local_at(1)[:2].tolist() == [9, 8]
        data = ref.read()
        A.local_at(1)[0] = 0
        assert data.tolist() == [9, 8]  # read() returned a copy

    def test_ref_to_nonmember_rejected(self, machine):
        sub = machine.intern_team([0, 1])
        A = machine.coarray("A", shape=4, team=sub)
        from repro.runtime.coarray import CoarrayRef
        with pytest.raises(ValueError):
            CoarrayRef(A, 3, 0)

    def test_is_local_to(self, machine):
        A = machine.coarray("A", shape=4)
        assert A.ref(2).is_local_to(2)
        assert not A.ref(2).is_local_to(0)
