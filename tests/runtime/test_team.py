"""Unit tests for Team membership and tree helpers."""

import pytest

from repro.runtime.team import Team


class TestMembership:
    def test_basic_ranks(self):
        t = Team([10, 20, 30])
        assert t.size == 3
        assert len(t) == 3
        assert list(t) == [10, 20, 30]
        assert t.rank_of(20) == 1
        assert t.world_rank(2) == 30
        assert 20 in t and 99 not in t

    def test_rank_errors(self):
        t = Team([0, 1])
        with pytest.raises(ValueError):
            t.rank_of(5)
        with pytest.raises(ValueError):
            t.world_rank(2)
        with pytest.raises(ValueError):
            t.world_rank(-1)

    def test_empty_and_duplicates_rejected(self):
        with pytest.raises(ValueError):
            Team([])
        with pytest.raises(ValueError):
            Team([1, 1])

    def test_unique_ids(self):
        a, b = Team([0]), Team([0])
        assert a.id != b.id

    def test_subset(self):
        world = Team(range(8))
        sub = Team([1, 3, 5])
        assert sub.is_subset_of(world)
        assert not world.is_subset_of(sub)
        assert sub.is_subset_of(sub)


class TestTreeShape:
    def test_root_has_no_parent(self):
        t = Team(range(7))
        assert t.tree_parent(0) is None
        assert t.tree_parent(3, root=3) is None

    def test_binary_tree_children(self):
        t = Team(range(7))
        assert t.tree_children(0) == [1, 2]
        assert t.tree_children(1) == [3, 4]
        assert t.tree_children(2) == [5, 6]
        assert t.tree_children(3) == []

    def test_parent_child_consistency(self):
        t = Team(range(13))
        for root in (0, 5):
            for radix in (2, 4):
                for r in range(t.size):
                    for c in t.tree_children(r, root, radix):
                        assert t.tree_parent(c, root, radix) == r

    def test_every_nonroot_has_parent_path_to_root(self):
        t = Team(range(10))
        root = 4
        for r in range(t.size):
            cur, hops = r, 0
            while cur != root:
                cur = t.tree_parent(cur, root)
                hops += 1
                assert hops <= t.size
        # depth is logarithmic for radix 2
        assert hops <= 5

    def test_rotated_root_tree_covers_all(self):
        t = Team(range(6))
        seen = {3}
        frontier = [3]
        while frontier:
            r = frontier.pop()
            for c in t.tree_children(r, root=3):
                assert c not in seen
                seen.add(c)
                frontier.append(c)
        assert seen == set(range(6))


class TestHypercube:
    def test_neighbors_power_of_two(self):
        t = Team(range(8))
        assert t.hypercube_neighbors(0) == [1, 2, 4]
        assert t.hypercube_neighbors(5) == [4, 7, 1]

    def test_neighbors_non_power_of_two(self):
        t = Team(range(6))
        # offsets 1, 2, 4; neighbors >= size are dropped
        assert t.hypercube_neighbors(0) == [1, 2, 4]
        # 5^1=4 kept, 5^2=7 dropped (>= 6), 5^4=1 kept
        assert t.hypercube_neighbors(5) == [4, 1]

    def test_neighbor_relation_is_symmetric(self):
        t = Team(range(12))
        for r in range(12):
            for n in t.hypercube_neighbors(r):
                assert r in t.hypercube_neighbors(n)
