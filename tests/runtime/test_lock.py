"""Tests for distributed locks."""

import pytest

from repro.runtime.program import Machine


class TestLock:
    def test_mutual_exclusion(self, spmd):
        """Concurrent remote increments under a lock never interleave."""
        trace = []

        def setup(m):
            m.make_lock(name="L")

        def kernel(img):
            lock = img.machine.lock_by_name("L")
            for _ in range(3):
                yield from lock.acquire(img, 0)
                trace.append(("enter", img.rank, img.now))
                yield from img.compute(1e-6)
                trace.append(("exit", img.rank, img.now))
                lock.release(img, 0)

        spmd(kernel, n=4, setup=setup)
        # Critical sections must not overlap in time.
        intervals = []
        entered = {}
        for kind, rank, t in sorted(trace, key=lambda e: e[2]):
            if kind == "enter":
                entered[rank] = t
            else:
                intervals.append((entered.pop(rank), t))
        intervals.sort()
        for (s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2 + 1e-12

    def test_fifo_granting_local(self):
        m = Machine(2)
        lock = m.make_lock(name="L")
        order = []

        def kernel(img):
            lk = img.machine.lock_by_name("L")
            for i in range(2):
                yield from lk.acquire(img, 0)
                order.append((img.rank, i))
                yield from img.compute(1e-6)
                lk.release(img, 0)

        m.launch(kernel)
        m.run()
        assert len(order) == 4

    def test_release_without_hold_is_error(self):
        m = Machine(2)
        lock = m.make_lock(name="L")
        with pytest.raises(RuntimeError, match="not held"):
            lock._release_at(0)

    def test_is_held(self, spmd):
        def setup(m):
            m.make_lock(name="L")

        def kernel(img):
            lock = img.machine.lock_by_name("L")
            if img.rank == 0:
                yield from lock.acquire(img, 0)
                assert lock.is_held(0)
                lock.release(img, 0)
                assert not lock.is_held(0)
            yield from img.barrier()

        spmd(kernel, n=2, setup=setup)

    def test_locks_on_different_homes_are_independent(self, spmd):
        def setup(m):
            m.make_lock(name="L")

        def kernel(img):
            lock = img.machine.lock_by_name("L")
            yield from lock.acquire(img, img.rank)  # my own lock word
            yield from img.compute(1e-6)
            lock.release(img, img.rank)
            yield from img.barrier()
            return img.now

        m, results = spmd(kernel, n=4, setup=setup)
        assert m.stats["lock.acquired"] == 4
