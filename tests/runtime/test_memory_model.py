"""Unit tests for pending-op tracking and the reorder oracle."""

import pytest

from repro.sim.tasks import Future
from repro.runtime.memory_model import (
    ANY,
    READ,
    WRITE,
    Activation,
    FenceItem,
    NotifyItem,
    OpItem,
    PendingOp,
    ReorderOracle,
    WaitItem,
    allowed_set,
    classes_of,
    may_pass,
)


class TestClasses:
    def test_classes_of(self):
        assert classes_of(True, False) == frozenset({READ})
        assert classes_of(False, True) == frozenset({WRITE})
        assert classes_of(True, True) == frozenset({READ, WRITE})
        assert classes_of(False, False) == frozenset()

    def test_allowed_set(self):
        assert allowed_set(None) == frozenset()
        assert allowed_set(READ) == frozenset({READ})
        assert allowed_set(WRITE) == frozenset({WRITE})
        assert allowed_set(ANY) == frozenset({READ, WRITE})

    def test_allowed_set_invalid(self):
        with pytest.raises(ValueError):
            allowed_set("sideways")

    def test_may_pass_requires_every_class(self):
        rw = classes_of(True, True)
        assert not may_pass(rw, allowed_set(READ))
        assert not may_pass(rw, allowed_set(WRITE))
        assert may_pass(rw, allowed_set(ANY))
        # An op with no local effect passes any fence.
        assert may_pass(frozenset(), allowed_set(None))


class _FakeState:
    finish_stack: list = []


def make_op(kind="copy", reads=True, writes=False):
    return PendingOp(kind, reads, writes,
                     local_data=Future("ld"), local_op=Future("lo"))


class TestActivation:
    def test_register_and_fence_waits(self):
        act = Activation(_FakeState())
        op = act.register(make_op(reads=True))
        waits = act.fence_waits(allowed_set(None))
        assert waits == [op.local_data]

    def test_fence_waits_respect_downward_filter(self):
        act = Activation(_FakeState())
        reader = act.register(make_op(reads=True, writes=False))
        writer = act.register(make_op(reads=False, writes=True))
        waits = act.fence_waits(allowed_set(WRITE))
        # writes may pass; the read op must be waited for
        assert waits == [reader.local_data]
        waits = act.fence_waits(allowed_set(ANY))
        assert waits == []

    def test_completed_ops_are_pruned(self):
        act = Activation(_FakeState())
        op = act.register(make_op())
        op.local_data.set_result(None)
        op.local_op.set_result(None)
        assert act.pending == []
        assert act.fence_waits(allowed_set(None)) == []

    def test_release_waits(self):
        act = Activation(_FakeState())
        op = act.register(make_op())
        assert act.release_waits() == [op.released]
        op.released.set_result(None)
        op.local_data.set_result(None)
        assert act.release_waits() == []

    def test_released_defaults_to_local_op(self):
        op = make_op()
        assert op.released is op.local_op

    def test_current_frame_dynamic_vs_pinned(self):
        state = _FakeState()
        state.finish_stack = ["outer"]
        main = Activation(state)
        assert main.current_frame() == "outer"
        shipped = Activation(state, finish_frame="pinned")
        assert shipped.current_frame() == "pinned"
        assert shipped.in_shipped_function
        assert not main.in_shipped_function


class TestReorderOracle:
    def test_default_fence_blocks_both_directions(self):
        op_r = OpItem("r", reads_local=True)
        fence = FenceItem()
        assert not ReorderOracle.may_sink(op_r, fence)
        assert not ReorderOracle.may_hoist(op_r, fence)

    def test_directional_fence(self):
        op_w = OpItem("w", writes_local=True)
        op_r = OpItem("r", reads_local=True)
        fence = FenceItem(downward=WRITE, upward=READ)
        assert ReorderOracle.may_sink(op_w, fence)
        assert not ReorderOracle.may_sink(op_r, fence)
        assert ReorderOracle.may_hoist(op_r, fence)
        assert not ReorderOracle.may_hoist(op_w, fence)

    def test_read_write_op_needs_any(self):
        op_rw = OpItem("rw", reads_local=True, writes_local=True)
        assert not ReorderOracle.may_sink(op_rw, FenceItem(downward=WRITE))
        assert ReorderOracle.may_sink(op_rw, FenceItem(downward=ANY))

    def test_notify_is_release(self):
        op = OpItem("x", writes_local=True)
        assert not ReorderOracle.may_sink(op, NotifyItem())
        assert ReorderOracle.may_hoist(op, NotifyItem())

    def test_wait_is_acquire(self):
        op = OpItem("x", reads_local=True)
        assert ReorderOracle.may_sink(op, WaitItem())
        assert not ReorderOracle.may_hoist(op, WaitItem())

    def test_completion_must_precede(self):
        program = [OpItem("a", reads_local=True), FenceItem()]
        assert ReorderOracle.completion_must_precede(program, 0, 1)
        program = [OpItem("a", reads_local=True), FenceItem(downward=READ)]
        assert not ReorderOracle.completion_must_precede(program, 0, 1)

    def test_initiation_must_follow(self):
        program = [WaitItem(), OpItem("a", reads_local=True)]
        assert ReorderOracle.initiation_must_follow(program, 0, 1)
        program = [NotifyItem(), OpItem("a", reads_local=True)]
        assert not ReorderOracle.initiation_must_follow(program, 0, 1)

    def test_index_validation(self):
        program = [FenceItem(), OpItem("a")]
        with pytest.raises(ValueError):
            ReorderOracle.completion_must_precede(program, 1, 0)
        with pytest.raises(TypeError):
            ReorderOracle.completion_must_precede(
                [FenceItem(), FenceItem()], 0, 1)

    def test_legal_orders_full_fence(self):
        program = [
            OpItem("a", reads_local=True),
            FenceItem(),
            OpItem("b", reads_local=True),
        ]
        orders = set(ReorderOracle.legal_initiation_orders(program))
        assert ("a", "b") in orders
        assert ("b", "a") not in orders

    def test_legal_orders_porous_fence(self):
        program = [
            OpItem("a", reads_local=True),
            FenceItem(downward=ANY, upward=ANY),
            OpItem("b", reads_local=True),
        ]
        orders = set(ReorderOracle.legal_initiation_orders(program))
        assert orders == {("a", "b"), ("b", "a")}


class TestPerMachineOpIds:
    """Pending-op ids come from the machine, not a process-global counter
    (regression: the class-level fallback made ids depend on how many
    machines the process had built earlier, so traces and race reports
    were not reproducible run-to-run)."""

    def test_identical_runs_get_identical_id_streams(self):
        import numpy as np

        from repro.runtime.program import run_spmd

        def setup(m):
            m.coarray("T", shape=8, dtype=np.float64)

        def kernel(img):
            T = img.machine.coarray_by_name("T")
            ids = []
            for _ in range(3):
                op = img.copy_async(T.ref((img.rank + 1) % img.nimages),
                                    np.ones(8))
                ids.append(op.pending_op.op_id)
            yield from img.cofence()
            yield from img.barrier()
            return ids

        _, first = run_spmd(kernel, 2, setup=setup)
        _, second = run_spmd(kernel, 2, setup=setup)
        assert first == second
        flat = sorted(i for ids in first for i in ids)
        # fresh machine ⇒ the stream restarts from 0
        assert flat[0] == 0

    def test_fallback_counter_still_works_without_a_machine(self):
        op = PendingOp("bare", True, False, Future("ld"), Future("lo"))
        other = PendingOp("bare", True, False, Future("ld"), Future("lo"))
        assert other.op_id > op.op_id
