"""Unit tests for the message transport layer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import Stats
from repro.net.topology import MachineParams, UniformTopology
from repro.net.transport import Message, Network


def make_net(n=4, **kwargs):
    sim = Simulator()
    defaults = dict(
        topology=UniformTopology(n, wire_latency=1e-6, self_latency=1e-7),
        bandwidth=1e9, o_send=1e-7, o_recv=1e-7,
    )
    defaults.update(kwargs)
    params = MachineParams(**defaults)
    return sim, Network(sim, params)


class TestDeliveryTiming:
    def test_basic_delivery_time(self):
        sim, net = make_net()
        arrivals = []
        msg = Message(0, 1, 1000, None, on_deliver=lambda m: arrivals.append(sim.now))
        net.send(msg)
        sim.run()
        # o_send + 1000/1e9 + latency + o_recv = 1e-7 + 1e-6 + 1e-6 + 1e-7
        assert arrivals == [pytest.approx(2.2e-6)]

    def test_injected_future_resolves_at_injection_end(self):
        sim, net = make_net()
        msg = Message(0, 1, 1000, None)
        receipt = net.send(msg)
        times = []
        receipt.injected.add_done_callback(lambda _f: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1.1e-6)]  # o_send + size/bw

    def test_nic_serializes_injection(self):
        sim, net = make_net()
        arrivals = []
        for tag in range(3):
            net.send(Message(0, 1, 1000, tag,
                             on_deliver=lambda m: arrivals.append((m.payload, sim.now))))
        sim.run()
        # Each message adds o_send + transfer to the NIC busy window.
        t0 = 1.1e-6 + 1.1e-6  # inject end of msg0 + wire + o_recv
        assert arrivals[0] == (0, pytest.approx(t0))
        assert arrivals[1] == (1, pytest.approx(t0 + 1.1e-6))
        assert arrivals[2] == (2, pytest.approx(t0 + 2.2e-6))

    def test_nic_busy_until(self):
        sim, net = make_net()
        net.send(Message(0, 1, 1000, None))
        assert net.nic_busy_until(0) == pytest.approx(1.1e-6)
        assert net.nic_busy_until(1) == 0.0

    def test_loopback_uses_self_latency(self):
        sim, net = make_net()
        arrivals = []
        net.send(Message(2, 2, 0, None, on_deliver=lambda m: arrivals.append(sim.now)))
        sim.run()
        assert arrivals == [pytest.approx(1e-7 + 1e-7 + 1e-7)]


class TestAcks:
    def test_delivered_future_includes_ack_latency(self):
        sim, net = make_net()
        receipt = net.send(Message(0, 1, 0, None), want_ack=True)
        times = []
        receipt.delivered.add_done_callback(lambda _f: times.append(sim.now))
        sim.run()
        # inject o_send + wire + o_recv + ack wire
        assert times == [pytest.approx(1e-7 + 1e-6 + 1e-7 + 1e-6)]

    def test_no_ack_means_no_delivered_future(self):
        _sim, net = make_net()
        receipt = net.send(Message(0, 1, 0, None))
        assert receipt.delivered is None

    def test_ack_latency_factor(self):
        sim, net = make_net(ack_latency_factor=0.5)
        receipt = net.send(Message(0, 1, 0, None), want_ack=True)
        times = []
        receipt.delivered.add_done_callback(lambda _f: times.append(sim.now))
        sim.run()
        assert times == [pytest.approx(1e-7 + 1e-6 + 1e-7 + 0.5e-6)]


class TestJitterAndStats:
    def test_jitter_reorders_messages(self):
        # With heavy jitter, two same-size messages sent back-to-back can
        # arrive out of order — the no-FIFO property the termination
        # detector must survive.
        sim, net = make_net(jitter=0.9)
        order = []
        for tag in range(20):
            net.send(Message(0, 1, 0, tag,
                             on_deliver=lambda m: order.append(m.payload)))
        sim.run()
        assert sorted(order) == list(range(20))
        assert order != list(range(20))

    def test_jitter_is_deterministic(self):
        # reproducibility requires a seed: seedless networks deliberately
        # draw distinct streams (see TestFallbackRngSeeding)
        def run_once():
            sim = Simulator()
            params = MachineParams(
                topology=UniformTopology(4, wire_latency=1e-6,
                                         self_latency=1e-7),
                bandwidth=1e9, o_send=1e-7, o_recv=1e-7, jitter=0.5)
            net = Network(sim, params, seed=7)
            order = []
            for tag in range(10):
                net.send(Message(0, 1, 0, tag,
                                 on_deliver=lambda m: order.append(m.payload)))
            sim.run()
            return order

        assert run_once() == run_once()

    def test_stats_counters(self):
        sim, net = make_net()
        net.send(Message(0, 1, 100, None, kind="test"))
        net.send(Message(1, 2, 50, None, kind="test"))
        sim.run()
        assert net.stats["net.msgs"] == 2
        assert net.stats["net.bytes"] == 150
        assert net.stats["net.kind.test"] == 2

    def test_external_stats_object(self):
        sim = Simulator()
        stats = Stats()
        params = MachineParams.uniform(2)
        net = Network(sim, params, stats=stats)
        net.send(Message(0, 1, 10, None))
        assert stats["net.msgs"] == 1


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Message(0, 1, -5, None)


class TestFallbackRngSeeding:
    """Seedless networks must not share random streams (regression:
    the fallback jitter/fault streams were built from fixed constants,
    so every seedless Network in a process drew identical jitter)."""

    def _delivery_times(self, net, sim, n_msgs=16):
        times = []
        for i in range(n_msgs):
            net.send(Message(0, 1, 100, None,
                             on_deliver=lambda m: times.append(sim.now)))
        sim.run()
        return times

    def test_seedless_networks_draw_distinct_jitter(self):
        runs = []
        for _ in range(2):
            sim, net = make_net(jitter=0.5)
            runs.append(self._delivery_times(net, sim))
        assert runs[0] != runs[1]

    def test_seeded_networks_stay_reproducible(self):
        runs = []
        for _ in range(2):
            sim = Simulator()
            params = MachineParams(
                topology=UniformTopology(4, wire_latency=1e-6,
                                         self_latency=1e-7),
                bandwidth=1e9, o_send=1e-7, o_recv=1e-7, jitter=0.5)
            net = Network(sim, params, seed=42)
            runs.append(self._delivery_times(net, sim))
        assert runs[0] == runs[1]

    def test_seedless_fault_streams_distinct(self):
        from repro.net.faults import FaultPlan

        decisions = []
        for _ in range(2):
            sim = Simulator()
            params = MachineParams(
                topology=UniformTopology(4, wire_latency=1e-6,
                                         self_latency=1e-7),
                bandwidth=1e9, o_send=1e-7, o_recv=1e-7)
            net = Network(sim, params, faults=FaultPlan(drop=0.5))
            decisions.append([net.faults.roll_drop(0, 1)
                              for _ in range(64)])
        assert decisions[0] != decisions[1]
