"""Unit tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.net.faults import FaultPlan, LinkFlap, NicStall, Partition, Straggler


class TestValidation:
    def test_probabilities_must_be_in_range(self):
        with pytest.raises(ValueError):
            FaultPlan(drop=1.0)
        with pytest.raises(ValueError):
            FaultPlan(duplicate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(ack_drop=2.0)
        with pytest.raises(ValueError):
            FaultPlan(link_drop={(0, 1): 1.5})
        with pytest.raises(ValueError):
            FaultPlan(reorder=-1.0)

    def test_stall_windows_validated(self):
        with pytest.raises(ValueError):
            NicStall(image=-1, start=0.0, duration=1.0)
        with pytest.raises(ValueError):
            NicStall(image=0, start=0.0, duration=0.0)
        with pytest.raises(TypeError):
            FaultPlan(stalls=[(0, 1.0, 2.0)])

    def test_scripted_indices_are_one_based(self):
        with pytest.raises(ValueError):
            FaultPlan().drop_nth("spawn", 0)


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        plan_a = FaultPlan(drop=0.3, duplicate=0.2, seed=11)
        plan_b = FaultPlan(drop=0.3, duplicate=0.2, seed=11)
        seq_a = [(plan_a.roll_drop(0, 1), plan_a.roll_duplicate())
                 for _ in range(50)]
        seq_b = [(plan_b.roll_drop(0, 1), plan_b.roll_duplicate())
                 for _ in range(50)]
        assert seq_a == seq_b

    def test_different_seeds_diverge(self):
        plan_a = FaultPlan(drop=0.5, seed=1)
        plan_b = FaultPlan(drop=0.5, seed=2)
        seq_a = [plan_a.roll_drop(0, 1) for _ in range(64)]
        seq_b = [plan_b.roll_drop(0, 1) for _ in range(64)]
        assert seq_a != seq_b

    def test_bind_overrides_stream(self):
        plan = FaultPlan(drop=0.5)
        plan.bind(np.random.default_rng(123))
        ref = np.random.default_rng(123)
        assert plan.roll_drop(0, 1) == (float(ref.random()) < 0.5)

    def test_clone_resets_per_run_state(self):
        plan = FaultPlan(drop=0.5, seed=3).drop_nth("spawn", 1)
        assert plan.take_scripted_drop("spawn")
        [plan.roll_drop(0, 1) for _ in range(10)]
        fresh = plan.clone()
        assert fresh.take_scripted_drop("spawn")  # count restarted
        orig = FaultPlan(drop=0.5, seed=3)
        assert ([fresh.roll_drop(0, 1) for _ in range(10)]
                == [orig.roll_drop(0, 1) for _ in range(10)])


class TestDecisions:
    def test_scripted_drop_hits_exactly_the_nth(self):
        plan = FaultPlan().drop_nth("coll.up", (2, 4))
        hits = [plan.take_scripted_drop("coll.up") for _ in range(5)]
        assert hits == [False, True, False, True, False]
        # other kinds have independent counts
        assert not plan.take_scripted_drop("spawn")

    def test_link_drop_overrides_default(self):
        plan = FaultPlan(drop=0.0, link_drop={(0, 1): 0.9999}, seed=0)
        assert plan.drop_probability(0, 1) == 0.9999
        assert plan.drop_probability(1, 0) == 0.0
        assert any(plan.roll_drop(0, 1) for _ in range(50))
        assert not any(plan.roll_drop(1, 0) for _ in range(50))

    def test_reorder_extra_latency_bounded(self):
        plan = FaultPlan(reorder=0.5, seed=0)
        for _ in range(100):
            extra = plan.extra_latency(1e-6)
            assert 0.0 <= extra < 0.5e-6
        assert FaultPlan().extra_latency(1e-6) == 0.0

    def test_stall_release_time(self):
        plan = FaultPlan(stalls=[NicStall(0, start=1.0, duration=0.5),
                                 NicStall(0, start=1.5, duration=0.25),
                                 NicStall(1, start=0.0, duration=9.0)])
        assert plan.release_time(0, 1.2) == 1.75  # chained windows
        assert plan.release_time(0, 0.5) == 0.5   # before the window
        assert plan.release_time(0, 2.0) == 2.0   # after it
        assert plan.release_time(1, 3.0) == 9.0
        assert plan.release_time(2, 1.0) == 1.0   # other image untouched

    def test_active_property(self):
        assert not FaultPlan().active
        assert FaultPlan(drop=0.1).active
        assert FaultPlan(stalls=[NicStall(0, 0.0, 1.0)]).active
        assert FaultPlan().drop_nth("spawn", 1).active

    def test_ack_drop_defaults_to_drop(self):
        assert FaultPlan(drop=0.2).ack_drop == 0.2
        assert FaultPlan(drop=0.2, ack_drop=0.05).ack_drop == 0.05

    def test_describe_mentions_configuration(self):
        text = repr(FaultPlan(drop=0.1, seed=5).drop_nth("spawn", 3))
        assert "drop=0.1" in text and "seed=5" in text and "spawn" in text


class TestScriptedDropsAndCloning:
    """Corners the schedule explorer leans on: iterable drop_nth
    scripts, clone isolation, and config round-trips."""

    def test_drop_nth_accepts_any_iterable(self):
        plan = FaultPlan().drop_nth("coll.up", (i for i in (1, 3)))
        hits = [plan.take_scripted_drop("coll.up") for _ in range(4)]
        assert hits == [True, False, True, False]

    def test_drop_nth_chains_and_merges(self):
        plan = FaultPlan().drop_nth("a", 1).drop_nth("a", [3, 5])
        hits = [plan.take_scripted_drop("a") for _ in range(5)]
        assert hits == [True, False, True, False, True]
        # duplicate indices collapse (a set, not a multiset)
        plan2 = FaultPlan().drop_nth("a", [2, 2]).drop_nth("a", 2)
        assert [plan2.take_scripted_drop("a") for _ in range(3)] \
            == [False, True, False]

    def test_clone_isolates_scripted_state(self):
        plan = FaultPlan().drop_nth("spawn", 1)
        fresh = plan.clone()
        # scripting the clone must not leak back into the original...
        fresh.drop_nth("spawn", 2)
        assert [plan.take_scripted_drop("spawn") for _ in range(2)] \
            == [True, False]
        # ...and vice versa
        plan.drop_nth("coll.up", 1)
        assert not fresh.take_scripted_drop("coll.up")
        assert fresh._scripted == {("spawn", 1), ("spawn", 2)}

    def test_clone_isolates_kind_counts(self):
        plan = FaultPlan().drop_nth("spawn", 2)
        assert not plan.take_scripted_drop("spawn")  # count -> 1
        fresh = plan.clone()
        # the clone's count restarts, so index 2 is two sends away
        assert [fresh.take_scripted_drop("spawn") for _ in range(2)] \
            == [False, True]
        # the original's count was not reset by cloning
        assert plan.take_scripted_drop("spawn")

    def test_config_round_trip(self):
        plan = FaultPlan(
            drop=0.1, duplicate=0.05, reorder=0.5, ack_drop=0.2,
            link_drop={(0, 1): 0.3}, stalls=[NicStall(1, 1e-3, 2e-3)],
            seed=7,
        ).drop_nth("coll.up", (2, 4)).drop_nth("spawn", 1)
        rebuilt = FaultPlan.from_config(plan.to_config())
        assert rebuilt.to_config() == plan.to_config()
        # same decision stream
        reference = FaultPlan(drop=0.1, duplicate=0.05, reorder=0.5,
                              ack_drop=0.2, link_drop={(0, 1): 0.3},
                              seed=7)
        assert ([rebuilt.roll_drop(0, 1) for _ in range(20)]
                == [reference.roll_drop(0, 1) for _ in range(20)])
        # same scripted-drop script, virgin counts
        assert [rebuilt.take_scripted_drop("coll.up") for _ in range(4)] \
            == [False, True, False, True]


class TestGrayFailures:
    """Gray-failure primitives: validation, the time-pure queries, and
    the clone / config round-trip guarantees the explorer leans on
    (mirrors the drop_nth regression suite)."""

    def gray_plan(self):
        return (FaultPlan(seed=9)
                .straggle(1, 10.0, degrade_at=1e-4, recover_at=5e-4)
                .partition([[0, 1], [2, 3]], 2e-4, heal_at=8e-4)
                .flap_link(0, 1, 1e-4, down_for=5e-5, up_for=5e-5, until=1e-3)
                .crash_choice(2, [1e-4, 2e-4])
                .partition_choice([[0], [1]], [3e-4], heal_after=2e-4))

    def test_validation(self):
        with pytest.raises(ValueError):
            Straggler(image=0, factor=0.5)  # must slow, not speed up
        with pytest.raises(ValueError):
            Straggler(image=0, factor=2.0, degrade_at=1.0, recover_at=0.5)
        with pytest.raises(ValueError):
            Partition(groups=((0, 1),), start=0.0)  # one group splits nothing
        with pytest.raises(ValueError):
            Partition(groups=((0, 1), (1, 2)), start=0.0)  # overlap
        with pytest.raises(ValueError):
            Partition(groups=((0,), (1,)), start=1.0, heal_at=0.5)
        with pytest.raises(ValueError):
            LinkFlap(0, 0, 0.0, 1.0, 1.0)  # loopback never faults
        with pytest.raises(ValueError):
            LinkFlap(0, 1, 0.0, down_for=0.0, up_for=1.0)
        with pytest.raises(TypeError):
            FaultPlan(stragglers=[(1, 10.0)])

    def test_service_factor_window(self):
        plan = self.gray_plan()
        assert plan.service_factor(1, 0.0) == 1.0     # before degrade_at
        assert plan.service_factor(1, 2e-4) == 10.0   # inside the window
        assert plan.service_factor(1, 5e-4) == 1.0    # recovered (half-open)
        assert plan.service_factor(0, 2e-4) == 1.0    # other image untouched
        # overlapping windows take the worst factor
        worst = FaultPlan().straggle(0, 2.0).straggle(0, 8.0, recover_at=1.0)
        assert worst.service_factor(0, 0.5) == 8.0
        assert worst.service_factor(0, 2.0) == 2.0

    def test_partition_severs_cross_group_links_only(self):
        plan = self.gray_plan()
        assert plan.link_down(0, 2, 3e-4)       # cross-group, active
        assert plan.link_down(2, 0, 3e-4)       # both directions
        assert not plan.link_down(1, 0, 3e-4)   # same group (flap is 0->1)
        assert not plan.link_down(2, 3, 3e-4)   # same group
        assert not plan.link_down(0, 2, 1e-4)   # before start
        assert not plan.link_down(0, 2, 8e-4)   # healed (half-open)
        # unlisted images are unaffected
        wide = FaultPlan().partition([[0], [1]], 0.0)
        assert not wide.link_down(0, 5, 1.0) and not wide.link_down(5, 0, 1.0)

    def test_flap_cadence(self):
        plan = FaultPlan().flap_link(0, 1, 1e-4, down_for=5e-5, up_for=5e-5,
                                     until=1e-3)
        assert not plan.link_down(0, 1, 0.0)      # before start
        assert plan.link_down(0, 1, 1.2e-4)       # first down window
        assert not plan.link_down(0, 1, 1.6e-4)   # first up window
        assert plan.link_down(0, 1, 2.2e-4)       # second down window
        assert not plan.link_down(0, 1, 2e-3)     # expired
        assert not plan.link_down(1, 0, 1.2e-4)   # directed

    def test_queries_draw_no_rng(self):
        """service_factor/link_down are pure in time: interleaving them
        must not shift the drop decision stream."""
        plan_a = self.gray_plan()
        plan_b = FaultPlan.from_config(plan_a.to_config())
        seq_a = [plan_a.roll_drop(0, 1) for _ in range(30)]
        seq_b = []
        for _ in range(30):
            plan_b.link_down(0, 2, 3e-4)
            plan_b.service_factor(1, 2e-4)
            seq_b.append(plan_b.roll_drop(0, 1))
        assert seq_a == seq_b

    def test_clone_isolates_gray_state(self):
        plan = self.gray_plan()
        fresh = plan.clone()
        fresh.straggle(2, 4.0).flap_link(2, 3, 0.0, 1e-5, 1e-5)
        fresh.crash_choice(3, [5e-4])
        assert plan.service_factor(2, 1.0) == 1.0
        assert not plan.link_down(2, 3, 5e-6)
        assert 3 not in plan.crash_choices
        plan.partition_choice([[2], [3]], [1e-4])
        assert len(fresh.partition_choices) == 1

    def test_clone_drops_per_run_resolution(self):
        """Menu picks are per-run state: a clone starts unresolved."""
        class PickOne:
            def choose(self, point):
                return 1
        plan = self.gray_plan()
        plan.resolve_choices(PickOne())
        assert plan.scheduled_crashes() == {2: 1e-4}
        assert plan.link_down(0, 1, 3.6e-4)  # menu partition severs 0|1
        fresh = plan.clone()
        assert fresh.scheduled_crashes() == {}
        assert not fresh.link_down(0, 1, 3.6e-4)
        assert fresh.to_config() == plan.to_config()  # menus survive

    def test_resolve_without_source_means_no_fault(self):
        plan = self.gray_plan()
        plan.resolve_choices(None)
        assert plan.scheduled_crashes() == {}
        assert not plan.link_down(0, 1, 3.6e-4)

    def test_gray_config_round_trip(self):
        plan = self.gray_plan()
        rebuilt = FaultPlan.from_config(plan.to_config())
        assert rebuilt.to_config() == plan.to_config()
        # the rebuilt plan makes identical time-pure decisions
        for t in (0.0, 1.2e-4, 2e-4, 3e-4, 8e-4, 2e-3):
            assert rebuilt.link_down(0, 2, t) == plan.link_down(0, 2, t)
            assert rebuilt.service_factor(1, t) == plan.service_factor(1, t)
        # JSON-safe: None heal/recover fields survive an actual dump
        import json
        assert (FaultPlan.from_config(
            json.loads(json.dumps(plan.to_config()))).to_config()
            == plan.to_config())

    def test_gray_fields_mark_plan_active(self):
        assert FaultPlan().straggle(0, 2.0).active
        assert FaultPlan().partition([[0], [1]], 0.0).active
        assert FaultPlan().flap_link(0, 1, 0.0, 1.0, 1.0).active
        assert FaultPlan().crash_choice(0, [1.0]).active
        assert FaultPlan().partition_choice([[0], [1]], [1.0]).active
        assert not FaultPlan().active

    def test_describe_mentions_gray_configuration(self):
        text = repr(self.gray_plan())
        assert "stragglers=1" in text and "partitions=1" in text
        assert "flaps=1" in text and "crash_choices" in text
