"""Unit tests for the active-message layer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Task
from repro.net.topology import MachineParams
from repro.net.transport import Network
from repro.net.flowcontrol import CreditManager
from repro.net.active_messages import AMCategory, AMLayer, AMSizeError


def make_am(n=4, credits=None, **kwargs):
    sim = Simulator()
    params = MachineParams.uniform(n, **kwargs)
    net = Network(sim, params)
    cm = CreditManager(sim, credits) if credits else None
    return sim, AMLayer(net, credit_manager=cm)


class TestHandlerDispatch:
    def test_plain_handler_runs_at_destination(self):
        sim, am = make_am()
        seen = []
        am.register("h", lambda ctx, x: seen.append((ctx.image, ctx.src, x)))
        am.request_nb(0, 2, "h", args=(42,), category=AMCategory.SHORT)
        sim.run()
        assert seen == [(2, 0, 42)]

    def test_generator_handler_becomes_task(self):
        sim, am = make_am()
        seen = []

        def h(ctx, x):
            yield Delay(1.0)
            seen.append((ctx.image, x, sim.now))

        am.register("h", h)
        am.request_nb(0, 1, "h", args=(7,), category=AMCategory.SHORT)
        sim.run()
        assert len(seen) == 1
        img, x, t = seen[0]
        assert (img, x) == (1, 7)
        assert t > 1.0  # delivery latency + the handler's own delay

    def test_payload_reaches_handler_context(self):
        sim, am = make_am()
        seen = []
        am.register("h", lambda ctx: seen.append(ctx.payload))
        am.request_nb(0, 1, "h", payload=[1, 2, 3], payload_size=24)
        sim.run()
        assert seen == [[1, 2, 3]]

    def test_unknown_handler_rejected_at_send(self):
        _sim, am = make_am()
        with pytest.raises(KeyError):
            am.request_nb(0, 1, "nope")

    def test_duplicate_registration_rejected(self):
        _sim, am = make_am()
        am.register("h", lambda ctx: None)
        with pytest.raises(ValueError):
            am.register("h", lambda ctx: None)

    def test_ensure_registered_is_idempotent(self):
        _sim, am = make_am()
        fn = lambda ctx: None
        am.ensure_registered("h", fn)
        am.ensure_registered("h", lambda ctx: None)  # ignored
        assert am._handlers["h"] is fn


class TestSizeRules:
    def test_short_rejects_payload(self):
        _sim, am = make_am()
        am.register("h", lambda ctx: None)
        with pytest.raises(AMSizeError):
            am.request_nb(0, 1, "h", payload_size=8, category=AMCategory.SHORT)

    def test_medium_cap_enforced(self):
        _sim, am = make_am()
        am.register("h", lambda ctx: None)
        cap = am.params.am_medium_max
        am.request_nb(0, 1, "h", payload_size=cap, category=AMCategory.MEDIUM)
        with pytest.raises(AMSizeError):
            am.request_nb(0, 1, "h", payload_size=cap + 1,
                          category=AMCategory.MEDIUM)

    def test_long_is_uncapped(self):
        _sim, am = make_am()
        am.register("h", lambda ctx: None)
        am.request_nb(0, 1, "h", payload_size=10**9, category=AMCategory.LONG)

    def test_category_stats(self):
        sim, am = make_am()
        am.register("h", lambda ctx: None)
        am.request_nb(0, 1, "h", category=AMCategory.SHORT)
        am.request_nb(0, 1, "h", payload_size=10)
        sim.run()
        assert am.network.stats["am.short"] == 1
        assert am.network.stats["am.medium"] == 1


class TestReply:
    def test_round_trip(self):
        sim, am = make_am()
        log = []
        am.register("pong", lambda ctx: log.append(("pong", ctx.image, sim.now)))

        def ping(ctx):
            log.append(("ping", ctx.image, sim.now))
            ctx.reply("pong")

        am.register("ping", ping)
        am.request_nb(0, 3, "ping", category=AMCategory.SHORT)
        sim.run()
        assert [e[:2] for e in log] == [("ping", 3), ("pong", 0)]
        assert log[1][2] > log[0][2]


class TestCredits:
    def test_request_blocks_when_credits_exhausted(self):
        sim, am = make_am(credits=1)
        done = []
        am.register("h", lambda ctx: None)

        def sender():
            yield from am.request(0, 1, "h", category=AMCategory.SHORT)
            yield from am.request(0, 1, "h", category=AMCategory.SHORT)
            done.append(sim.now)

        Task(sim, sender())
        sim.run()
        # Second send had to wait for the first ack (a full round trip),
        # so completion is strictly later than two back-to-back sends.
        assert done and done[0] > 2 * am.params.o_send

    def test_credits_are_returned_on_ack(self):
        sim, am = make_am(credits=2)
        am.register("h", lambda ctx: None)

        def sender():
            for _ in range(6):
                yield from am.request(0, 1, "h", category=AMCategory.SHORT)

        Task(sim, sender())
        sim.run()
        assert am.credits.outstanding(0, 1) == 0

    def test_request_without_credit_manager_does_not_ack(self):
        sim, am = make_am()
        am.register("h", lambda ctx: None)
        receipts = []

        def sender():
            r = yield from am.request(0, 1, "h", category=AMCategory.SHORT)
            receipts.append(r)

        Task(sim, sender())
        sim.run()
        assert receipts[0].delivered is None
