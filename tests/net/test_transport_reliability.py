"""The reliable-delivery protocol: exactly-once handlers above a lossy
wire, ack-driven retransmission with backoff, and a retry cap."""

import pytest

from repro.sim.engine import Simulator
from repro.net.faults import FaultPlan, NicStall
from repro.net.topology import MachineParams, UniformTopology
from repro.net.transport import Message, Network, RetryExhaustedError


def make_net(n=4, faults=None, **kwargs):
    sim = Simulator()
    defaults = dict(
        topology=UniformTopology(n, wire_latency=1e-6, self_latency=1e-7),
        bandwidth=1e9, o_send=1e-7, o_recv=1e-7, reliable=True,
    )
    defaults.update(kwargs)
    params = MachineParams(**defaults)
    return sim, Network(sim, params, faults=faults)


class TestCleanNetworkEquivalence:
    def test_reliable_ack_matches_unreliable_timing(self):
        """With no faults, enabling the protocol must not move the
        delivered-ack time: the protocol ack travels exactly like the
        NIC-level phantom ack of the unreliable model."""
        times = {}
        for reliable in (False, True):
            sim, net = make_net(reliable=reliable)
            receipt = net.send(Message(0, 1, 1000, None), want_ack=True)
            receipt.delivered.add_done_callback(
                lambda _f, s=sim, r=reliable: times.__setitem__(r, s.now))
            sim.run()
        assert times[True] == pytest.approx(times[False])

    def test_no_spurious_retransmits_when_clean(self):
        sim, net = make_net()
        for i in range(10):
            net.send(Message(0, (i % 3) + 1, 500, i), want_ack=True)
        sim.run()
        assert net.stats["net.retransmits"] == 0
        assert net.stats["net.acks"] == 10
        assert not net.unacked()

    def test_per_network_seq_restarts(self):
        """Satellite: message seqs are per-Network, so two back-to-back
        simulations number their messages identically."""
        seqs = []
        for _ in range(2):
            sim, net = make_net()
            m1, m2 = Message(0, 1, 8, None), Message(1, 2, 8, None)
            net.send(m1)
            net.send(m2)
            seqs.append((m1.seq, m2.seq))
        assert seqs[0] == seqs[1] == (0, 1)


class TestExactlyOnce:
    def test_dropped_message_is_retransmitted(self):
        sim, net = make_net(faults=FaultPlan().drop_nth("msg", 1))
        got = []
        receipt = net.send(Message(0, 1, 1000, "x",
                                   on_deliver=lambda m: got.append(m.payload)),
                           want_ack=True)
        sim.run()
        assert got == ["x"]
        assert receipt.delivered.done
        assert net.stats["net.drops"] == 1
        assert net.stats["net.retransmits"] == 1

    def test_duplicate_delivery_suppressed(self):
        sim, net = make_net(faults=FaultPlan(duplicate=0.9999, seed=1))
        got = []
        net.send(Message(0, 1, 1000, "x",
                         on_deliver=lambda m: got.append(m.payload)))
        sim.run()
        assert got == ["x"]
        assert net.stats["net.dups"] >= 1
        assert net.stats["net.dups_suppressed"] >= 1

    def test_lost_ack_healed_by_reack(self):
        """An ack-only loss forces a retransmission whose duplicate is
        suppressed but re-acked; the handler still runs exactly once."""
        sim, net = make_net(
            faults=FaultPlan(drop=0.0, ack_drop=0.5, seed=2))
        got = []
        receipt = net.send(Message(0, 1, 1000, "x",
                                   on_deliver=lambda m: got.append(m.payload)),
                           want_ack=True)
        sim.run()
        assert got == ["x"]
        assert receipt.delivered.done
        assert net.stats["net.ack_drops"] >= 1
        assert net.stats["net.dups_suppressed"] >= 1

    def test_handlers_exactly_once_under_heavy_chaos(self):
        sim, net = make_net(
            faults=FaultPlan(drop=0.3, duplicate=0.3, reorder=2.0, seed=9))
        got = []
        for i in range(40):
            net.send(Message(0, 1, 100, i,
                             on_deliver=lambda m: got.append(m.payload)),
                     want_ack=True)
        sim.run()
        assert sorted(got) == list(range(40))
        assert net.stats["net.drops"] > 0
        assert net.stats["net.retransmits"] > 0
        assert not net.unacked()

    def test_loopback_never_faulted(self):
        sim, net = make_net(faults=FaultPlan(drop=0.9999, seed=3))
        got = []
        net.send(Message(2, 2, 100, "self",
                         on_deliver=lambda m: got.append(m.payload)))
        sim.run()
        assert got == ["self"]
        assert net.stats["net.drops"] == 0


class TestRetransmissionPolicy:
    def test_backoff_doubles_retry_spacing(self):
        """With every transmission dropped, retries happen at rto, then
        rto*backoff, ... — measured from each retransmission's injection."""
        sim, net = make_net(
            faults=FaultPlan(drop=0.9999, seed=4),
            retry_cap=3, rto_safety=4.0, rto_backoff=2.0)
        with pytest.raises(RetryExhaustedError):
            net.send(Message(0, 1, 1000, None))
            sim.run()
        assert net.stats["net.retransmits"] == 3
        assert net.stats["net.drops"] == 4  # original + 3 retries

    def test_retry_exhaustion_message_names_link(self):
        sim, net = make_net(faults=FaultPlan(drop=0.9999, seed=5),
                            retry_cap=1)
        with pytest.raises(RetryExhaustedError, match=r"link \(0, 1\)"):
            net.send(Message(0, 1, 1000, None))
            sim.run()

    def test_nic_stall_delays_injection(self):
        stall = NicStall(image=0, start=0.0, duration=5e-6)
        sim, net = make_net(faults=FaultPlan(stalls=[stall]))
        receipt = net.send(Message(0, 1, 1000, None))
        times = []
        receipt.injected.add_done_callback(lambda _f: times.append(sim.now))
        sim.run()
        # injection starts at stall end, not t=0
        assert times == [pytest.approx(5e-6 + 1.1e-6)]
        assert net.stats["net.nic_stalls"] == 1

    def test_drop_and_retransmit_counted_per_kind(self):
        sim, net = make_net(faults=FaultPlan().drop_nth("spawn", 1))
        net.send(Message(0, 1, 64, None, kind="spawn"), want_ack=True)
        sim.run()
        assert net.stats["net.drops.spawn"] == 1
        assert net.stats["net.retransmits.spawn"] == 1

    def test_lost_records_kept_for_diagnostics(self):
        sim, net = make_net(reliable=False,
                            faults=FaultPlan().drop_nth("msg", 1))
        net.send(Message(0, 1, 64, None))
        sim.run()
        assert len(net.lost) == 1
        assert "0->1" in net.lost[0]


class TestUnreliableChaos:
    def test_drop_without_protocol_loses_message(self):
        sim, net = make_net(reliable=False,
                            faults=FaultPlan().drop_nth("msg", 1))
        got = []
        receipt = net.send(Message(0, 1, 1000, "x",
                                   on_deliver=lambda m: got.append(m.payload)),
                           want_ack=True)
        sim.run()
        assert got == []
        assert not receipt.delivered.done
        assert net.stats["net.drops"] == 1

    def test_duplicate_without_protocol_runs_handler_twice(self):
        sim, net = make_net(reliable=False,
                            faults=FaultPlan(duplicate=0.9999, seed=6))
        got = []
        net.send(Message(0, 1, 1000, "x",
                         on_deliver=lambda m: got.append(m.payload)))
        sim.run()
        assert got == ["x", "x"]
        assert net.stats["net.dups"] == 1
