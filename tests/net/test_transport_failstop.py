"""Fail-stop behaviour of the transport: dead links, fail-fast sends,
and the typed RetryExhaustedError / PeerFailedError diagnostics."""

import pytest

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology
from repro.net.transport import (
    Message,
    Network,
    PeerFailedError,
    RetryExhaustedError,
)
from repro.sim.engine import Simulator


def make_net(n=4, faults=None, **kwargs):
    sim = Simulator()
    defaults = dict(
        topology=UniformTopology(n, wire_latency=1e-6, self_latency=1e-7),
        bandwidth=1e9, o_send=1e-7, o_recv=1e-7,
    )
    defaults.update(kwargs)
    params = MachineParams(**defaults)
    return sim, Network(sim, params, faults=faults, seed=0)


class TestMarkDead:
    def test_delivery_to_dead_image_discarded(self):
        sim, net = make_net()
        delivered = []
        net.send(Message(0, 1, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        net.mark_dead(1)
        sim.run()
        assert delivered == []
        assert net.stats["net.dead_link_discards"] == 1

    def test_delivery_from_dead_image_discarded(self):
        sim, net = make_net()
        delivered = []
        net.send(Message(0, 1, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        net.mark_dead(0)
        sim.run()
        assert delivered == []

    def test_inflight_receipt_fails_not_dangles(self):
        """An acked send in flight when the destination dies must
        resolve its delivered future with PeerFailedError — a dangling
        future wedges the sender's finish frame forever."""
        sim, net = make_net()
        receipt = net.send(Message(0, 1, 100, None), want_ack=True)
        net.mark_dead(1)
        sim.run()
        assert receipt.delivered.done
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.peer == 1
        assert exc.suspected is False

    def test_mark_dead_idempotent(self):
        sim, net = make_net()
        net.mark_dead(1)
        net.mark_dead(1)
        assert net.stats["net.images_dead"] == 1


class TestFailFastSend:
    def test_send_to_dead_image_fails_immediately(self):
        sim, net = make_net()
        net.mark_dead(2)
        receipt = net.send(Message(0, 2, 100, None), want_ack=True)
        assert isinstance(receipt.delivered.exception(), PeerFailedError)
        assert receipt.delivered.exception().suspected is False
        sim.run()
        assert receipt.injected.done  # local completion still resolves

    def test_send_to_confirmed_image_fails_with_suspected_flag(self):
        sim, net = make_net()
        net.confirm_dead(3)
        receipt = net.send(Message(0, 3, 100, None), want_ack=True)
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.peer == 3
        assert exc.suspected is True

    def test_loopback_unaffected_by_own_death_flags(self):
        """src == dst never takes the fail-fast path (memory hand-off)."""
        sim, net = make_net()
        delivered = []
        net.suspects.add(0)
        net.send(Message(0, 0, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        sim.run()
        assert len(delivered) == 1

    def test_reliable_retransmission_parks_on_suspicion(self):
        """A reliably-sent message whose destination becomes suspected
        mid-retry parks at the next timer instead of spinning to the
        retry cap; confirmation then fails it with PeerFailedError."""
        plan = FaultPlan(drop=0.999, seed=1)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=50)
        receipt = net.send(Message(0, 1, 100, None), want_ack=True)
        sim.schedule_at(1e-4, net.mark_suspect, 1)
        sim.schedule_at(2e-4, net.confirm_dead, 1)
        sim.run()
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.suspected is True
        assert net.stats["net.retransmits"] < 50
        assert net.stats["net.quarantined"] == 1


class TestQuarantine:
    """Sends to merely-suspected peers park instead of failing: flushed
    in order on unsuspect, failed only on confirmation (DESIGN §12)."""

    def test_parked_send_flushes_on_unsuspect(self):
        sim, net = make_net()
        delivered = []
        net.mark_suspect(2)
        receipt = net.send(Message(0, 2, 100, None, on_deliver=delivered.append),
                           want_ack=True)
        assert net.stats["net.quarantined"] == 1
        sim.schedule_at(1e-4, net.unmark_suspect, 2)
        sim.run()
        assert len(delivered) == 1
        assert receipt.delivered.done
        assert receipt.delivered.exception() is None
        assert net.stats["net.quarantine_flushed"] == 1

    def test_flush_preserves_fifo_order(self):
        sim, net = make_net()
        order = []
        net.mark_suspect(1)
        for tag in ("a", "b", "c"):
            net.send(Message(0, 1, 100, tag,
                             on_deliver=lambda m: order.append(m.payload)))
        sim.schedule_at(1e-4, net.unmark_suspect, 1)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_overflow_fails_newest_send(self):
        sim, net = make_net()
        net.quarantine_cap = 1
        net.mark_suspect(1)
        first = net.send(Message(0, 1, 100, None), want_ack=True)
        second = net.send(Message(0, 1, 100, None), want_ack=True)
        exc = second.delivered.exception()
        assert isinstance(exc, PeerFailedError) and exc.suspected is True
        assert not first.delivered.done  # the old one is still parked
        assert net.stats["net.quarantine_overflow"] == 1

    def test_confirmation_fails_parked_sends(self):
        sim, net = make_net()
        net.mark_suspect(3)
        receipt = net.send(Message(0, 3, 100, None), want_ack=True)
        net.confirm_dead(3)
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.peer == 3 and exc.suspected is True
        sim.run()
        assert receipt.injected.done  # local completion still resolves

    def test_mark_dead_fails_parked_sends_as_crash(self):
        sim, net = make_net()
        net.mark_suspect(3)
        receipt = net.send(Message(0, 3, 100, None), want_ack=True)
        net.mark_dead(3)
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError) and exc.suspected is False

    def test_confirm_dead_idempotent_and_implies_suspected(self):
        sim, net = make_net()
        net.confirm_dead(1)
        net.confirm_dead(1)
        assert 1 in net.suspects and 1 in net.confirmed


class TestFlappingLinks:
    """Retransmit-abandon and heal-resume paths under flapping links."""

    def test_permanent_down_window_exhausts_retries_with_link_stats(self):
        plan = FaultPlan().flap_link(0, 1, 0.0, down_for=1.0, up_for=1e-9)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=3)
        net.send(Message(0, 1, 100, None), want_ack=True)
        with pytest.raises(RetryExhaustedError) as ei:
            sim.run()
        exc = ei.value
        assert exc.link == (0, 1)
        assert exc.attempts == 3
        assert exc.link_stats[(0, 1)] == 3
        # the original plus all three retries were lost to the window
        assert net.stats["net.link_down_drops"] == 4

    def test_link_heals_mid_backoff_and_resumes(self):
        """A data link down at first transmission recovers during the
        retransmit backoff; the message is delivered exactly once."""
        plan = FaultPlan().flap_link(0, 1, 0.0, down_for=5e-5, up_for=1.0)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=20)
        delivered = []
        receipt = net.send(Message(0, 1, 100, None,
                                   on_deliver=delivered.append),
                           want_ack=True)
        sim.run()
        assert len(delivered) == 1
        assert receipt.delivered.exception() is None
        assert net.stats["net.retransmits"] >= 1

    def test_reverse_link_flap_loses_ack_dedup_holds(self):
        """The ack link flaps: the delivered copy's ack is lost, the
        retransmitted copy is suppressed by rx dedup (the handler runs
        exactly once) and its re-ack completes the send after heal."""
        plan = FaultPlan().flap_link(1, 0, 0.0, down_for=1e-4, up_for=1.0)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=50)
        delivered = []
        receipt = net.send(Message(0, 1, 100, None,
                                   on_deliver=delivered.append),
                           want_ack=True)
        sim.run()
        assert len(delivered) == 1  # rx dedup held through the flap
        assert receipt.delivered.exception() is None
        assert net.stats["net.dups_suppressed"] >= 1
        assert net.stats["net.link_down_drops"] >= 1


class TestRetryExhaustedDiagnostics:
    def test_typed_fields_and_link_stats(self):
        """Regression: RetryExhaustedError must carry the directed link,
        the link seq, the attempt count, and the per-link retransmit
        snapshot (not just a message string)."""
        plan = FaultPlan(drop=0.999, seed=1)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=3)
        net.send(Message(0, 1, 100, None), want_ack=True)
        with pytest.raises(RetryExhaustedError) as ei:
            sim.run()
        exc = ei.value
        assert exc.link == (0, 1)
        assert exc.lseq == 0
        assert exc.attempts == 3
        assert exc.link_stats[(0, 1)] == 3
        assert net.link_retransmits[(0, 1)] == 3

    def test_link_retransmits_tracks_per_link(self):
        plan = FaultPlan().drop_nth("msg", (1, 2))
        sim, net = make_net(faults=plan, reliable=True, retry_cap=10)
        net.send(Message(0, 1, 100, None), want_ack=True)
        net.send(Message(2, 3, 100, None), want_ack=True)
        sim.run()
        # Exactly the two scripted first transmissions were retried.
        assert sum(net.link_retransmits.values()) == 2
        assert set(net.link_retransmits) == {(0, 1), (2, 3)}
