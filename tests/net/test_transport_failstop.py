"""Fail-stop behaviour of the transport: dead links, fail-fast sends,
and the typed RetryExhaustedError / PeerFailedError diagnostics."""

import pytest

from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams, UniformTopology
from repro.net.transport import (
    Message,
    Network,
    PeerFailedError,
    RetryExhaustedError,
)
from repro.sim.engine import Simulator


def make_net(n=4, faults=None, **kwargs):
    sim = Simulator()
    defaults = dict(
        topology=UniformTopology(n, wire_latency=1e-6, self_latency=1e-7),
        bandwidth=1e9, o_send=1e-7, o_recv=1e-7,
    )
    defaults.update(kwargs)
    params = MachineParams(**defaults)
    return sim, Network(sim, params, faults=faults, seed=0)


class TestMarkDead:
    def test_delivery_to_dead_image_discarded(self):
        sim, net = make_net()
        delivered = []
        net.send(Message(0, 1, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        net.mark_dead(1)
        sim.run()
        assert delivered == []
        assert net.stats["net.dead_link_discards"] == 1

    def test_delivery_from_dead_image_discarded(self):
        sim, net = make_net()
        delivered = []
        net.send(Message(0, 1, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        net.mark_dead(0)
        sim.run()
        assert delivered == []

    def test_inflight_receipt_fails_not_dangles(self):
        """An acked send in flight when the destination dies must
        resolve its delivered future with PeerFailedError — a dangling
        future wedges the sender's finish frame forever."""
        sim, net = make_net()
        receipt = net.send(Message(0, 1, 100, None), want_ack=True)
        net.mark_dead(1)
        sim.run()
        assert receipt.delivered.done
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.peer == 1
        assert exc.suspected is False

    def test_mark_dead_idempotent(self):
        sim, net = make_net()
        net.mark_dead(1)
        net.mark_dead(1)
        assert net.stats["net.images_dead"] == 1


class TestFailFastSend:
    def test_send_to_dead_image_fails_immediately(self):
        sim, net = make_net()
        net.mark_dead(2)
        receipt = net.send(Message(0, 2, 100, None), want_ack=True)
        assert isinstance(receipt.delivered.exception(), PeerFailedError)
        assert receipt.delivered.exception().suspected is False
        sim.run()
        assert receipt.injected.done  # local completion still resolves

    def test_send_to_suspect_fails_with_suspected_flag(self):
        sim, net = make_net()
        net.suspects.add(3)
        receipt = net.send(Message(0, 3, 100, None), want_ack=True)
        exc = receipt.delivered.exception()
        assert isinstance(exc, PeerFailedError)
        assert exc.peer == 3
        assert exc.suspected is True

    def test_loopback_unaffected_by_own_death_flags(self):
        """src == dst never takes the fail-fast path (memory hand-off)."""
        sim, net = make_net()
        delivered = []
        net.suspects.add(0)
        net.send(Message(0, 0, 100, None,
                         on_deliver=lambda m: delivered.append(m)))
        sim.run()
        assert len(delivered) == 1

    def test_reliable_retransmission_stops_on_suspicion(self):
        """A reliably-sent message whose destination becomes suspected
        mid-retry surfaces PeerFailedError at the next timer instead of
        spinning to the retry cap."""
        plan = FaultPlan(drop=0.999, seed=1)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=50)
        receipt = net.send(Message(0, 1, 100, None), want_ack=True)
        sim.schedule_at(1e-4, net.suspects.add, 1)
        sim.run()
        assert isinstance(receipt.delivered.exception(), PeerFailedError)
        assert net.stats["net.retransmits"] < 50


class TestRetryExhaustedDiagnostics:
    def test_typed_fields_and_link_stats(self):
        """Regression: RetryExhaustedError must carry the directed link,
        the link seq, the attempt count, and the per-link retransmit
        snapshot (not just a message string)."""
        plan = FaultPlan(drop=0.999, seed=1)
        sim, net = make_net(faults=plan, reliable=True, retry_cap=3)
        net.send(Message(0, 1, 100, None), want_ack=True)
        with pytest.raises(RetryExhaustedError) as ei:
            sim.run()
        exc = ei.value
        assert exc.link == (0, 1)
        assert exc.lseq == 0
        assert exc.attempts == 3
        assert exc.link_stats[(0, 1)] == 3
        assert net.link_retransmits[(0, 1)] == 3

    def test_link_retransmits_tracks_per_link(self):
        plan = FaultPlan().drop_nth("msg", (1, 2))
        sim, net = make_net(faults=plan, reliable=True, retry_cap=10)
        net.send(Message(0, 1, 100, None), want_ack=True)
        net.send(Message(2, 3, 100, None), want_ack=True)
        sim.run()
        # Exactly the two scripted first transmissions were retried.
        assert sum(net.link_retransmits.values()) == 2
        assert set(net.link_retransmits) == {(0, 1), (2, 3)}
