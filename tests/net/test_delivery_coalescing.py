"""Tests for same-instant delivery coalescing in the transport.

With a serial NIC and nonzero ``o_send`` two messages can never finish
injecting at the same instant, but zero-overhead configurations (the
"how fast can the substrate go" regime) produce long trains of
same-arrival-time deliveries on a link.  The transport batches those
under one simulator event (keyed ``(src, dst, arrival_time)``); these
tests pin that the batching is invisible — same delivery order, same
handler count — and that it actually engages.
"""

import pytest

from repro.sim.engine import Simulator
from repro.net.topology import MachineParams, UniformTopology
from repro.net.transport import Message, Network


def make_net(n=4, **kwargs):
    sim = Simulator()
    defaults = dict(
        topology=UniformTopology(n, wire_latency=1e-6, self_latency=1e-7),
        bandwidth=1e9, o_send=1e-7, o_recv=1e-7,
    )
    defaults.update(kwargs)
    return sim, Network(sim, MachineParams(**defaults))


def test_zero_overhead_train_coalesces():
    # o_send = 0 and size 0: every message finishes injecting at t=0 and
    # arrives at exactly wire_latency — one shared event, N-1 coalesced.
    sim, net = make_net(o_send=0.0, o_recv=0.0)
    order = []
    for tag in range(10):
        net.send(Message(0, 1, 0, tag,
                         on_deliver=lambda m: order.append(m.payload)))
    sim.run()
    assert order == list(range(10))
    assert net.stats["net.deliveries_coalesced"] == 9
    assert sim.now == pytest.approx(1e-6)


def test_batches_are_per_link():
    # Same arrival instant on *different* links must not share a batch —
    # the key includes (src, dst).
    sim, net = make_net(o_send=0.0, o_recv=0.0)
    order = []
    for dst in (1, 2, 3):
        for tag in range(3):
            net.send(Message(0, dst, 0, (dst, tag),
                             on_deliver=lambda m: order.append(m.payload)))
    sim.run()
    # Delivery order equals send order regardless of batching.
    assert order == [(dst, tag) for dst in (1, 2, 3) for tag in range(3)]
    assert net.stats["net.deliveries_coalesced"] == 6  # 2 per link


def test_serialized_nic_never_coalesces():
    # With o_send > 0 the serial NIC staggers arrivals; the batch map
    # must stay cold and timing must match the uncoalesced model.
    sim, net = make_net()
    arrivals = []
    for tag in range(3):
        net.send(Message(0, 1, 1000, tag,
                         on_deliver=lambda m: arrivals.append((m.payload,
                                                               sim.now))))
    sim.run()
    assert net.stats["net.deliveries_coalesced"] == 0
    t0 = 1.1e-6 + 1.1e-6
    assert arrivals[0] == (0, pytest.approx(t0))
    assert arrivals[1] == (1, pytest.approx(t0 + 1.1e-6))
    assert arrivals[2] == (2, pytest.approx(t0 + 2.2e-6))


def test_reliable_mode_coalesces_and_delivers_exactly_once():
    sim, net = make_net(o_send=0.0, o_recv=0.0, reliable=True)
    order = []
    receipts = [net.send(Message(0, 1, 0, tag,
                                 on_deliver=lambda m: order.append(m.payload)),
                         want_ack=True)
                for tag in range(8)]
    sim.run()
    assert order == list(range(8))
    assert net.stats["net.deliveries_coalesced"] == 7
    assert all(r.delivered.done for r in receipts)
    assert net.unacked() == []


def test_batch_map_is_drained_after_delivery():
    sim, net = make_net(o_send=0.0, o_recv=0.0)
    for tag in range(5):
        net.send(Message(0, 1, 0, tag))
    sim.run()
    assert net._arrivals == {}
