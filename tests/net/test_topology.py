"""Unit tests for network cost models."""

import pytest

from repro.net.topology import (
    HierarchicalTopology,
    HypercubeTopology,
    MachineParams,
    TorusTopology,
    UniformTopology,
    log2_rounds,
)


class TestUniformTopology:
    def test_remote_and_self_latency(self):
        t = UniformTopology(4, wire_latency=1e-6, self_latency=1e-8)
        assert t.latency(0, 1) == 1e-6
        assert t.latency(3, 0) == 1e-6
        assert t.latency(2, 2) == 1e-8

    def test_out_of_range_pair(self):
        t = UniformTopology(2)
        with pytest.raises(ValueError):
            t.latency(0, 2)
        with pytest.raises(ValueError):
            t.latency(-1, 0)

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            UniformTopology(0)
        with pytest.raises(ValueError):
            UniformTopology(2, wire_latency=0)


class TestHierarchicalTopology:
    def test_intra_vs_inter_node(self):
        t = HierarchicalTopology(16, images_per_node=4,
                                 intra_latency=1e-7, inter_latency=2e-6)
        assert t.latency(0, 3) == 1e-7   # same node
        assert t.latency(0, 4) == 2e-6   # different node
        assert t.node_of(5) == 1

    def test_self_latency(self):
        t = HierarchicalTopology(8, self_latency=5e-8)
        assert t.latency(1, 1) == 5e-8


class TestHypercubeTopology:
    def test_hops(self):
        assert HypercubeTopology.hops(0, 0) == 0
        assert HypercubeTopology.hops(0, 1) == 1
        assert HypercubeTopology.hops(0b101, 0b010) == 3

    def test_latency_grows_with_distance(self):
        t = HypercubeTopology(8, base_latency=1e-6, per_hop=1e-7)
        assert t.latency(0, 1) == pytest.approx(1.1e-6)
        assert t.latency(0, 7) == pytest.approx(1.3e-6)
        assert t.latency(0, 0) == t.self_latency


class TestTorusTopology:
    def test_coordinates_row_major(self):
        t = TorusTopology(24, dims=(2, 3, 4))
        assert t.coordinates(0) == (0, 0, 0)
        assert t.coordinates(5) == (0, 1, 1)
        assert t.coordinates(23) == (1, 2, 3)

    def test_hops_take_short_way_around(self):
        t = TorusTopology(8, dims=(8,))
        assert t.hops(0, 1) == 1
        assert t.hops(0, 7) == 1   # wraps the ring
        assert t.hops(0, 4) == 4

    def test_hops_sum_over_dimensions(self):
        t = TorusTopology(16, dims=(4, 4))
        # (0,0) -> (1,2): 1 + 2 hops
        assert t.hops(0, 6) == 3

    def test_hops_symmetric(self):
        t = TorusTopology(27, dims=(3, 3, 3))
        for a in range(0, 27, 5):
            for b in range(0, 27, 7):
                assert t.hops(a, b) == t.hops(b, a)

    def test_latency_model(self):
        t = TorusTopology(8, dims=(8,), base_latency=1e-6, per_hop=1e-7)
        assert t.latency(0, 2) == pytest.approx(1.2e-6)
        assert t.latency(3, 3) == t.self_latency

    def test_volume_validation(self):
        with pytest.raises(ValueError, match="exceed"):
            TorusTopology(9, dims=(2, 4))
        with pytest.raises(ValueError, match="bad torus"):
            TorusTopology(4, dims=())
        TorusTopology(7, dims=(2, 4))  # partial fill is fine


class TestMachineParams:
    def test_defaults_and_transfer_time(self):
        p = MachineParams.uniform(8)
        assert p.n_images == 8
        assert p.transfer_time(5_000_000_000) == pytest.approx(1.0)
        assert p.transfer_time(0) == 0.0

    def test_uniform_forwarding_of_latency_kwargs(self):
        p = MachineParams.uniform(4, wire_latency=9e-6)
        assert p.topology.latency(0, 1) == 9e-6

    def test_am_medium_max_default(self):
        # Sized so a shipped steal carries exactly 9 UTS items (§IV-C);
        # the item arithmetic is asserted in tests/apps/test_uts.py.
        p = MachineParams.uniform(2)
        assert p.am_medium_max == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            MachineParams.uniform(2, bandwidth=0)
        with pytest.raises(ValueError):
            MachineParams.uniform(2, jitter=1.5)
        with pytest.raises(ValueError):
            MachineParams.uniform(2, flow_credits=0)
        with pytest.raises(ValueError):
            MachineParams.uniform(2).transfer_time(-1)


def test_log2_rounds():
    assert log2_rounds(1) == 0
    assert log2_rounds(2) == 1
    assert log2_rounds(5) == 3
    assert log2_rounds(1024) == 10
    with pytest.raises(ValueError):
        log2_rounds(0)
