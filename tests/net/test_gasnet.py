"""Unit tests for the GASNet-like one-sided layer."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.tasks import Task
from repro.net.topology import MachineParams
from repro.net.transport import Network
from repro.net.active_messages import AMLayer
from repro.net.gasnet import AccessRegionError, Gasnet, Segment


def make_gasnet(n=4):
    sim = Simulator()
    net = Network(sim, MachineParams.uniform(n))
    gn = Gasnet(AMLayer(net))
    gn.register_segment(Segment("tab", n, shape=8, dtype=np.int64))
    return sim, gn


class TestSegments:
    def test_per_image_instances_are_independent(self):
        _sim, gn = make_gasnet()
        seg = gn.segment("tab")
        seg.local(0)[:] = 1
        assert seg.local(1).sum() == 0

    def test_duplicate_registration_rejected(self):
        _sim, gn = make_gasnet()
        with pytest.raises(ValueError):
            gn.register_segment(Segment("tab", 4, shape=8))

    def test_wrong_image_count_rejected(self):
        _sim, gn = make_gasnet(4)
        with pytest.raises(ValueError):
            gn.register_segment(Segment("other", 8, shape=4))

    def test_unknown_segment(self):
        _sim, gn = make_gasnet()
        with pytest.raises(KeyError):
            gn.segment("missing")

    def test_nbytes_of(self):
        seg = Segment("s", 2, shape=16, dtype=np.int64)
        assert seg.nbytes_of(slice(0, 4)) == 32
        assert seg.nbytes_of(0) == 8


class TestPut:
    def test_put_writes_remote_segment(self):
        sim, gn = make_gasnet()
        h = gn.put_nb(0, 2, "tab", slice(0, 3), [7, 8, 9])
        sim.run()
        assert h.done.done
        assert gn.segment("tab").local(2)[:3].tolist() == [7, 8, 9]
        assert gn.segment("tab").local(0).sum() == 0

    def test_local_data_before_done(self):
        sim, gn = make_gasnet()
        h = gn.put_nb(0, 1, "tab", 0, 5)
        times = {}
        h.local_data.add_done_callback(lambda _f: times.setdefault("ld", sim.now))
        h.done.add_done_callback(lambda _f: times.setdefault("done", sim.now))
        sim.run()
        assert times["ld"] < times["done"]

    def test_put_to_self(self):
        sim, gn = make_gasnet()
        gn.put_nb(1, 1, "tab", 4, 42)
        sim.run()
        assert gn.segment("tab").local(1)[4] == 42


class TestGet:
    def test_get_fetches_remote_values(self):
        sim, gn = make_gasnet()
        gn.segment("tab").local(3)[:] = np.arange(8)
        h = gn.get_nb(0, 3, "tab", slice(2, 5))
        sim.run()
        assert h.done.done
        assert np.asarray(h.value).tolist() == [2, 3, 4]

    def test_get_returns_copy_not_view(self):
        sim, gn = make_gasnet()
        gn.segment("tab").local(1)[0] = 10
        h = gn.get_nb(0, 1, "tab", 0)
        sim.run()
        gn.segment("tab").local(1)[0] = 99
        assert h.value == 10

    def test_get_takes_a_round_trip(self):
        sim, gn = make_gasnet()
        done_at = []
        h = gn.get_nb(0, 1, "tab", 0)
        h.done.add_done_callback(lambda _f: done_at.append(sim.now))
        sim.run()
        wire = gn.am.params.topology.latency(0, 1)
        assert done_at[0] >= 2 * wire


class TestImplicitAndRegions:
    def test_wait_syncnbi_all(self):
        sim, gn = make_gasnet()
        results = []

        def kernel():
            gn.put_nbi(0, 1, "tab", 0, 1)
            gn.put_nbi(0, 2, "tab", 0, 2)
            yield from gn.wait_syncnbi_all(0)
            results.append((
                gn.segment("tab").local(1)[0],
                gn.segment("tab").local(2)[0],
            ))

        Task(sim, kernel())
        sim.run()
        assert results == [(1, 2)]

    def test_wait_syncnbi_all_with_nothing_pending(self):
        sim, gn = make_gasnet()
        done = []

        def kernel():
            yield from gn.wait_syncnbi_all(0)
            done.append(sim.now)

        Task(sim, kernel())
        sim.run()
        assert done == [0.0]

    def test_access_region_aggregates(self):
        sim, gn = make_gasnet()
        gn.begin_accessregion(0)
        gn.put_nbi(0, 1, "tab", 0, 11)
        gn.get_nbi(0, 2, "tab", 0)
        agg = gn.end_accessregion(0)
        sim.run()
        assert agg.done

    def test_access_regions_cannot_nest(self):
        _sim, gn = make_gasnet()
        gn.begin_accessregion(0)
        with pytest.raises(AccessRegionError, match="nested"):
            gn.begin_accessregion(0)

    def test_end_without_begin(self):
        _sim, gn = make_gasnet()
        with pytest.raises(AccessRegionError):
            gn.end_accessregion(0)

    def test_regions_independent_per_image(self):
        _sim, gn = make_gasnet()
        gn.begin_accessregion(0)
        gn.begin_accessregion(1)  # fine: different image
        gn.end_accessregion(0)
        gn.end_accessregion(1)
