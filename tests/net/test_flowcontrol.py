"""Unit tests for credit-based flow control."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Task
from repro.net.flowcontrol import CreditManager


class TestCreditManager:
    def test_acquire_without_contention_is_immediate(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=2)
        done = []

        def t():
            yield from cm.acquire(0, 1)
            yield from cm.acquire(0, 1)
            done.append(sim.now)

        Task(sim, t())
        sim.run()
        assert done == [0.0]
        assert cm.outstanding(0, 1) == 2

    def test_pairs_are_independent(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=1)
        done = []

        def t():
            yield from cm.acquire(0, 1)
            yield from cm.acquire(0, 2)  # different pair: no blocking
            done.append(sim.now)

        Task(sim, t())
        sim.run()
        assert done == [0.0]

    def test_exhaustion_blocks_until_release(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=1, stall_penalty=0.0)
        trace = []

        def t():
            yield from cm.acquire(0, 1)
            trace.append(("first", sim.now))
            yield from cm.acquire(0, 1)
            trace.append(("second", sim.now))

        Task(sim, t())
        sim.schedule(5.0, cm.release, 0, 1)
        sim.run()
        assert trace == [("first", 0.0), ("second", 5.0)]

    def test_stall_penalty_charged_on_block(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=1, stall_penalty=1.0)
        trace = []

        def t():
            yield from cm.acquire(0, 1)
            yield from cm.acquire(0, 1)
            trace.append(sim.now)

        Task(sim, t())
        sim.schedule(5.0, cm.release, 0, 1)
        sim.run()
        assert trace == [6.0]
        assert cm.stats["flow.stalls"] == 1

    def test_no_stall_counted_when_credits_available(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=3)

        def t():
            yield from cm.acquire(0, 1)
            yield Delay(0)

        Task(sim, t())
        sim.run()
        assert cm.stats["flow.stalls"] == 0

    def test_release_before_acquire_adds_credit(self):
        sim = Simulator()
        cm = CreditManager(sim, credits=1)
        cm.release(0, 1)
        assert cm.outstanding(0, 1) == -1  # pool grew past initial size

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CreditManager(sim, credits=0)
        with pytest.raises(ValueError):
            CreditManager(sim, credits=1, stall_penalty=-1.0)
