"""Shared test helpers."""

import pytest

from repro import MachineParams, run_spmd


@pytest.fixture
def spmd():
    """Run a kernel SPMD and return (machine, results)."""

    def _run(kernel, n=4, setup=None, params=None, seed=0, args=(),
             max_events=2_000_000, racecheck=False):
        return run_spmd(kernel, n_images=n, setup=setup, params=params,
                        seed=seed, args=args, max_events=max_events,
                        racecheck=racecheck)

    return _run


@pytest.fixture
def fast_params():
    """Small uniform machine parameters for latency-sensitive assertions."""

    def _make(n, **kwargs):
        defaults = dict(wire_latency=1e-6, bandwidth=1e9,
                        o_send=1e-7, o_recv=1e-7)
        defaults.update(kwargs)
        return MachineParams.uniform(n, **defaults)

    return _make
