"""Determinism regression tests for the overhauled hot path.

The event-queue and task-layer optimizations (staging slot, ready deque,
synchronous continuations, delivery coalescing) are only admissible if
they are *invisible*: the same program must produce bit-for-bit the same
simulated execution — same stats, same final virtual time, same trace —
run after run in one process, and with the race detector on or off.

These tests run the two paper kernels (UTS and RandomAccess) end to end
and fingerprint each run.
"""

import hashlib
import json

import numpy as np

from repro.apps.randomaccess import RAConfig, ra_kernel
from repro.apps.uts import TreeParams, UTSConfig, uts_kernel
from repro.runtime.program import Machine
from repro.sim.chrometrace import ChromeTracer
from repro.sim.engine import Simulator
from repro.sim.tasks import Delay, Task

IMAGES = 4


def _trace_hash(tracer):
    blob = json.dumps(tracer._events, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode()).hexdigest()


def _fingerprint(machine, results):
    fp = {
        "stats": machine.stats.as_dict(),
        "sim_time": machine.sim.now.hex(),  # hex: exact, not repr-rounded
        "results": repr(results),
        "trace": _trace_hash(machine.tracer),
    }
    if machine.racecheck is not None:
        fp["races"] = [repr(r) for r in machine.racecheck.races]
    return fp


def _run_uts(racecheck):
    machine = Machine(IMAGES, seed=0, tracer=ChromeTracer(),
                      racecheck=racecheck)
    machine.launch(uts_kernel,
                   args=(UTSConfig(tree=TreeParams(b0=4, max_depth=5,
                                                   seed=19)),))
    results = machine.run()
    return _fingerprint(machine, results)


def _run_ra(racecheck):
    config = RAConfig(log2_local_table=7, updates_per_image=24)
    local_size = 2 ** config.log2_local_table
    machine = Machine(IMAGES, seed=0, tracer=ChromeTracer(),
                      racecheck=racecheck)
    machine.coarray("ra_table", shape=local_size, dtype=np.uint64)
    table = machine.coarray_by_name("ra_table")
    for r in range(IMAGES):
        table.local_at(r)[:] = np.arange(r * local_size,
                                         (r + 1) * local_size,
                                         dtype=np.uint64)
    machine.launch(ra_kernel, args=(config,))
    results = machine.run()
    fp = _fingerprint(machine, results)
    checksum = 0
    for r in range(IMAGES):
        checksum ^= int(np.bitwise_xor.reduce(table.local_at(r)))
    fp["checksum"] = checksum
    return fp


def _strip_races(fp):
    return {k: v for k, v in fp.items() if k != "races"}


class TestUTSDeterminism:
    def test_back_to_back_runs_identical(self):
        assert _run_uts(False) == _run_uts(False)

    def test_racecheck_does_not_perturb_execution(self):
        plain = _run_uts(False)
        checked = _run_uts(True)
        assert checked["races"] == []
        assert _strip_races(checked) == _strip_races(plain)


class TestRandomAccessDeterminism:
    def test_back_to_back_runs_identical(self):
        assert _run_ra(False) == _run_ra(False)

    def test_racecheck_does_not_perturb_execution(self):
        plain = _run_ra(False)
        checked = _run_ra(True)
        assert checked["races"] == []
        assert _strip_races(checked) == _strip_races(plain)


class TestTaskIdReproducibility:
    def test_task_ids_restart_per_simulator(self):
        # Task ids are allocated by the owning Simulator (not a class
        # attribute), so back-to-back simulations in one process name
        # their tasks identically.
        def run_once():
            sim = Simulator()

            def worker():
                yield Delay(0.0)

            tasks = [Task(sim, worker()) for _ in range(5)]
            sim.run()
            return [t.tid for t in tasks]

        first = run_once()
        assert first == [1, 2, 3, 4, 5]
        assert run_once() == first

    def test_machine_level_names_reproduce(self):
        # The end-to-end version of the same property: a whole machine
        # run (task ids feed trace labels and finish bookkeeping) must
        # fingerprint identically when repeated — covered above — and a
        # *fresh* machine must start its id streams from scratch.
        sim_a, sim_b = Simulator(), Simulator()

        def worker():
            yield Delay(0.0)

        ta = Task(sim_a, worker())
        tb = Task(sim_b, worker())
        assert ta.tid == tb.tid == 1
