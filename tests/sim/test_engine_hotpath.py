"""Regression tests for the hot-path event queue (DESIGN.md §9).

The engine keeps events in three structures (staging slot, ready deque,
heap) plus a lazy-cancellation side channel.  These tests pin the
observable contract those optimizations must preserve: exact O(1)
``pending_events`` accounting, (time, seq) firing order across all
structure transitions, and cancel being safe at any point in an entry's
life cycle.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestPendingEventsAccounting:
    def test_cancel_then_count_without_draining(self):
        # The O(1) pending_events satellite: cancelled entries stay in the
        # queue (lazy deletion) but must not be counted.
        sim = Simulator()
        entries = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        assert sim.pending_events == 100
        for ev in entries[::2]:
            sim.cancel(ev)
        assert sim.pending_events == 50
        for ev in entries[::2]:
            sim.cancel(ev)  # double-cancel is a no-op
        assert sim.pending_events == 50
        sim.run()
        assert sim.pending_events == 0

    def test_staged_entry_cancel_counts(self):
        # A single future event parks in the staging slot; cancelling it
        # must remove it outright.
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.cancel(ev)
        assert sim.pending_events == 0
        sim.run()
        assert sim.now == 0.0 and sim.events_processed == 0

    def test_cancel_after_fire_is_noop_for_every_structure(self):
        # Entries can fire from the staging slot, the ready deque, or the
        # heap; a late cancel of any of them must not corrupt the count.
        sim = Simulator()
        staged = sim.schedule(1.0, lambda: None)          # will fire staged
        sim.run()
        ready = sim.call_soon(lambda: None)               # will fire from ready
        heaped = sim.schedule(0.0, lambda: None)          # ready too
        far = sim.schedule(1.0, lambda: None)             # flushes into heap
        ok = sim.schedule(2.0, lambda: None)
        sim.run()
        for ev in (staged, ready, heaped, far, ok):
            sim.cancel(ev)
        assert sim.pending_events == 0
        live = sim.schedule(1.0, lambda: None)
        assert sim.pending_events == 1
        sim.cancel(live)
        assert sim.pending_events == 0

    def test_counts_stay_exact_across_mixed_cancels_and_runs(self):
        sim = Simulator()
        fired = []
        keep = [sim.schedule(2.0, fired.append, i) for i in range(10)]
        drop = [sim.schedule(1.0, fired.append, -1) for _ in range(10)]
        for ev in drop:
            sim.cancel(ev)
        assert sim.pending_events == 10
        sim.run()
        assert fired == list(range(10))
        assert sim.pending_events == 0


class TestOrderingAcrossStructures:
    def test_zero_delay_seeded_chain_preserves_order(self):
        # A chain whose first link enters via the ready deque must behave
        # identically to one staged directly (the engine transitions
        # ready -> heap -> staging slot mid-run).
        sim = Simulator()
        fired = []

        def tick(i):
            fired.append((i, sim.now))
            if i < 5:
                sim.schedule(1.0, tick, i + 1)

        sim.schedule(0.0, tick, 0)
        sim.run()
        assert fired == [(i, float(i)) for i in range(6)]

    def test_call_soon_during_staged_chain(self):
        sim = Simulator()
        fired = []

        def tick(i):
            fired.append(f"tick{i}")
            if i == 1:
                sim.call_soon(fired.append, "soon")
            if i < 3:
                sim.schedule(1.0, tick, i + 1)

        sim.schedule(1.0, tick, 0)
        sim.run()
        assert fired == ["tick0", "tick1", "soon", "tick2", "tick3"]

    def test_same_time_events_from_different_structures(self):
        # Three events at t=1.0 created through three different paths
        # must still fire in creation order.
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")   # staged
        sim.schedule(1.0, fired.append, "b")   # flushes a, both heaped
        sim.schedule(1.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_step_walks_mixed_queue_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.call_soon(fired.append, "now1")
        sim.call_soon(fired.append, "now2")
        cancelled = sim.call_soon(fired.append, "never")
        sim.cancel(cancelled)
        seen = 0
        while sim.step():
            seen += 1
        assert fired == ["now1", "now2", "late"]
        assert seen == 3
        assert sim.pending_events == 0
        assert not sim.step()

    def test_resume_after_horizon_keeps_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(3.0, fired.append, "b")
        sim.run(until=2.0)
        sim.schedule(0.5, fired.append, "mid")   # t=2.5, beats b
        sim.run()
        assert fired == ["a", "mid", "b"]


class TestQuiescence:
    def test_empty_simulator_is_quiescent(self):
        assert Simulator().quiescent_at_now()

    def test_future_event_does_not_break_quiescence(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        assert sim.quiescent_at_now()

    def test_due_event_breaks_quiescence(self):
        sim = Simulator()
        sim.call_soon(lambda: None)
        assert not sim.quiescent_at_now()

    def test_cancelled_due_event_restores_quiescence(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        due = sim.schedule(1.0, lambda: None)  # force both into the heap
        sim.step()  # fire the first; `due` is now due at t=1.0
        assert not sim.quiescent_at_now()
        # the heap still holds the stale entry after this cancel;
        # quiescence must see through it
        sim.cancel(due)
        assert sim.quiescent_at_now()


def test_schedule_at_rejects_past_even_when_staged():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="past"):
        sim.schedule_at(4.0, lambda: None)
