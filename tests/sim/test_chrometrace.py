"""Tests for the chrome-trace exporter and its runtime hooks."""

import json

import numpy as np
import pytest

from repro.sim.chrometrace import ChromeTracer
from repro.runtime.program import Machine


class TestTracerUnit:
    def test_span_event_format(self):
        tr = ChromeTracer()
        tr.span(2, "compute", 1e-6, 2e-6, args={"k": 1})
        (ev,) = tr.events
        assert ev["ph"] == "X"
        assert ev["tid"] == 2
        assert ev["ts"] == pytest.approx(1.0)
        assert ev["dur"] == pytest.approx(2.0)
        assert ev["args"] == {"k": 1}

    def test_instant_event(self):
        tr = ChromeTracer()
        tr.instant(0, "post", 5e-6)
        assert tr.events[0]["ph"] == "i"

    def test_instant_scope_is_thread(self):
        # regression: without "s": "t" Perfetto draws instants as
        # process-wide vertical lines instead of track-local marks
        tr = ChromeTracer()
        tr.instant(1, "notify", 2e-6)
        (ev,) = tr.events
        assert ev["s"] == "t"
        assert ev["tid"] == 1

    def test_saved_instants_keep_thread_scope(self, tmp_path):
        tr = ChromeTracer()
        tr.instant(0, "post", 1e-6)
        tr.span(0, "compute", 0, 1e-6)
        path = tmp_path / "trace.json"
        tr.save(str(path))
        data = json.loads(path.read_text())
        instants = [e for e in data["traceEvents"] if e.get("ph") == "i"]
        assert instants and all(e["s"] == "t" for e in instants)

    def test_flow_pairs(self):
        tr = ChromeTracer()
        tr.flow("spawn", 0, 1e-6, 3, 2e-6)
        start, finish = tr.events
        assert start["ph"] == "s" and finish["ph"] == "f"
        assert start["id"] == finish["id"]
        assert start["tid"] == 0 and finish["tid"] == 3

    def test_flow_ids_unique(self):
        tr = ChromeTracer()
        tr.flow("a", 0, 0, 1, 1e-6)
        tr.flow("b", 0, 0, 1, 1e-6)
        ids = {e["id"] for e in tr.events}
        assert len(ids) == 2

    def test_disabled_tracer_records_nothing(self):
        tr = ChromeTracer()
        tr.enabled = False
        tr.span(0, "x", 0, 1)
        tr.instant(0, "y", 0)
        tr.flow("z", 0, 0, 1, 1)
        assert len(tr) == 0

    def test_json_roundtrip(self, tmp_path):
        tr = ChromeTracer()
        tr.label_tracks(2)
        tr.span(0, "compute", 0, 1e-6)
        path = tmp_path / "trace.json"
        tr.save(str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data
        assert any(e.get("ph") == "M" for e in data["traceEvents"])


class TestRuntimeHooks:
    def _traced_machine(self, kernel, n=3):
        tracer = ChromeTracer()
        machine = Machine(n, tracer=tracer)
        machine.launch(kernel)
        machine.run()
        return tracer

    def test_compute_spans_recorded(self):
        def kernel(img):
            yield from img.compute(2e-6)

        tracer = self._traced_machine(kernel)
        spans = [e for e in tracer.events if e.get("name") == "compute"]
        assert len(spans) == 3
        assert all(e["dur"] == pytest.approx(2.0) for e in spans)

    def test_message_flows_recorded(self):
        def remote(img):
            yield from img.compute(1e-7)

        def kernel(img):
            yield from img.finish_begin()
            if img.rank == 0:
                yield from img.spawn(remote, 1)
            yield from img.finish_end()

        tracer = self._traced_machine(kernel)
        flows = [e for e in tracer.events
                 if e.get("cat") == "msg" and e["ph"] == "s"]
        assert any(e["name"] == "spawn" for e in flows)
        waves = [e for e in tracer.events if e.get("name") == "finish wave"]
        assert waves  # the detector recorded its reduction waves

    def test_tracing_does_not_change_results(self):
        def kernel(img):
            v = yield from img.allreduce(img.rank)
            return v

        plain = Machine(4)
        plain.launch(kernel)
        r1 = plain.run()
        traced = Machine(4, tracer=ChromeTracer())
        traced.launch(kernel)
        r2 = traced.run()
        assert r1 == r2
        assert plain.sim.now == traced.sim.now
