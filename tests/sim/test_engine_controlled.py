"""Controlled-scheduling mode of the engine (DESIGN.md §10.1).

Two obligations: (1) a source that always answers 0 reproduces the
baseline engine's execution exactly — same firing order, same final
state, same fingerprints on a full machine workload; (2) non-zero
choices actually reorder same-instant events, and the mechanics
(mid-run installation, budgets, bounds) behave.
"""

import pytest

from repro.sim.engine import ChoicePoint, SimulationError, Simulator
from repro.explore.schedule import DefaultSource, RecordingSource


class PickLast(DefaultSource):
    """Always fires the newest same-instant candidate first."""

    def choose(self, point):
        return point.n - 1


class TestAllZerosEqualsBaseline:
    def _workload(self, sim):
        fired = []
        for tag in range(6):
            sim.schedule(1.0, fired.append, tag)
        sim.schedule(2.0, fired.append, "late")
        sim.call_soon(fired.append, "soon")
        return fired

    def test_firing_order_identical(self):
        base_sim = Simulator()
        base = self._workload(base_sim)
        base_sim.run()

        ctrl_sim = Simulator()
        ctrl_sim.set_schedule_source(DefaultSource())
        ctrl = self._workload(ctrl_sim)
        ctrl_sim.run()

        assert ctrl == base
        assert ctrl_sim.now == base_sim.now
        assert ctrl_sim.events_processed == base_sim.events_processed

    def test_machine_fingerprint_identical(self):
        from repro.apps.ordering_bug import run_ordering_bug

        base = run_ordering_bug(seed=0)
        ctrl = run_ordering_bug(seed=0, schedule=DefaultSource())
        assert ctrl.ok and base.ok
        assert ctrl.observed == base.observed
        assert ctrl.sim_time == base.sim_time

    def test_cascades_and_cancellation_identical(self):
        def workload(sim):
            fired = []

            def cascade(depth):
                fired.append((sim.now, depth))
                if depth:
                    sim.call_soon(cascade, depth - 1)

            sim.schedule(1.0, cascade, 3)
            doomed = sim.schedule(1.0, fired.append, "doomed")
            sim.schedule(1.0, sim.cancel, doomed)
            sim.schedule(1.0, fired.append, "kept")
            sim.run()
            return fired, sim.now, sim.events_processed

        base_result = workload(Simulator())
        ctrl_sim = Simulator()
        ctrl_sim.set_schedule_source(DefaultSource())
        assert workload(ctrl_sim) == base_result


class TestChoicePoints:
    def test_nonzero_choice_reorders_ties(self):
        sim = Simulator()
        sim.set_schedule_source(PickLast())
        fired = []
        for tag in range(4):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [3, 2, 1, 0]

    def test_single_candidate_asks_no_question(self):
        sim = Simulator()
        recorder = RecordingSource(DefaultSource())
        sim.set_schedule_source(recorder)
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run()
        assert recorder.records == []  # distinct instants: never a tie

    def test_ties_are_recorded_with_labels(self):
        sim = Simulator()
        recorder = RecordingSource(DefaultSource())
        sim.set_schedule_source(recorder)

        def named_a():
            pass

        def named_b():
            pass

        sim.schedule(1.0, named_a)
        sim.schedule(1.0, named_b)
        sim.run()
        assert len(recorder.records) == 1
        rec = recorder.records[0]
        assert rec.domain == "ready" and rec.n == 2
        assert "named_a" in rec.labels[0]
        assert "named_b" in rec.labels[1]

    def test_same_instant_newcomers_join_batch_tail(self):
        # an event scheduled *for the current instant* during the instant
        # becomes a candidate after the existing ones (baseline order)
        sim = Simulator()
        sim.set_schedule_source(DefaultSource())
        fired = []

        def spawner():
            fired.append("spawner")
            sim.call_soon(fired.append, "newcomer")

        sim.schedule(1.0, spawner)
        sim.schedule(1.0, fired.append, "sibling")
        sim.run()
        assert fired == ["spawner", "sibling", "newcomer"]

    def test_out_of_range_choice_rejected(self):
        class Bad(DefaultSource):
            def choose(self, point):
                return point.n

        sim = Simulator()
        sim.set_schedule_source(Bad())
        sim.schedule(1.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run()


class TestMechanics:
    def test_cannot_install_source_mid_run(self):
        sim = Simulator()

        def attach():
            sim.set_schedule_source(DefaultSource())

        sim.schedule(1.0, attach)
        with pytest.raises(SimulationError):
            sim.run()

    def test_until_not_supported_in_controlled_mode(self):
        sim = Simulator()
        sim.set_schedule_source(DefaultSource())
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_max_events_budget_enforced(self):
        sim = Simulator()
        sim.set_schedule_source(DefaultSource())
        for i in range(10):
            sim.schedule(float(i), lambda: None)
        with pytest.raises(SimulationError, match="max_events"):
            sim.run(max_events=3)

    def test_source_can_be_cleared_between_runs(self):
        sim = Simulator()
        sim.set_schedule_source(DefaultSource())
        sim.schedule(1.0, lambda: None)
        sim.run()
        sim.set_schedule_source(None)
        fired = []
        sim.schedule(2.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]

    def test_choice_point_repr_fields(self):
        point = ChoicePoint("lag", 3, key="copy:0->1", branch_hint=True)
        assert point.domain == "lag"
        assert point.n == 3
        assert point.key == "copy:0->1"
