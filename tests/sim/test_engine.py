"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.events_processed == 0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(3.0, fired.append, "c")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_ties_broken_by_insertion_order():
    sim = Simulator()
    fired = []
    for tag in range(10):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == list(range(10))


def test_call_soon_runs_after_queued_events_at_same_time():
    sim = Simulator()
    fired = []
    sim.schedule(0.0, fired.append, "first")
    sim.call_soon(fired.append, "second")
    sim.run()
    assert fired == ["first", "second"]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.schedule(0.5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.schedule(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 1.5)]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_into_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_clock_at_horizon():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(10.0, fired.append, "b")
    sim.run(until=5.0)
    assert fired == ["a"]
    assert sim.now == 5.0
    # The late event survives and fires on resume.
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_max_events_guard():
    sim = Simulator()

    def pingpong():
        sim.schedule(1.0, pingpong)

    sim.schedule(0.0, pingpong)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_event_cancellation():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, fired.append, "cancelled")
    sim.schedule(2.0, fired.append, "kept")
    sim.cancel(ev)
    sim.run()
    assert fired == ["kept"]


def test_events_processed_counts():
    sim = Simulator()
    for _ in range(7):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_processed == 7


def test_run_is_not_reentrant():
    sim = Simulator()
    seen = []

    def reenter():
        with pytest.raises(SimulationError, match="reentrant"):
            sim.run()
        seen.append(True)

    sim.schedule(0.0, reenter)
    sim.run()
    assert seen == [True]
