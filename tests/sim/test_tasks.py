"""Unit tests for the cooperative-task layer."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.tasks import (
    Channel,
    Condition,
    Delay,
    Future,
    Semaphore,
    Task,
    TaskFailed,
    all_of,
    any_of,
)


# --------------------------------------------------------------------- #
# Future
# --------------------------------------------------------------------- #

class TestFuture:
    def test_result_roundtrip(self):
        f = Future("x")
        f.set_result(42)
        assert f.done
        assert f.result() == 42
        assert f.exception() is None

    def test_exception_roundtrip(self):
        f = Future()
        f.set_exception(ValueError("boom"))
        assert f.done
        with pytest.raises(ValueError):
            f.result()

    def test_double_resolution_rejected(self):
        f = Future()
        f.set_result(1)
        with pytest.raises(Exception, match="twice"):
            f.set_result(2)

    def test_result_before_resolution_rejected(self):
        f = Future()
        with pytest.raises(Exception, match="not resolved"):
            f.result()

    def test_callback_after_resolution_fires_immediately(self):
        f = Future()
        f.set_result("v")
        got = []
        f.add_done_callback(lambda fut: got.append(fut.result()))
        assert got == ["v"]

    def test_callbacks_fire_in_registration_order(self):
        f = Future()
        got = []
        f.add_done_callback(lambda _: got.append(1))
        f.add_done_callback(lambda _: got.append(2))
        f.set_result(None)
        assert got == [1, 2]


class TestCombinators:
    def test_all_of_collects_in_order(self):
        a, b = Future(), Future()
        combined = all_of([a, b])
        b.set_result("B")
        assert not combined.done
        a.set_result("A")
        assert combined.result() == ["A", "B"]

    def test_all_of_empty_resolves_immediately(self):
        assert all_of([]).result() == []

    def test_all_of_propagates_exception(self):
        a, b = Future(), Future()
        combined = all_of([a, b])
        a.set_exception(RuntimeError("x"))
        with pytest.raises(RuntimeError):
            combined.result()

    def test_any_of_returns_first(self):
        a, b = Future(), Future()
        combined = any_of([a, b])
        b.set_result("B")
        assert combined.result() == (1, "B")
        a.set_result("A")  # late resolution is harmless
        assert combined.result() == (1, "B")

    def test_any_of_empty_rejected(self):
        with pytest.raises(Exception):
            any_of([])


# --------------------------------------------------------------------- #
# Task
# --------------------------------------------------------------------- #

class TestTask:
    def test_delay_advances_clock(self):
        sim = Simulator()
        trace = []

        def gen():
            trace.append(sim.now)
            yield Delay(2.5)
            trace.append(sim.now)

        t = Task(sim, gen())
        sim.run()
        assert trace == [0.0, 2.5]
        assert t.done_future.done

    def test_return_value_through_done_future(self):
        sim = Simulator()

        def gen():
            yield Delay(1.0)
            return "answer"

        t = Task(sim, gen())
        sim.run()
        assert t.done_future.result() == "answer"

    def test_blocking_on_future(self):
        sim = Simulator()
        gate = Future()
        trace = []

        def waiter():
            value = yield gate
            trace.append((sim.now, value))

        Task(sim, waiter())
        sim.schedule(3.0, gate.set_result, "go")
        sim.run()
        assert trace == [(3.0, "go")]

    def test_exception_from_future_raised_in_task(self):
        sim = Simulator()
        gate = Future()
        caught = []

        def waiter():
            try:
                yield gate
            except ValueError as e:
                caught.append(str(e))

        Task(sim, waiter())
        sim.schedule(1.0, gate.set_exception, ValueError("bad"))
        sim.run()
        assert caught == ["bad"]

    def test_escaping_exception_wrapped_in_task_failed(self):
        sim = Simulator()

        def gen():
            yield Delay(0.0)
            raise RuntimeError("kaboom")

        t = Task(sim, gen(), name="bad-task")
        sim.run()
        with pytest.raises(TaskFailed, match="bad-task"):
            t.done_future.result()

    def test_yield_from_subroutine(self):
        sim = Simulator()

        def sub():
            yield Delay(1.0)
            return 10

        def main():
            a = yield from sub()
            b = yield from sub()
            return a + b

        t = Task(sim, main())
        sim.run()
        assert t.done_future.result() == 20
        assert sim.now == 2.0

    def test_bad_directive_is_an_error(self):
        sim = Simulator()

        def gen():
            yield "not a directive"

        t = Task(sim, gen())
        sim.run()
        with pytest.raises(TaskFailed):
            t.done_future.result()

    def test_non_generator_rejected_eagerly(self):
        sim = Simulator()
        with pytest.raises(TypeError, match="generator"):
            Task(sim, lambda: None)

    def test_two_tasks_interleave_deterministically(self):
        sim = Simulator()
        trace = []

        def worker(tag, dt):
            for _ in range(3):
                yield Delay(dt)
                trace.append((tag, sim.now))

        Task(sim, worker("a", 1.0))
        Task(sim, worker("b", 1.5))
        sim.run()
        # At t=3.0 both tasks resume; b's resume event was scheduled at
        # t=1.5 (before a's at t=2.0), so b fires first.
        assert trace == [
            ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0),
            ("a", 3.0), ("b", 4.5),
        ]


# --------------------------------------------------------------------- #
# Channel / Semaphore / Condition
# --------------------------------------------------------------------- #

class TestChannel:
    def test_put_then_get(self):
        sim = Simulator()
        ch = Channel(sim)
        ch.put("x")
        got = []

        def consumer():
            item = yield from ch.get()
            got.append(item)

        Task(sim, consumer())
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def consumer():
            item = yield from ch.get()
            got.append((sim.now, item))

        Task(sim, consumer())
        sim.schedule(2.0, ch.put, "late")
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_ordering_of_items_and_waiters(self):
        sim = Simulator()
        ch = Channel(sim)
        got = []

        def consumer(tag):
            item = yield from ch.get()
            got.append((tag, item))

        Task(sim, consumer("first"))
        Task(sim, consumer("second"))
        sim.schedule(1.0, ch.put, "a")
        sim.schedule(2.0, ch.put, "b")
        sim.run()
        assert got == [("first", "a"), ("second", "b")]

    def test_try_get(self):
        sim = Simulator()
        ch = Channel(sim)
        assert ch.try_get() == (False, None)
        ch.put(5)
        assert ch.try_get() == (True, 5)
        assert len(ch) == 0


class TestSemaphore:
    def test_counts(self):
        sim = Simulator()
        s = Semaphore(sim, 2)
        assert s.try_acquire()
        assert s.try_acquire()
        assert not s.try_acquire()
        s.release()
        assert s.available == 1

    def test_blocking_acquire(self):
        sim = Simulator()
        s = Semaphore(sim, 0)
        trace = []

        def worker():
            yield from s.acquire()
            trace.append(sim.now)

        Task(sim, worker())
        sim.schedule(4.0, s.release)
        sim.run()
        assert trace == [4.0]

    def test_release_wakes_fifo(self):
        sim = Simulator()
        s = Semaphore(sim, 0)
        trace = []

        def worker(tag):
            yield from s.acquire()
            trace.append(tag)

        Task(sim, worker("a"))
        Task(sim, worker("b"))
        sim.schedule(1.0, s.release)
        sim.schedule(2.0, s.release)
        sim.run()
        assert trace == ["a", "b"]

    def test_negative_count_rejected(self):
        with pytest.raises(Exception):
            Semaphore(Simulator(), -1)


class TestCondition:
    def test_wait_until_already_true_does_not_block(self):
        sim = Simulator()
        cond = Condition(sim)
        trace = []

        def t():
            yield from cond.wait_until(lambda: True)
            trace.append(sim.now)

        Task(sim, t())
        sim.run()
        assert trace == [0.0]

    def test_wake_reevaluates_predicates(self):
        sim = Simulator()
        cond = Condition(sim)
        state = {"n": 0}
        trace = []

        def waiter():
            yield from cond.wait_until(lambda: state["n"] >= 2)
            trace.append(sim.now)

        def bump():
            state["n"] += 1
            cond.wake()

        Task(sim, waiter())
        sim.schedule(1.0, bump)
        sim.schedule(2.0, bump)
        sim.run()
        assert trace == [2.0]

    def test_selective_wake(self):
        sim = Simulator()
        cond = Condition(sim)
        state = {"a": False, "b": False}
        trace = []

        def waiter(key):
            yield from cond.wait_until(lambda: state[key])
            trace.append(key)

        Task(sim, waiter("a"))
        Task(sim, waiter("b"))

        def set_key(key):
            state[key] = True
            cond.wake()

        sim.schedule(1.0, set_key, "b")
        sim.schedule(2.0, set_key, "a")
        sim.run()
        assert trace == ["b", "a"]
