"""Unit tests for rng streams and tracing probes."""

import numpy as np
import pytest

from repro.sim.rng import RngPool
from repro.sim.trace import IntervalAccumulator, Probe, Stats


class TestRngPool:
    def test_reproducible_across_pools(self):
        a = RngPool(seed=7, n_streams=4)
        b = RngPool(seed=7, n_streams=4)
        for i in range(4):
            assert np.array_equal(a[i].integers(0, 1000, 16), b[i].integers(0, 1000, 16))

    def test_streams_are_independent(self):
        pool = RngPool(seed=7, n_streams=2)
        x = pool[0].integers(0, 2**31, 64)
        y = pool[1].integers(0, 2**31, 64)
        assert not np.array_equal(x, y)

    def test_different_seeds_differ(self):
        a = RngPool(seed=1, n_streams=1)
        b = RngPool(seed=2, n_streams=1)
        assert not np.array_equal(a[0].integers(0, 2**31, 64), b[0].integers(0, 2**31, 64))

    def test_out_of_range_index(self):
        pool = RngPool(seed=0, n_streams=2)
        with pytest.raises(IndexError):
            pool[2]
        with pytest.raises(IndexError):
            pool[-1]

    def test_invalid_stream_count(self):
        with pytest.raises(ValueError):
            RngPool(seed=0, n_streams=0)


class TestStats:
    def test_incr_and_read(self):
        s = Stats()
        s.incr("a.b")
        s.incr("a.b", 4)
        assert s["a.b"] == 5
        assert s["missing"] == 0
        assert "a.b" in s
        assert "missing" not in s

    def test_with_prefix(self):
        s = Stats()
        s.incr("net.sent", 3)
        s.incr("net.recv", 2)
        s.incr("finish.rounds", 1)
        assert s.with_prefix("net.") == {"net.sent": 3, "net.recv": 2}

    def test_keys_sorted(self):
        s = Stats()
        s.incr("z")
        s.incr("a")
        assert list(s.keys()) == ["a", "z"]


class TestProbe:
    def test_record_and_summary(self):
        p = Probe("lat")
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)]:
            p.record(t, v)
        s = p.summary()
        assert s["count"] == 3
        assert s["min"] == 1.0
        assert s["max"] == 3.0
        assert s["mean"] == 2.0
        assert s["sum"] == 6.0

    def test_empty_summary(self):
        assert Probe().summary() == {"count": 0}

    def test_arrays(self):
        p = Probe()
        p.record(1.0, 10.0)
        assert p.times.tolist() == [1.0]
        assert p.values.tolist() == [10.0]


class TestIntervalAccumulator:
    def test_busy_accumulation(self):
        acc = IntervalAccumulator(3)
        acc.add(0, 2.0)
        acc.add(0, 1.0)
        acc.add(2, 3.0)
        assert acc.busy.tolist() == [3.0, 0.0, 3.0]
        assert acc.total() == 6.0

    def test_relative_fractions(self):
        acc = IntervalAccumulator(2)
        acc.add(0, 1.0)
        acc.add(1, 3.0)
        assert acc.relative_fractions().tolist() == [0.5, 1.5]

    def test_relative_fractions_all_zero(self):
        acc = IntervalAccumulator(4)
        assert acc.relative_fractions().tolist() == [1.0] * 4

    def test_negative_duration_rejected(self):
        acc = IntervalAccumulator(1)
        with pytest.raises(ValueError):
            acc.add(0, -1.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            IntervalAccumulator(0)

    def test_stream_out_of_range_rejected(self):
        # regression: a negative stream used to wrap via numpy indexing
        # and silently credit the last stream's busy time
        acc = IntervalAccumulator(3)
        with pytest.raises(IndexError):
            acc.add(-1, 1.0)
        with pytest.raises(IndexError):
            acc.add(3, 1.0)
        acc.add(2, 1.0)
        assert acc.busy.tolist() == [0.0, 0.0, 1.0]
