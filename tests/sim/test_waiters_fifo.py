"""Many-waiters FIFO tests for the synchronization primitives.

The wait queues (Channel, Semaphore, and the runtime lock table) moved
from ``list.pop(0)`` to ``collections.deque`` — O(1) wakeups instead of
O(n) shifts.  A deque preserves FIFO order only if every producer
appends and every consumer pops left, so these tests drive *many*
waiters through each primitive and assert strict arrival-order service.
"""

from repro.sim.engine import Simulator
from repro.sim.tasks import Channel, Delay, Semaphore, Task

N_WAITERS = 64


def test_channel_many_waiters_fifo():
    sim = Simulator()
    served = []

    def consumer(tag):
        item = yield from ch.get()
        served.append((tag, item))

    ch = Channel(sim)
    for tag in range(N_WAITERS):
        Task(sim, consumer(tag))
    for item in range(N_WAITERS):
        sim.schedule(1.0 + item, ch.put, item)
    sim.run()
    assert served == [(i, i) for i in range(N_WAITERS)]


def test_channel_burst_of_puts_services_waiters_in_order():
    sim = Simulator()
    served = []

    def consumer(tag):
        item = yield from ch.get()
        served.append((tag, item))

    ch = Channel(sim)
    for tag in range(N_WAITERS):
        Task(sim, consumer(tag))

    def burst():
        for item in range(N_WAITERS):
            ch.put(item)

    sim.schedule(1.0, burst)
    sim.run()
    assert served == [(i, i) for i in range(N_WAITERS)]


def test_channel_buffered_items_drain_fifo():
    sim = Simulator()
    ch = Channel(sim)
    for item in range(N_WAITERS):
        ch.put(item)
    got = []

    def consumer():
        for _ in range(N_WAITERS):
            item = yield from ch.get()
            got.append(item)

    Task(sim, consumer())
    sim.run()
    assert got == list(range(N_WAITERS))


def test_semaphore_many_waiters_fifo():
    sim = Simulator()
    sem = Semaphore(sim, 0)
    served = []

    def worker(tag):
        yield from sem.acquire()
        served.append(tag)

    for tag in range(N_WAITERS):
        Task(sim, worker(tag))
    for k in range(N_WAITERS):
        sim.schedule(1.0 + k, sem.release)
    sim.run()
    assert served == list(range(N_WAITERS))


def test_semaphore_staggered_arrival_order_wins():
    # Waiters that arrive later (even with a smaller tag) queue behind
    # earlier arrivals.
    sim = Simulator()
    sem = Semaphore(sim, 0)
    served = []

    def worker(tag, arrive):
        yield Delay(arrive)
        yield from sem.acquire()
        served.append(tag)

    arrivals = [(tag, float(N_WAITERS - tag)) for tag in range(N_WAITERS)]
    for tag, arrive in arrivals:
        Task(sim, worker(tag, arrive))

    def release_all():
        for _ in range(N_WAITERS):
            sem.release()

    sim.schedule(1000.0, release_all)
    sim.run()
    assert served == [tag for tag, _ in sorted(arrivals, key=lambda p: p[1])]
