"""Setup shim for environments without PEP-517 build isolation (offline).

All real metadata lives in pyproject.toml; this file only enables legacy
``pip install -e . --no-use-pep517`` / ``python setup.py develop`` installs
on machines that lack the ``wheel`` package.
"""

from setuptools import setup

setup()
