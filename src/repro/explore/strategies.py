"""Search strategies over the schedule space.

A *strategy* produces one :class:`~repro.explore.schedule.ScheduleSource`
per run and learns from the recorded outcome:

- :class:`RandomWalkStrategy` — independent uniformly-random choices,
  seeded; the baseline searcher and surprisingly strong for shallow
  ordering bugs.
- :class:`PCTStrategy` — PCT-style probabilistic concurrency testing
  (Burckhardt et al.): each scheduling actor gets a random priority,
  the highest-priority ready candidate runs, and at ``d`` pre-drawn
  change points the running actor's priority drops to the bottom.
  Gives probabilistic coverage guarantees for bugs of depth ``d``.
- :class:`DFSStrategy` — bounded depth-first enumeration of the choice
  tree with a sleep-set-lite filter: at a given tree position,
  alternatives whose label/key was already explored under another index
  are skipped (commuting deliveries produce the same state), and choice
  points whose ``branch_hint`` is False (e.g. a lag choice with no other
  in-flight traffic to the same destination, which cannot reorder
  anything) are not branched at all.

The strategy protocol is three members: ``begin_run(i)`` returns the
source for run ``i``; ``observe(schedule, outcome)`` feeds back the
recorded run; ``exhausted`` is True once the strategy has nothing new
to propose (only DFS ever exhausts).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.sim.engine import ChoicePoint

from repro.explore.schedule import (
    DEFAULT_LAG_SLACK,
    DEFAULT_LAG_STEPS,
    ScheduleSource,
)

__all__ = [
    "DFSStrategy",
    "PCTSource",
    "PCTStrategy",
    "RandomWalkSource",
    "RandomWalkStrategy",
]


# --------------------------------------------------------------------- #
# Random walk
# --------------------------------------------------------------------- #

class RandomWalkSource(ScheduleSource):
    """Uniformly random choice at every point, from a seeded stream."""

    def __init__(self, seed: int, lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self._rng = random.Random(seed)
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    def choose(self, point: ChoicePoint) -> int:
        return self._rng.randrange(point.n)


class RandomWalkStrategy:
    """One independent random walk per run, seeds derived from a base
    seed so the whole search is reproducible."""

    name = "random-walk"

    def __init__(self, seed: int = 0, lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self.seed = seed
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    def begin_run(self, i: int) -> RandomWalkSource:
        return RandomWalkSource(seed=(self.seed << 20) + i,
                                lag_steps=self.lag_steps,
                                lag_slack=self.lag_slack)

    def observe(self, schedule, outcome) -> None:
        pass

    @property
    def exhausted(self) -> bool:
        return False


# --------------------------------------------------------------------- #
# PCT
# --------------------------------------------------------------------- #

class PCTSource(ScheduleSource):
    """Priority-based scheduling with ``d`` change points.

    "ready" choice points are decided by actor priority: each distinct
    candidate label gets a random priority on first sight, the
    highest-priority candidate wins, and at each of ``d`` pre-drawn
    scheduling steps the chosen actor's priority is demoted below all
    others.  Non-"ready" domains (transport lag) fall back to the same
    random stream, so PCT also perturbs delivery timing.
    """

    def __init__(self, seed: int, change_points: int = 3,
                 horizon: int = 1000,
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self._rng = random.Random(seed)
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack
        self._priority: dict = {}
        self._floor = 0.0  # demoted priorities stack below this
        self._step = 0
        # distinct change steps drawn over the expected run length
        horizon = max(horizon, change_points + 1)
        self._change_steps = set(
            self._rng.sample(range(1, horizon), min(change_points,
                                                    horizon - 1)))

    def _priority_of(self, label: str) -> float:
        pr = self._priority.get(label)
        if pr is None:
            # new actors land in (0, 1); demotions go ever more negative
            pr = self._priority[label] = self._rng.random()
        return pr

    def choose(self, point: ChoicePoint) -> int:
        if point.domain != "ready":
            return self._rng.randrange(point.n)
        self._step += 1
        labels = point.labels or tuple(f"#{i}" for i in range(point.n))
        best = max(range(point.n),
                   key=lambda i: (self._priority_of(labels[i]), -i))
        if self._step in self._change_steps:
            self._floor -= 1.0
            self._priority[labels[best]] = self._floor
        return best


class PCTStrategy:
    """Fresh priorities and change points every run."""

    name = "pct"

    def __init__(self, seed: int = 0, change_points: int = 3,
                 horizon: int = 1000,
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self.seed = seed
        self.change_points = change_points
        self.horizon = horizon
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    def begin_run(self, i: int) -> PCTSource:
        return PCTSource(seed=(self.seed << 20) + i,
                         change_points=self.change_points,
                         horizon=self.horizon,
                         lag_steps=self.lag_steps,
                         lag_slack=self.lag_slack)

    def observe(self, schedule, outcome) -> None:
        pass

    @property
    def exhausted(self) -> bool:
        return False


# --------------------------------------------------------------------- #
# Bounded DFS with sleep-set-lite filtering
# --------------------------------------------------------------------- #

class _PathSource(ScheduleSource):
    """Forces a fixed choice prefix, then answers 0 (baseline) beyond
    it, while noting what each point along the path looked like so the
    DFS can decide where to branch next."""

    def __init__(self, path: Sequence[int],
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self._path = list(path)
        self._pos = 0
        self.points: List[ChoicePoint] = []
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    def choose(self, point: ChoicePoint) -> int:
        self.points.append(point)
        pos = self._pos
        self._pos = pos + 1
        if pos < len(self._path):
            return min(self._path[pos], point.n - 1)
        return 0


class _Frame:
    """One depth level of the DFS: the choice point seen there on the
    current path, which alternative the path takes, and which commute
    keys have already been explored at this position (sleep set)."""

    __slots__ = ("n", "choice", "labels", "branchable", "tried_keys")

    def __init__(self, point: ChoicePoint, choice: int):
        self.n = point.n
        self.choice = choice
        self.labels = point.labels
        # Points flagged as non-reordering (branch_hint False) and
        # single-alternative points never branch.
        self.branchable = point.branch_hint and point.n > 1
        self.tried_keys = {self._key(choice)}

    def _key(self, idx: int):
        # Alternatives with the same label commute at this position —
        # delivering either first reaches the same state, so exploring
        # one suffices (the "lite" part of sleep sets: labels rather
        # than a full happens-before analysis).
        if self.labels and idx < len(self.labels):
            return self.labels[idx]
        return idx

    def next_choice(self) -> Optional[int]:
        """The next unexplored, non-commuting alternative, or None."""
        if not self.branchable:
            return None
        for idx in range(self.choice + 1, self.n):
            key = self._key(idx)
            if key in self.tried_keys:
                continue
            self.tried_keys.add(key)
            return idx
        return None


class DFSStrategy:
    """Bounded depth-first enumeration of the choice tree.

    Explores paths in order: baseline first, then backtracking from the
    deepest branchable frame within ``max_depth``.  ``exhausted`` goes
    True once every in-bound branch (modulo the commuting filter) has
    been visited — on small programs this makes the search *complete*
    up to the bound.
    """

    name = "dfs"

    def __init__(self, max_depth: int = 25,
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self.max_depth = max_depth
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack
        self._stack: List[_Frame] = []
        self._next_path: Optional[List[int]] = []  # [] = baseline run
        self._source: Optional[_PathSource] = None

    def begin_run(self, i: int) -> _PathSource:
        if self._next_path is None:
            raise RuntimeError("DFS exhausted; check .exhausted first")
        self._source = _PathSource(self._next_path,
                                   lag_steps=self.lag_steps,
                                   lag_slack=self.lag_slack)
        return self._source

    def observe(self, schedule, outcome) -> None:
        source = self._source
        self._source = None
        path = self._next_path
        # Grow the stack with the frames this run revealed past the
        # forced prefix (bounded by max_depth).
        del self._stack[len(path):]
        for depth in range(len(self._stack), len(source.points)):
            if depth >= self.max_depth:
                break
            point = source.points[depth]
            taken = path[depth] if depth < len(path) else 0
            self._stack.append(_Frame(point, min(taken, point.n - 1)))
        # Backtrack: deepest frame with an untried alternative.
        while self._stack:
            frame = self._stack[-1]
            nxt = frame.next_choice()
            if nxt is not None:
                frame.choice = nxt
                self._next_path = [f.choice for f in self._stack]
                return
            self._stack.pop()
        self._next_path = None

    @property
    def exhausted(self) -> bool:
        return self._next_path is None
