"""The explorer: drive strategies over a target, record, minimize.

A *target* is a callable ``target(source) -> RunOutcome`` that builds a
fresh machine, runs one simulation under the given schedule source and
classifies the result.  :func:`make_spmd_target` builds one from an SPMD
kernel with full oracle integration — task failures, deadlocks,
liveness-watchdog stalls, race reports from the happens-before detector
and app-level invariants all count as "failing".

:class:`Explorer` runs a strategy under a schedule budget, recording
every run into a :class:`~repro.explore.schedule.Schedule`; the first
failing schedule is minimized with :func:`minimize_schedule` (a
ddmin-flavoured two-phase shrink: binary-search the shortest failing
prefix, then zero non-default choices in shrinking chunks) and
re-verified by strict replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.sim.engine import LivenessError, SimulationError
from repro.sim.tasks import TaskFailed
from repro.net.transport import RetryExhaustedError
from repro.runtime.program import DeadlockError, Machine

from repro.explore.schedule import (
    ChoiceRecord,
    RecordingSource,
    ReplaySource,
    Schedule,
    ScheduleSource,
)

__all__ = [
    "Explorer",
    "ExplorationReport",
    "Finding",
    "RunOutcome",
    "check_replay_determinism",
    "make_spmd_target",
    "minimize_schedule",
]


@dataclass
class RunOutcome:
    """Classified result of one run under a schedule source."""

    failed: bool
    kind: str              # "ok" | "invariant" | "race" | "liveness" |
                           # "deadlock" | "task" | "error" | "budget"
    message: str
    fingerprint: str       # sha256 over stats/results/failure — replay
                           # determinism means identical schedules give
                           # identical fingerprints
    sim_time: float = 0.0
    fault_picks: Optional[dict] = None  # {menu key: chosen label}, from
                                        # FaultPlan.resolved_faults()

    def to_json(self) -> dict:
        out = {"failed": self.failed, "kind": self.kind,
               "message": self.message, "fingerprint": self.fingerprint,
               "sim_time": self.sim_time}
        if self.fault_picks:
            out["fault_picks"] = self.fault_picks
        return out


def _outcome_fingerprint(machine: Optional[Machine], results: Any,
                         kind: str, message: str) -> str:
    """A stable digest of everything observable about the run.  Mirrors
    the fingerprint style of tests/sim/test_determinism.py: stats dict,
    final virtual time (exact bits via hex), results repr, plus the
    failure classification."""
    payload = {
        "kind": kind,
        "message": message,
        "results": repr(results),
    }
    if machine is not None:
        payload["stats"] = machine.stats.as_dict()
        payload["now"] = machine.sim.now.hex()
        if machine.racecheck is not None:
            payload["races"] = [str(r) for r in machine.racecheck.races]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def make_spmd_target(kernel: Callable, n_images: int, *,
                     setup: Optional[Callable] = None,
                     args: tuple = (), params=None, seed: int = 0,
                     faults=None, racecheck: bool = False,
                     invariant: Optional[Callable] = None,
                     failure_detection=None,
                     max_events: Optional[int] = 200_000) -> Callable:
    """Build a ``target(source) -> RunOutcome`` around an SPMD kernel.

    Each call constructs a fresh :class:`Machine` (cloning ``faults`` so
    per-run state never leaks between schedules), runs the kernel under
    ``source``, and classifies the outcome.  ``invariant(machine,
    results)`` may return an error string (or raise AssertionError) to
    flag an application-level violation; ``failure_detection`` is passed
    through to the machine (heartbeat detectors, so kernels exercising
    crash menus can observe suspicions); ``max_events`` bounds runaway
    schedules — hitting the budget is classified ``"budget"`` and *not*
    counted as a failure (an adversarial schedule can always starve
    progress; that is a liveness question, not this bug's).
    """

    def target(source: ScheduleSource) -> RunOutcome:
        plan = faults.clone() if faults is not None else None
        machine = Machine(n_images, params=params, seed=seed, faults=plan,
                          racecheck=racecheck, schedule=source,
                          failure_detection=failure_detection)
        if setup is not None:
            setup(machine)
        machine.launch(kernel, args=args)
        results: Any = None
        kind, message = "ok", ""
        try:
            results = machine.run(max_events=max_events)
        except LivenessError as exc:
            kind, message = "liveness", str(exc)
        except DeadlockError as exc:
            kind, message = "deadlock", str(exc)
        except TaskFailed as exc:
            kind, message = "task", str(exc)
        except RetryExhaustedError as exc:
            kind, message = "error", str(exc)
        except SimulationError as exc:
            if "max_events" in str(exc):
                kind, message = "budget", str(exc)
            else:
                kind, message = "error", str(exc)
        if kind == "ok":
            if machine.racecheck is not None and machine.racecheck.races:
                kind = "race"
                message = str(machine.racecheck.races[0])
            elif invariant is not None:
                try:
                    verdict = invariant(machine, results)
                except AssertionError as exc:
                    verdict = str(exc) or "invariant violated"
                if verdict:
                    kind, message = "invariant", str(verdict)
        failed = kind not in ("ok", "budget")
        return RunOutcome(
            failed=failed, kind=kind, message=message,
            fingerprint=_outcome_fingerprint(machine, results, kind,
                                             message),
            sim_time=machine.sim.now,
            fault_picks=(plan.resolved_faults() if plan is not None
                         else None) or None,
        )

    # The plan's config rides on the target so the explorer can stamp it
    # into every recorded Schedule: a schedule artifact then carries
    # everything needed to rebuild the run (program aside) — fault menus
    # included, since their "fault" choice points live in the recorded
    # sequence itself (DESIGN §10 × §12).
    target.fault_config = (faults.to_config() if faults is not None
                           else None)
    return target


@dataclass
class Finding:
    """One distinct failure a search produced: the failing schedule,
    its outcome, the minimized reproduction, and the dedup identity
    ``(kind, fingerprint)`` — the outcome kind plus the choice-tree
    fingerprint of the *minimized* schedule, so two runs that shrink to
    the same essential core count as one finding."""

    schedule: Schedule
    outcome: RunOutcome
    minimized: Optional[Schedule] = None
    found_at: Optional[int] = None

    @property
    def kind(self) -> str:
        return self.outcome.kind

    @property
    def fingerprint(self) -> str:
        return (self.minimized or self.schedule).fingerprint()

    @property
    def identity(self) -> tuple:
        return (self.kind, self.fingerprint)

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "found_at": self.found_at,
            "outcome": self.outcome.to_json(),
            "schedule_len": len(self.schedule),
            "minimized_len": (len(self.minimized)
                              if self.minimized else None),
        }


@dataclass
class ExplorationReport:
    """What one strategy's search produced."""

    strategy: str
    schedules_run: int
    found: bool
    found_at: Optional[int] = None          # 0-based run index
    schedule: Optional[Schedule] = None     # first failing schedule
    outcome: Optional[RunOutcome] = None
    minimized: Optional[Schedule] = None
    findings: List[Finding] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "strategy": self.strategy,
            "schedules_run": self.schedules_run,
            "found": self.found,
            "found_at": self.found_at,
            "outcome": self.outcome.to_json() if self.outcome else None,
            "schedule_len": len(self.schedule) if self.schedule else None,
            "minimized_len": (len(self.minimized)
                              if self.minimized else None),
            "minimized_nonzero": (self.minimized.nonzero_choices()
                                  if self.minimized else None),
            "findings": [f.to_json() for f in self.findings],
        }


class Explorer:
    """Run a search strategy against a target under a schedule budget."""

    def __init__(self, target: Callable, budget: int = 500,
                 minimize: bool = True, minimize_budget: int = 200):
        self.target = target
        self.budget = budget
        self.minimize = minimize
        self.minimize_budget = minimize_budget

    def run_strategy(self, strategy, stop_on_first: bool = True,
                     max_findings: Optional[int] = None
                     ) -> ExplorationReport:
        """Run up to ``budget`` schedules from ``strategy``.

        With ``stop_on_first=True`` (default) the search stops at the
        first failure, minimizing it if configured.  With
        ``stop_on_first=False`` it keeps exploring, collecting every
        *distinct* failure — deduped by :attr:`Finding.identity`, i.e.
        outcome kind plus the minimized schedule's choice-tree
        fingerprint — until the budget, the strategy, or
        ``max_findings`` runs out.  The service loop uses this mode to
        harvest several bugs from one sweep.
        """
        name = getattr(strategy, "name", type(strategy).__name__)
        runs = 0
        findings: List[Finding] = []
        seen_identities: set = set()
        for i in range(self.budget):
            if strategy.exhausted:
                break
            if max_findings is not None and len(findings) >= max_findings:
                break
            inner = strategy.begin_run(i)
            recorder = RecordingSource(inner)
            outcome = self.target(recorder)
            runs += 1
            schedule = Schedule(
                recorder.records,
                meta={"strategy": name, "run": i},
                fault_plan=getattr(self.target, "fault_config", None),
                outcome=outcome.to_json(),
                lag_steps=recorder.lag_steps,
                lag_slack=recorder.lag_slack,
            )
            strategy.observe(schedule, outcome)
            if not outcome.failed:
                continue
            minimized = None
            if self.minimize:
                minimized = minimize_schedule(
                    self.target, schedule, budget=self.minimize_budget)
            finding = Finding(schedule=schedule, outcome=outcome,
                              minimized=minimized, found_at=i)
            if finding.identity in seen_identities:
                continue
            seen_identities.add(finding.identity)
            findings.append(finding)
            if stop_on_first:
                break
        if findings:
            first = findings[0]
            return ExplorationReport(
                strategy=name, schedules_run=runs, found=True,
                found_at=first.found_at, schedule=first.schedule,
                outcome=first.outcome, minimized=first.minimized,
                findings=findings,
            )
        return ExplorationReport(
            strategy=name, schedules_run=runs, found=False,
        )


def _replays_failure(target: Callable, records: List[ChoiceRecord],
                     schedule: Schedule, kind: str) -> Optional[RunOutcome]:
    """Probe a candidate choice sequence (lenient replay — mutated
    prefixes may change what the run asks); return the outcome if it
    still fails the same way."""
    source = ReplaySource(records, strict=False,
                          lag_steps=schedule.lag_steps,
                          lag_slack=schedule.lag_slack)
    outcome = target(source)
    if outcome.failed and outcome.kind == kind:
        return outcome
    return None


def minimize_schedule(target: Callable, schedule: Schedule,
                      budget: int = 200) -> Schedule:
    """Shrink a failing schedule toward a near-minimal choice prefix.

    Two phases, both preserving "fails with the same kind":

    1. *prefix binary search* — the shortest prefix that still fails
       (recall a prefix is a complete schedule: replay answers 0 past
       its end, so this also canonicalizes the tail to baseline);
    2. *ddmin zeroing* — try resetting contiguous chunks of the
       remaining non-default choices to 0, halving the chunk size on
       failure to make progress, until no single choice can be zeroed.

    The result is re-recorded under strict-replay semantics so the
    emitted artifact contains exactly the choice points its own replay
    will ask, then verified to fail identically.
    """
    kind = (schedule.outcome or {}).get("kind")
    if kind is None:
        raise ValueError("schedule has no recorded failing outcome")
    best = list(schedule.records)
    spent = 0

    # Phase 1: shortest failing prefix, by bisection on the length.
    lo, hi = 0, len(best)          # invariant: prefix of hi fails
    while lo < hi and spent < budget:
        mid = (lo + hi) // 2
        spent += 1
        if _replays_failure(target, best[:mid], schedule, kind):
            hi = mid
        else:
            lo = mid + 1
    best = best[:hi]

    # Phase 2: zero out non-default choices, ddmin-style.
    chunk = max(1, len(best) // 2)
    while spent < budget:
        progress = False
        i = 0
        while i < len(best) and spent < budget:
            window = range(i, min(i + chunk, len(best)))
            touched = [j for j in window if best[j].choice != 0]
            if not touched:
                i += chunk
                continue
            candidate = list(best)
            for j in touched:
                candidate[j] = candidate[j].replace(0)
            spent += 1
            if _replays_failure(target, candidate, schedule, kind):
                best = candidate
                progress = True
            i += chunk
        if not progress:
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)

    # Re-record under the minimized sequence so the artifact's choice
    # points exactly match what strict replay will encounter.
    recorder = RecordingSource(ReplaySource(
        best, strict=False, lag_steps=schedule.lag_steps,
        lag_slack=schedule.lag_slack))
    outcome = target(recorder)
    if not (outcome.failed and outcome.kind == kind):
        # Shrinking artifacts should never un-fail the re-recording —
        # but if lenient clamping interacted badly, fall back to the
        # original schedule rather than emit a non-reproducing artifact.
        recorder = RecordingSource(ReplaySource(
            schedule.records, strict=False, lag_steps=schedule.lag_steps,
            lag_slack=schedule.lag_slack))
        outcome = target(recorder)
    return Schedule(
        recorder.records,
        meta=dict(schedule.meta, minimized=True,
                  original_len=len(schedule.records),
                  probes=spent),
        fault_plan=schedule.fault_plan,
        outcome=outcome.to_json(),
        lag_steps=schedule.lag_steps,
        lag_slack=schedule.lag_slack,
    )


def check_replay_determinism(target: Callable, schedule: Schedule,
                             times: int = 2) -> bool:
    """Strict-replay ``schedule`` ``times`` times; True iff every run
    reproduces the recorded fingerprint (the §10 invariant)."""
    want = (schedule.outcome or {}).get("fingerprint")
    for _ in range(times):
        outcome = target(schedule.source(strict=True))
        if want is not None and outcome.fingerprint != want:
            return False
        want = outcome.fingerprint
    return True
