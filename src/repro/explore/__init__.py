"""Schedule-space exploration (DESIGN.md §10).

Systematic concurrency testing for the simulated CAF 2.0 runtime: the
engine's hidden nondeterminism (same-instant scheduling ties, per-link
delivery lag) becomes explicit choice points driven by a
:class:`ScheduleSource`; strategies search over choice sequences,
failures are recorded into replayable :class:`Schedule` artifacts and
shrunk to near-minimal repros.
"""

from repro.explore.schedule import (
    ChoiceRecord,
    DefaultSource,
    RecordingSource,
    ReplayDivergence,
    ReplaySource,
    Schedule,
    ScheduleSource,
    as_schedule_source,
)
from repro.explore.strategies import (
    DFSStrategy,
    PCTSource,
    PCTStrategy,
    RandomWalkSource,
    RandomWalkStrategy,
)
from repro.explore.explorer import (
    ExplorationReport,
    Explorer,
    Finding,
    RunOutcome,
    check_replay_determinism,
    make_spmd_target,
    minimize_schedule,
)

__all__ = [
    "ChoiceRecord",
    "DFSStrategy",
    "DefaultSource",
    "ExplorationReport",
    "Explorer",
    "Finding",
    "PCTSource",
    "PCTStrategy",
    "RandomWalkSource",
    "RandomWalkStrategy",
    "RecordingSource",
    "ReplayDivergence",
    "ReplaySource",
    "RunOutcome",
    "Schedule",
    "ScheduleSource",
    "as_schedule_source",
    "check_replay_determinism",
    "make_spmd_target",
    "minimize_schedule",
]
