"""The coverage-guided schedule×fault fuzzing service (DESIGN.md §15).

Orchestration: a pool of OS-process workers (``multiprocessing``), each
running the same *fuzz loop* against its own freshly-built target.
Replay determinism (a run is a pure function of program, seed, fault
plan and choice sequence) is what makes this fleet mergeable: a worker
result is just schedules + a feature map, and the parent can re-verify
any claim by replaying the artifact.

The fuzz loop per run:

1. pick an input — a *seed run* from the configured strategy
   (RandomWalk or PCT) while the corpus warms up, afterwards mostly a
   *mutation* of a corpus entry (rarity-weighted parent selection,
   :mod:`mutate` operators, directed fault-menu bumps toward untried
   alternatives);
2. execute under a :class:`RecordingSource`, extract coverage features
   from the recorded stream (:mod:`coverage`);
3. novel features ⇒ the schedule joins the corpus as a mutation parent;
   a *new fault context* (first time a given resolution of the fault
   menus is seen) additionally queues a deterministic **burst**: one
   raise-to-max mutation per delivery-lag key of the new entry, so
   every fault context gets its obvious channel-wide lag pushes tried
   immediately instead of waiting on random mutator luck;
4. failures are queued; the parent minimizes (ddmin), strictly
   re-verifies replay determinism, dedups by (kind, minimized
   fingerprint) and writes each survivor to the findings directory.

``workers=0`` runs the same loop inline — single process, fully
deterministic for a given seed — which is what the acceptance tests
use; ``workers=N`` fans rounds of ``sync_every`` schedules out to the
pool and merges between rounds (coverage merge is commutative, the
corpus is fingerprint-keyed, so the merged state does not depend on
arrival order).
"""

from __future__ import annotations

import importlib
import multiprocessing
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set

from repro.explore.explorer import (
    check_replay_determinism,
    minimize_schedule,
)
from repro.explore.schedule import (
    DEFAULT_LAG_SLACK,
    DEFAULT_LAG_STEPS,
    RecordingSource,
    ReplaySource,
    Schedule,
)
from repro.explore.strategies import PCTStrategy, RandomWalkStrategy
from repro.explore.fuzz.corpus import Corpus, CorpusEntry, FindingStore
from repro.explore.fuzz.coverage import CoverageMap, features
from repro.explore.fuzz.mutate import mutate_records

__all__ = ["FuzzConfig", "FuzzFinding", "FuzzReport", "FuzzService",
           "TargetSpec"]


@dataclass
class TargetSpec:
    """A picklable recipe for building a target in a worker process:
    ``factory`` is ``"package.module:callable"``; the callable is
    invoked with ``kwargs`` and must return a
    :func:`make_spmd_target`-style ``target(source) -> RunOutcome``.
    Keeping construction in the worker sidesteps pickling machines,
    fault plans and closures."""

    factory: str
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def build(self) -> Callable:
        mod_name, _, attr = self.factory.partition(":")
        if not attr:
            raise ValueError(
                f"target factory {self.factory!r} must look like "
                f"'package.module:callable'")
        factory = getattr(importlib.import_module(mod_name), attr)
        return factory(**self.kwargs)

    def to_json(self) -> dict:
        return {"factory": self.factory, "kwargs": dict(self.kwargs)}

    @classmethod
    def from_json(cls, data: dict) -> "TargetSpec":
        return cls(factory=data["factory"],
                   kwargs=dict(data.get("kwargs", {})))


@dataclass
class FuzzConfig:
    """Service knobs.  ``budget`` is the total schedule count across
    all workers; ``lag_steps``/``lag_slack`` set the delivery-lag
    quantization of the search space (both the seed strategies and
    mutation replays use them, so every searcher faces the same
    space)."""

    budget: int = 2000
    workers: int = 0
    seed: int = 0
    seed_runs: int = 8            # strategy-driven runs before mutating
    mutation_bias: float = 0.8
    seed_strategy: str = "random-walk"   # or "pct"
    max_findings: Optional[int] = None
    minimize_budget: int = 300
    sync_every: int = 50          # per-worker schedules per round
    verify_replays: int = 2
    lag_steps: int = DEFAULT_LAG_STEPS
    lag_slack: float = DEFAULT_LAG_SLACK


@dataclass
class FuzzFinding:
    """One verified, deduplicated failure."""

    kind: str
    message: str
    fingerprint: str              # minimized choice-tree fingerprint
    found_at: int                 # total schedules spent at discovery
    verified: bool
    path: Optional[str] = None    # findings-dir artifact, if persistent
    minimized: Optional[Schedule] = None

    def to_json(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "fingerprint": self.fingerprint,
                "found_at": self.found_at, "verified": self.verified,
                "path": self.path,
                "minimized_len": (len(self.minimized)
                                  if self.minimized else None)}


@dataclass
class FuzzReport:
    """What one service run produced."""

    schedules_run: int
    findings: List[FuzzFinding]
    corpus_size: int
    coverage_features: int
    elapsed: float
    workers: int

    @property
    def found(self) -> bool:
        return bool(self.findings)

    @property
    def first_find_at(self) -> Optional[int]:
        return min((f.found_at for f in self.findings), default=None)

    @property
    def schedules_per_sec(self) -> float:
        return self.schedules_run / self.elapsed if self.elapsed else 0.0

    def to_json(self) -> dict:
        return {"schedules_run": self.schedules_run,
                "findings": [f.to_json() for f in self.findings],
                "corpus_size": self.corpus_size,
                "coverage_features": self.coverage_features,
                "elapsed": self.elapsed, "workers": self.workers,
                "first_find_at": self.first_find_at,
                "schedules_per_sec": round(self.schedules_per_sec, 1)}


def _make_strategy(name: str, seed: int, lag_steps: int,
                   lag_slack: float):
    if name == "pct":
        return PCTStrategy(seed=seed, lag_steps=lag_steps,
                           lag_slack=lag_slack)
    if name == "random-walk":
        return RandomWalkStrategy(seed=seed, lag_steps=lag_steps,
                                  lag_slack=lag_slack)
    raise ValueError(f"unknown seed strategy {name!r}")


def _pick_parent(corpus: Corpus, coverage: CoverageMap,
                 rng: random.Random) -> CorpusEntry:
    """Rarity-weighted parent selection over the (sorted) corpus."""
    entries = list(corpus)
    weights = [coverage.rarity(e.feats) + 1e-9 for e in entries]
    total = sum(weights)
    mark = rng.random() * total
    acc = 0.0
    for entry, w in zip(entries, weights):
        acc += w
        if mark <= acc:
            return entry
    return entries[-1]


def _burst_candidates(entry: CorpusEntry) -> List[List]:
    """The deterministic burst for a new fault context: every lag key
    of the entry raised to max, one candidate per key (sorted)."""
    keys = sorted({r.key for r in entry.schedule.records
                   if r.domain == "lag" and r.key and r.n > 1})
    out = []
    for key in keys:
        recs = [r.replace(r.n - 1)
                if (r.domain == "lag" and r.key == key) else r
                for r in entry.schedule.records]
        out.append(recs)
    return out


def _fuzz_segment(target: Callable, config: FuzzConfig,
                  snapshot: CoverageMap, corpus: Corpus,
                  rng: random.Random, strategy, budget: int,
                  run_index_start: int, fault_config,
                  pending_bursts: List[List]) -> dict:
    """Run ``budget`` schedules, mutating ``corpus`` and
    ``pending_bursts`` in place.  Novelty is judged against
    ``snapshot`` plus this segment's own local map; the local map is
    returned for the caller to merge (commutatively) into the global
    one."""
    local = CoverageMap()
    failures: List[Schedule] = []
    fail_offsets: List[int] = []
    new_schedules: List[Schedule] = []
    runs = 0
    for i in range(budget):
        run_index = run_index_start + i
        label = "mutation"
        if pending_bursts:
            records = pending_bursts.pop(0)
            source = ReplaySource(records, strict=False,
                                  lag_steps=config.lag_steps,
                                  lag_slack=config.lag_slack)
            label = "burst"
        elif (len(corpus) > 0 and run_index >= config.seed_runs
                and rng.random() < config.mutation_bias):
            parent = _pick_parent(corpus, snapshot, rng)
            untried = snapshot.fault_untried(parent.schedule.records)
            records = mutate_records(parent.schedule.records, rng,
                                     fault_untried=untried)
            source = ReplaySource(records, strict=False,
                                  lag_steps=parent.schedule.lag_steps,
                                  lag_slack=parent.schedule.lag_slack)
        else:
            source = strategy.begin_run(run_index)
            label = strategy.name
        recorder = RecordingSource(source)
        outcome = target(recorder)
        runs += 1
        schedule = Schedule(
            recorder.records,
            meta={"strategy": label, "run": run_index},
            fault_plan=fault_config, outcome=outcome.to_json(),
            lag_steps=recorder.lag_steps,
            lag_slack=recorder.lag_slack)
        feats = features(recorder.records)
        novel = {f for f in feats if f not in snapshot and f not in local}
        local.observe(feats)
        if novel:
            entry = corpus.add(schedule, feats)
            if entry is not None:
                new_schedules.append(schedule)
                if any(f.startswith("ctx|") for f in novel):
                    pending_bursts.extend(_burst_candidates(entry))
        if outcome.failed:
            failures.append(schedule)
            fail_offsets.append(i)
    return {"runs": runs, "local": local, "failures": failures,
            "fail_offsets": fail_offsets, "new_schedules": new_schedules}


def _pool_worker(payload: dict) -> dict:
    """Entry point executed in a worker process.  Everything crossing
    the boundary is JSON-shaped."""
    spec = TargetSpec.from_json(payload["spec"])
    config = FuzzConfig(**payload["config"])
    target = spec.build()
    snapshot = CoverageMap.from_json(payload["coverage"])
    corpus = Corpus()
    for doc in payload["corpus"]:
        corpus.add(Schedule.from_json(doc))
    rng = random.Random(payload["rng_seed"])
    strategy = _make_strategy(config.seed_strategy,
                              payload["strategy_seed"],
                              config.lag_steps, config.lag_slack)
    result = _fuzz_segment(
        target, config, snapshot, corpus, rng, strategy,
        payload["budget"], payload["run_index_start"],
        getattr(target, "fault_config", None), [])
    return {
        "runs": result["runs"],
        "coverage": result["local"].to_json(),
        "failures": [s.to_json() for s in result["failures"]],
        "fail_offsets": result["fail_offsets"],
        "new_schedules": [s.to_json() for s in result["new_schedules"]],
    }


class FuzzService:
    """Coverage-guided fuzzing over one target spec.

    Parameters
    ----------
    spec:
        The :class:`TargetSpec` to fuzz.
    config:
        Service knobs (:class:`FuzzConfig`).
    corpus_dir / findings_dir:
        Optional persistence roots.  An existing corpus directory is
        loaded and continues to grow (resumable fuzzing; merging a
        colleague's corpus is :meth:`Corpus.merge_dir`); findings are
        written as self-contained minimized schedule JSON.
    """

    def __init__(self, spec: TargetSpec,
                 config: Optional[FuzzConfig] = None,
                 corpus_dir: Optional[str] = None,
                 findings_dir: Optional[str] = None):
        self.spec = spec
        self.config = config or FuzzConfig()
        self.corpus = Corpus(corpus_dir)
        self.corpus.load()
        self.findings_store = FindingStore(findings_dir)
        self.findings_store.load()
        self.coverage = CoverageMap()
        for entry in self.corpus:
            self.coverage.observe(entry.feats)

    # -- failure processing -------------------------------------------- #

    def _process_failure(self, target: Callable, schedule: Schedule,
                         found_at: int,
                         findings: List[FuzzFinding]) -> None:
        if (self.config.max_findings is not None
                and len(findings) >= self.config.max_findings):
            return
        kind = (schedule.outcome or {}).get("kind", "unknown")
        message = (schedule.outcome or {}).get("message", "")
        minimized = minimize_schedule(target, schedule,
                                      budget=self.config.minimize_budget)
        verified = check_replay_determinism(
            target, minimized, times=self.config.verify_replays)
        if not verified:
            # A finding that does not replay deterministically would
            # poison the findings directory; record it unverified but
            # never persist it.
            findings.append(FuzzFinding(
                kind=kind, message=message,
                fingerprint=minimized.fingerprint(), found_at=found_at,
                verified=False, minimized=minimized))
            return
        path = self.findings_store.add(kind, minimized)
        if path is None:
            return                # duplicate identity
        findings.append(FuzzFinding(
            kind=kind, message=message,
            fingerprint=minimized.fingerprint(), found_at=found_at,
            verified=True, path=path or None, minimized=minimized))

    # -- main loop ----------------------------------------------------- #

    def run(self) -> FuzzReport:
        cfg = self.config
        target = self.spec.build()
        fault_config = getattr(target, "fault_config", None)
        findings: List[FuzzFinding] = []
        total_runs = 0
        started = time.monotonic()

        if cfg.workers <= 0:
            rng = random.Random(cfg.seed * 1_000_003 + 1)
            strategy = _make_strategy(cfg.seed_strategy, cfg.seed,
                                      cfg.lag_steps, cfg.lag_slack)
            pending: List[List] = []
            while total_runs < cfg.budget:
                if (cfg.max_findings is not None
                        and len(findings) >= cfg.max_findings):
                    break
                chunk = min(cfg.sync_every, cfg.budget - total_runs)
                result = _fuzz_segment(
                    target, cfg, self.coverage, self.corpus, rng,
                    strategy, chunk, total_runs, fault_config, pending)
                self.coverage.merge(result["local"])
                for sched, off in zip(result["failures"],
                                      result["fail_offsets"]):
                    self._process_failure(target, sched,
                                          total_runs + off + 1, findings)
                total_runs += result["runs"]
        else:
            total_runs = self._run_pool(target, findings)

        elapsed = time.monotonic() - started
        return FuzzReport(
            schedules_run=total_runs, findings=findings,
            corpus_size=len(self.corpus),
            coverage_features=len(self.coverage),
            elapsed=elapsed, workers=cfg.workers)

    def _run_pool(self, target: Callable,
                  findings: List[FuzzFinding]) -> int:
        cfg = self.config
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        total_runs = 0
        run_index = [0] * cfg.workers    # per-worker strategy counters
        round_no = 0
        with ctx.Pool(processes=cfg.workers) as pool:
            while total_runs < cfg.budget:
                if (cfg.max_findings is not None
                        and len(findings) >= cfg.max_findings):
                    break
                remaining = cfg.budget - total_runs
                per_worker = [min(cfg.sync_every,
                                  max(0, remaining - w * cfg.sync_every))
                              for w in range(cfg.workers)]
                payloads = []
                corpus_docs = [e.schedule.to_json() for e in self.corpus]
                coverage_doc = self.coverage.to_json()
                for w, budget in enumerate(per_worker):
                    if budget <= 0:
                        continue
                    payloads.append({
                        "spec": self.spec.to_json(),
                        "config": vars(cfg),
                        "coverage": coverage_doc,
                        "corpus": corpus_docs,
                        "budget": budget,
                        "rng_seed": (cfg.seed * 1_000_003
                                     + w * 10_007 + round_no * 101 + 1),
                        "strategy_seed": cfg.seed + 7919 * (w + 1),
                        "run_index_start": run_index[w],
                    })
                results = pool.map(_pool_worker, payloads)
                # Merge in worker order: coverage merge is commutative
                # and the corpus is fingerprint-keyed, so the merged
                # state is order-independent; iterating in a fixed
                # order just makes the *report* deterministic too.
                for w, res in enumerate(results):
                    total_runs += res["runs"]
                    run_index[w] += res["runs"]
                    self.coverage.merge(
                        CoverageMap.from_json(res["coverage"]))
                    for doc in res["new_schedules"]:
                        self.corpus.add(Schedule.from_json(doc))
                    for doc, off in zip(res["failures"],
                                        res["fail_offsets"]):
                        self._process_failure(
                            target, Schedule.from_json(doc),
                            total_runs, findings)
                round_no += 1
        return total_runs
