"""On-disk corpus and findings store for the fuzzing service.

A *corpus* is a directory of interesting :class:`Schedule` artifacts —
runs that produced novel coverage — deduped by choice-tree fingerprint
(:meth:`Schedule.fingerprint`: a digest of exactly what replay
consumes).  Entries are plain schedule JSON named ``<fingerprint>.json``
so corpora from different workers/machines merge by file union; because
replay determinism makes a schedule a pure function of its choice
sequence, the merged corpus replays identically no matter which worker
contributed which entry or in what order they merged.

A *findings* directory holds verified failures: minimized schedules
(with their fault-plan config and recorded outcome embedded) named
``<kind>-<fingerprint12>.json``.  The pair (outcome kind, minimized
fingerprint) is the dedup identity — two runs that shrink to the same
essential core are one finding.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Set

from repro.explore.schedule import Schedule
from repro.explore.fuzz.coverage import features

__all__ = ["Corpus", "CorpusEntry", "FindingStore"]


class CorpusEntry:
    """One corpus member: the schedule plus its (recomputed) feature
    set.  Features are derived from the records, not stored — the
    derivation is deterministic, so recomputation on load cannot drift
    from what the recording worker saw."""

    __slots__ = ("schedule", "fingerprint", "feats")

    def __init__(self, schedule: Schedule,
                 feats: Optional[Set[str]] = None):
        self.schedule = schedule
        self.fingerprint = schedule.fingerprint()
        self.feats = feats if feats is not None else features(
            schedule.records)

    def __repr__(self) -> str:
        return (f"<CorpusEntry {self.fingerprint[:12]} "
                f"len={len(self.schedule)} feats={len(self.feats)}>")


class Corpus:
    """Fingerprint-keyed schedule collection, optionally persistent.

    With ``root`` set, every accepted entry is written to
    ``root/<fingerprint>.json`` immediately and :meth:`load` /
    :meth:`merge_dir` pick entries back up.  Iteration order is always
    sorted by fingerprint, so anything derived from a scan of the
    corpus is independent of insertion and filesystem order.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root
        self.entries: Dict[str, CorpusEntry] = {}
        if root:
            os.makedirs(root, exist_ok=True)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __iter__(self):
        for fp in sorted(self.entries):
            yield self.entries[fp]

    def add(self, schedule: Schedule,
            feats: Optional[Set[str]] = None) -> Optional[CorpusEntry]:
        """Insert unless an entry with the same fingerprint exists.
        Returns the new entry, or None on dedup."""
        entry = CorpusEntry(schedule, feats)
        if entry.fingerprint in self.entries:
            return None
        self.entries[entry.fingerprint] = entry
        if self.root:
            schedule.save(os.path.join(self.root,
                                       f"{entry.fingerprint}.json"))
        return entry

    def load(self) -> int:
        """Load every ``*.json`` under ``root`` not already in memory.
        Returns the number of entries added."""
        if not self.root or not os.path.isdir(self.root):
            return 0
        return self._ingest_dir(self.root)

    def merge_dir(self, other_root: str) -> int:
        """Union another corpus directory into this one (persisting the
        new entries if this corpus has a root).  Merge is idempotent
        and commutative: the result is keyed by fingerprint only."""
        return self._ingest_dir(other_root)

    def _ingest_dir(self, directory: str) -> int:
        added = 0
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".json"):
                continue
            fp_hint = name[:-len(".json")]
            if fp_hint in self.entries:
                continue
            schedule = Schedule.load(os.path.join(directory, name))
            if self.add(schedule) is not None:
                added += 1
        return added

    def fingerprints(self) -> List[str]:
        return sorted(self.entries)


class FindingStore:
    """Verified-failure artifacts, deduped by (kind, fingerprint).

    ``add`` writes the minimized schedule JSON (which embeds the
    outcome and the fault-plan config, so the file alone replays) as
    ``<kind>-<fingerprint12>.json`` and returns the path, or None if
    the identity was already present.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = root
        self.seen: Set[tuple] = set()
        if root:
            os.makedirs(root, exist_ok=True)

    def __len__(self) -> int:
        return len(self.seen)

    def add(self, kind: str, schedule: Schedule) -> Optional[str]:
        identity = (kind, schedule.fingerprint())
        if identity in self.seen:
            return None
        self.seen.add(identity)
        if not self.root:
            return ""
        path = os.path.join(self.root, f"{kind}-{identity[1][:12]}.json")
        schedule.save(path)
        return path

    def load(self) -> int:
        """Prime the dedup set from artifacts already on disk."""
        if not self.root or not os.path.isdir(self.root):
            return 0
        added = 0
        for name in sorted(os.listdir(self.root)):
            if not name.endswith(".json"):
                continue
            schedule = Schedule.load(os.path.join(self.root, name))
            kind = (schedule.outcome or {}).get("kind", "unknown")
            identity = (kind, schedule.fingerprint())
            if identity not in self.seen:
                self.seen.add(identity)
                added += 1
        return added
