"""Coverage-guided schedule×fault fuzzing service (DESIGN.md §15).

Layers: :mod:`coverage` (the novelty signal over recorded choice
streams), :mod:`corpus` (fingerprint-keyed on-disk schedule corpus and
findings store), :mod:`mutate` (structure-aware choice-sequence
mutators), :mod:`service` (the worker-pool orchestration loop).
"""

from repro.explore.fuzz.coverage import CoverageMap, fault_digest, features
from repro.explore.fuzz.corpus import Corpus, CorpusEntry, FindingStore
from repro.explore.fuzz.mutate import mutate_records
from repro.explore.fuzz.service import (
    FuzzConfig,
    FuzzFinding,
    FuzzReport,
    FuzzService,
    TargetSpec,
)

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FindingStore",
    "FuzzConfig",
    "FuzzFinding",
    "FuzzReport",
    "FuzzService",
    "TargetSpec",
    "fault_digest",
    "features",
    "mutate_records",
]
