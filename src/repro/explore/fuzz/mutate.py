"""Mutators over recorded choice sequences.

A corpus entry is a list of :class:`ChoiceRecord`; a mutation is a new
choice list fed back through lenient replay (divergence past the edit
is fine — the run re-records itself).  The mutators are structure-aware
in the cheap sense: they read each record's *domain* and *key*, nothing
about the application.

The two directed mutators carry most of the search:

- ``bump_fault`` rewrites one ``"fault"`` record to a menu alternative
  the coverage map has never seen, so the fault menus are swept
  systematically (≈ one run per alternative) instead of waiting on the
  birthday odds of random draws;
- ``raise_key_group`` picks one delivery-lag key and raises *every*
  record of that key — the per-message lags of one logical channel
  (e.g. all the done-posts of a completion protocol) usually conspire,
  and pushing the whole group crosses windows that individual flips
  approach only stepwise.

The rest are classic havoc: single-point tweaks, span zeroing,
truncation.  All randomness flows through the caller's ``rng`` so a
fuzzing run is a pure function of its seed.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.explore.schedule import ChoiceRecord

__all__ = ["mutate_records"]


def _replace(records: List[ChoiceRecord], i: int,
             choice: int) -> List[ChoiceRecord]:
    out = list(records)
    out[i] = out[i].replace(choice)
    return out


def _indices(records: Sequence[ChoiceRecord], domain: str) -> List[int]:
    return [i for i, r in enumerate(records) if r.domain == domain]


def bump_fault(records: List[ChoiceRecord], rng: random.Random,
               fault_untried: Dict[int, List[int]]
               ) -> Optional[List[ChoiceRecord]]:
    """Rewrite one fault record to an untried menu alternative."""
    positions = sorted(fault_untried)
    if not positions:
        return None
    i = positions[rng.randrange(len(positions))]
    choices = fault_untried[i]
    return _replace(records, i, choices[rng.randrange(len(choices))])


def raise_key_group(records: List[ChoiceRecord],
                    rng: random.Random) -> Optional[List[ChoiceRecord]]:
    """Raise every lag record of one key to its maximum (or bump all
    by one) — move a whole logical channel at once."""
    keys = sorted({r.key for r in records
                   if r.domain == "lag" and r.key and r.n > 1})
    if not keys:
        return None
    key = keys[rng.randrange(len(keys))]
    to_max = rng.random() < 0.5
    out = list(records)
    for i, r in enumerate(out):
        if r.domain == "lag" and r.key == key:
            out[i] = r.replace(r.n - 1 if to_max
                               else min(r.choice + 1, r.n - 1))
    return out


def tweak_points(records: List[ChoiceRecord], rng: random.Random,
                 domain: str) -> Optional[List[ChoiceRecord]]:
    """Randomize one to three records of ``domain``."""
    idx = [i for i in _indices(records, domain) if records[i].n > 1]
    if not idx:
        return None
    out = list(records)
    for _ in range(rng.randrange(1, 4)):
        i = idx[rng.randrange(len(idx))]
        out[i] = out[i].replace(rng.randrange(out[i].n))
    return out


def zero_span(records: List[ChoiceRecord],
              rng: random.Random) -> Optional[List[ChoiceRecord]]:
    """Reset a contiguous span to the baseline choice 0."""
    if not records:
        return None
    lo = rng.randrange(len(records))
    hi = min(len(records), lo + 1 + rng.randrange(8))
    out = list(records)
    for i in range(lo, hi):
        if out[i].choice != 0:
            out[i] = out[i].replace(0)
    return out


def truncate(records: List[ChoiceRecord],
             rng: random.Random) -> Optional[List[ChoiceRecord]]:
    """Keep a prefix; replay answers baseline past the end."""
    if len(records) < 2:
        return None
    return list(records[:rng.randrange(1, len(records))])


def havoc(records: List[ChoiceRecord],
          rng: random.Random) -> Optional[List[ChoiceRecord]]:
    """Independent rerolls with small probability per record."""
    if not records:
        return None
    out = list(records)
    for i, r in enumerate(out):
        if r.n > 1 and rng.random() < 0.08:
            out[i] = r.replace(rng.randrange(r.n))
    return out


def mutate_records(records: Sequence[ChoiceRecord], rng: random.Random,
                   fault_untried: Optional[Dict[int, List[int]]] = None
                   ) -> List[ChoiceRecord]:
    """One mutation of ``records``.  The directed fault bump runs
    whenever untried menu alternatives remain (sweeping the menus is
    always the best value); otherwise a weighted pick of the generic
    mutators, falling back across them until one applies."""
    records = list(records)
    if fault_untried and rng.random() < 0.8:
        out = bump_fault(records, rng, fault_untried)
        if out is not None:
            return out
    weighted = (
        [raise_key_group] * 3
        + [lambda r, g: tweak_points(r, g, "lag")] * 3
        + [lambda r, g: tweak_points(r, g, "ready")] * 2
        + [havoc] * 2
        + [zero_span]
        + [truncate]
    )
    start = rng.randrange(len(weighted))
    for off in range(len(weighted)):
        out = weighted[(start + off) % len(weighted)](records, rng)
        if out is not None:
            return out
    return records
