"""Coverage signal for schedule×fault fuzzing (DESIGN.md §15).

Code coverage is useless here — every schedule executes the same
simulator code.  What distinguishes runs is the *shape of the recorded
choice stream*: which choice points were asked (their domain/key
identity), what was answered, how often each keyed point occurred, and
in what order.  This module turns a recorded choice sequence into a set
of string *features*; the fuzzing service calls a run *novel* when it
produces a feature never seen before, and keeps its schedule in the
corpus as a mutation parent.

Feature classes (all plain strings; every digest is ``hashlib`` so the
map is byte-identical under ``PYTHONHASHSEED`` variation):

``u|domain|key|choice``
    A choice-point answer, identified by the point's stable key (lag
    and fault points) or domain (ready points).  Covering a new fault
    menu alternative — a crash time never tried — is novel by
    construction, which is what makes the menu a *searchable* axis.

``s|domain|key|choice|fault``
    The same unigram salted with a digest of the run's resolved fault
    choices.  A delivery-lag answer that was boring under one crash
    time is fresh coverage under another, so the lag ladder re-opens
    for every fault context instead of being burned globally on the
    first decoy.

``kc|key|count`` and ``sc|key|count|fault``
    Occurrence counts per point key (exact up to 9, then ``9+``),
    plain and fault-salted.  Recovery re-execution, retries and other
    control-flow consequences of a partially-reached conjunction show
    up as *more records of some key* long before an invariant trips —
    this is the staircase the corpus climbs.

``b|key|choice|key|choice``
    Adjacent keyed-record bigrams: local ordering structure.

``p|k|digest``
    Truncated prefix hashes of the (domain, key, choice) stream at a
    few geometric depths — distinguishes early-divergence runs.

``ctx|fault``
    The fault context on its own.  Its first appearance marks "a menu
    resolution never tried before", which the service uses to trigger
    the deterministic per-channel burst.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Set

__all__ = ["CoverageMap", "fault_digest", "features"]

#: Prefix depths for ``p|…`` features.
PREFIX_DEPTHS = (4, 8, 16, 32, 64)

#: Occurrence counts are exact up to this, then lumped into "N+".
COUNT_CAP = 9


def _h(text: str, n: int = 12) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:n]


def fault_digest(records: Sequence) -> str:
    """Digest of the run's resolved fault choices — the *fault context*
    used to salt lag/count features.  Fault choice points are resolved
    at machine construction, so they are a stable prefix of the stream;
    sorting by key makes the digest order-independent anyway."""
    picks = sorted((r.key or "", r.choice) for r in records
                   if r.domain == "fault")
    if not picks:
        return "nofault"
    return _h(";".join(f"{k}={c}" for k, c in picks), 8)


def _bucket(count: int) -> str:
    return str(count) if count < COUNT_CAP else f"{COUNT_CAP}+"


def features(records: Sequence) -> Set[str]:
    """The feature set of one recorded run (see module docstring)."""
    salt = fault_digest(records)
    feats: Set[str] = {f"ctx|{salt}"}   # the fault context itself
    counts: Dict[str, int] = {}
    prev_keyed: Optional[tuple] = None
    stream = hashlib.sha256()
    depth_iter = iter(PREFIX_DEPTHS)
    next_depth = next(depth_iter, None)

    for i, rec in enumerate(records):
        key = rec.key or ""
        feats.add(f"u|{rec.domain}|{key}|{rec.choice}")
        if rec.domain != "ready":
            feats.add(f"s|{rec.domain}|{key}|{rec.choice}|{salt}")
        if key:
            counts[key] = counts.get(key, 0) + 1
            if prev_keyed is not None:
                feats.add(f"b|{prev_keyed[0]}|{prev_keyed[1]}"
                          f"|{key}|{rec.choice}")
            prev_keyed = (key, rec.choice)
        stream.update(f"{rec.domain},{key},{rec.choice};".encode())
        if next_depth is not None and i + 1 == next_depth:
            feats.add(f"p|{next_depth}|{stream.hexdigest()[:12]}")
            next_depth = next(depth_iter, None)

    for key, count in counts.items():
        feats.add(f"kc|{key}|{_bucket(count)}")
        feats.add(f"sc|{key}|{_bucket(count)}|{salt}")
    return feats


class CoverageMap:
    """Seen-feature counts, mergeable across workers.

    ``observe`` returns the subset of features that are new — the
    novelty signal.  ``merge`` sums counts, so merging worker maps is
    commutative and associative: the merged map does not depend on
    merge order.  Serialization sorts keys, so two maps with equal
    contents produce byte-identical JSON regardless of insertion order
    or hash seed.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None):
        self.counts: Dict[str, int] = dict(counts or {})

    def __len__(self) -> int:
        return len(self.counts)

    def __contains__(self, feat: str) -> bool:
        return feat in self.counts

    def observe(self, feats: Iterable[str]) -> Set[str]:
        new: Set[str] = set()
        for f in feats:
            if f not in self.counts:
                new.add(f)
                self.counts[f] = 1
            else:
                self.counts[f] += 1
        return new

    def novel(self, feats: Iterable[str]) -> Set[str]:
        """Like :meth:`observe` but read-only."""
        return {f for f in feats if f not in self.counts}

    def rarity(self, feats: Iterable[str]) -> float:
        """Energy signal: the sum of inverse seen-counts — schedules
        whose features are rare get more mutation attention."""
        return sum(1.0 / self.counts.get(f, 1) for f in feats)

    def merge(self, other: "CoverageMap") -> None:
        for f, c in other.counts.items():
            self.counts[f] = self.counts.get(f, 0) + c

    # -- serialization ------------------------------------------------- #

    def to_json(self) -> dict:
        return {"counts": {k: self.counts[k]
                           for k in sorted(self.counts)}}

    @classmethod
    def from_json(cls, data: dict) -> "CoverageMap":
        return cls(counts=data.get("counts", {}))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=0, sort_keys=True)

    @classmethod
    def load(cls, path) -> "CoverageMap":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    def fault_untried(self, records: Sequence) -> Dict[int, List[int]]:
        """For each ``"fault"`` record position in ``records``, the menu
        alternatives never seen anywhere — the directed fault-bump
        mutator's worklist."""
        out: Dict[int, List[int]] = {}
        for i, rec in enumerate(records):
            if rec.domain != "fault":
                continue
            key = rec.key or ""
            untried = [c for c in range(rec.n)
                       if f"u|fault|{key}|{c}" not in self.counts]
            if untried:
                out[i] = untried
        return out
