"""Schedules: recordable, replayable choice sequences.

The simulator and the transport expose their nondeterminism as
:class:`~repro.sim.engine.ChoicePoint` queries against a *schedule
source* (DESIGN.md §10).  This module defines the source protocol and
the machinery that makes choice sequences first-class artifacts:

- :class:`ScheduleSource` — the protocol base: ``choose(point) -> int``
  plus the ``lag_steps``/``lag_slack`` knobs the transport reads;
- :class:`DefaultSource` — always chooses 0, i.e. the baseline
  (insertion-order ties, nominal wire latency) schedule;
- :class:`RecordingSource` — wraps any source and records every decision
  as a :class:`ChoiceRecord`;
- :class:`Schedule` — the serialized artifact: the recorded choice
  sequence, the fault-plan configuration that was in force, run
  metadata, and the observed outcome.  Round-trips through JSON;
- :class:`ReplaySource` — replays a schedule's choices.  Strict replay
  verifies the run asks the very same questions (same domain, same
  alternative count at every point) and raises
  :class:`ReplayDivergence` otherwise; lenient replay clamps, which is
  what lets the minimizer probe mutated choice sequences.

The replay-determinism invariant: a run is a pure function of
(program, machine seed, fault plan, choice sequence).  Replaying a
recorded schedule therefore reproduces the original execution bit for
bit — same stats, same virtual time, same failure.
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from repro.sim.engine import ChoicePoint

__all__ = [
    "ChoiceRecord",
    "DefaultSource",
    "SCHEDULE_SCHEMA",
    "RecordingSource",
    "ReplayDivergence",
    "ReplaySource",
    "Schedule",
    "ScheduleSource",
    "as_schedule_source",
]

SCHEDULE_VERSION = 1

#: Schema generation of the JSON artifact layout.  Bumped when the
#: document gains fields older readers must not silently drop.  Loading
#: is *forward-compatible within a generation*: documents written by a
#: newer minor revision (same or lower ``schema``) load fine; documents
#: from a future generation (higher ``schema``) are refused with a
#: clear error instead of being misread.
SCHEDULE_SCHEMA = 2

#: Default number of discrete delivery-lag alternatives per transmission.
DEFAULT_LAG_STEPS = 3
#: Default maximum extra delivery delay, as a fraction of wire latency.
#: Generous enough that the last lag step reorders a message behind the
#: two that follow it on the same link (injection gaps are ~o_send,
#: far below a latency).
DEFAULT_LAG_SLACK = 0.8


class ScheduleSource:
    """Protocol base for schedule sources.

    ``choose`` receives a :class:`~repro.sim.engine.ChoicePoint` and
    must return an alternative index in ``[0, point.n)``.  ``lag_steps``
    and ``lag_slack`` parameterize the transport's lag choice points and
    are part of the schedule's identity (they change the timing a given
    choice maps to), so :class:`Schedule` records them and
    :class:`ReplaySource` restores them.
    """

    lag_steps: int = DEFAULT_LAG_STEPS
    lag_slack: float = DEFAULT_LAG_SLACK

    def choose(self, point: ChoicePoint) -> int:
        raise NotImplementedError


class DefaultSource(ScheduleSource):
    """The canonical schedule: alternative 0 everywhere — insertion-order
    tie-breaks and nominal wire latency, i.e. exactly the baseline
    engine's behavior."""

    def choose(self, point: ChoicePoint) -> int:
        return 0


class ChoiceRecord:
    """One recorded decision: what was asked (domain, n, identity) and
    what was answered.  ``labels``/``key``/``branch_hint`` are carried
    for the search strategies (commuting-choice filter) and for humans
    reading schedule files; replay only needs (domain, n, choice)."""

    __slots__ = ("domain", "n", "choice", "labels", "key", "branch_hint")

    def __init__(self, domain: str, n: int, choice: int,
                 labels: Sequence[str] = (), key: Optional[str] = None,
                 branch_hint: bool = True):
        self.domain = domain
        self.n = n
        self.choice = choice
        self.labels = tuple(labels)
        self.key = key
        self.branch_hint = branch_hint

    def replace(self, choice: int) -> "ChoiceRecord":
        return ChoiceRecord(self.domain, self.n, choice, self.labels,
                            self.key, self.branch_hint)

    def to_json(self) -> dict:
        out = {"d": self.domain, "n": self.n, "c": self.choice}
        if self.labels:
            out["labels"] = list(self.labels)
        if self.key is not None:
            out["key"] = self.key
        if not self.branch_hint:
            out["commutes"] = True
        return out

    @classmethod
    def from_json(cls, data: dict) -> "ChoiceRecord":
        return cls(data["d"], data["n"], data["c"],
                   labels=data.get("labels", ()),
                   key=data.get("key"),
                   branch_hint=not data.get("commutes", False))

    def __repr__(self) -> str:
        return (f"ChoiceRecord({self.domain!r}, n={self.n}, "
                f"choice={self.choice})")

    def __eq__(self, other) -> bool:
        return (isinstance(other, ChoiceRecord)
                and self.domain == other.domain and self.n == other.n
                and self.choice == other.choice)


class RecordingSource(ScheduleSource):
    """Wraps any source and records every decision it makes.  The lag
    parameters are taken from the wrapped source (they are what the
    transport will actually see)."""

    def __init__(self, inner: ScheduleSource):
        self.inner = inner
        self.lag_steps = inner.lag_steps
        self.lag_slack = inner.lag_slack
        self.records: List[ChoiceRecord] = []

    def choose(self, point: ChoicePoint) -> int:
        choice = self.inner.choose(point)
        self.records.append(ChoiceRecord(
            point.domain, point.n, choice, labels=point.labels,
            key=point.key, branch_hint=point.branch_hint))
        return choice


class ReplayDivergence(RuntimeError):
    """Strict replay met a choice point the recording does not match:
    the run asked a different question (domain or alternative count)
    than the schedule answered at this position.  Almost always means
    the program, seed, fault plan or lag parameters differ from the
    recording run."""


class ReplaySource(ScheduleSource):
    """Feeds back a recorded choice sequence.

    Parameters
    ----------
    records:
        The choice sequence (possibly a truncated or mutated prefix).
    strict:
        True — verify domain and alternative count at every point and
        raise :class:`ReplayDivergence` on mismatch (the replay-
        determinism guarantee).  False — best effort: clamp the recorded
        choice into range, which the minimizer relies on when probing
        schedules whose prefix changes what the run asks next.
    lag_steps / lag_slack:
        Must match the recording run for replay to be meaningful;
        :meth:`Schedule.source` passes the recorded values.

    Past the end of the recording the source answers 0 (baseline), so a
    schedule *prefix* is itself a complete schedule.
    """

    def __init__(self, records: Sequence[ChoiceRecord], strict: bool = True,
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self._records = list(records)
        self._strict = strict
        self._pos = 0
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    @property
    def position(self) -> int:
        """Choice points consumed so far (diagnostic)."""
        return self._pos

    def choose(self, point: ChoicePoint) -> int:
        pos = self._pos
        self._pos = pos + 1
        if pos >= len(self._records):
            return 0
        rec = self._records[pos]
        if rec.domain != point.domain or rec.n != point.n:
            if self._strict:
                raise ReplayDivergence(
                    f"replay diverged at choice {pos}: run asked "
                    f"({point.domain!r}, n={point.n}), schedule recorded "
                    f"({rec.domain!r}, n={rec.n})"
                )
            return min(max(rec.choice, 0), point.n - 1)
        choice = rec.choice
        if not 0 <= choice < point.n:
            if self._strict:
                raise ReplayDivergence(
                    f"replay diverged at choice {pos}: recorded choice "
                    f"{choice} out of range for n={point.n}"
                )
            return min(max(choice, 0), point.n - 1)
        return choice


class Schedule:
    """A replayable schedule: the choice sequence of one run, plus
    everything else needed to reproduce it (fault-plan config, lag
    parameters, run metadata) and what it led to (outcome).

    Serializes to a small JSON document — the artifact the explorer
    emits for a found bug.
    """

    def __init__(self, records: Sequence[ChoiceRecord],
                 meta: Optional[dict] = None,
                 fault_plan: Optional[dict] = None,
                 outcome: Optional[dict] = None,
                 lag_steps: int = DEFAULT_LAG_STEPS,
                 lag_slack: float = DEFAULT_LAG_SLACK):
        self.records = list(records)
        self.meta = dict(meta or {})
        self.fault_plan = fault_plan
        self.outcome = outcome
        self.lag_steps = lag_steps
        self.lag_slack = lag_slack

    # -- derived ------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self.records)

    def nonzero_choices(self) -> int:
        """Decisions that deviate from the baseline schedule — the
        minimizer drives this toward the bug's essential core."""
        return sum(1 for r in self.records if r.choice != 0)

    def choices(self) -> List[int]:
        return [r.choice for r in self.records]

    def source(self, strict: bool = True) -> ReplaySource:
        """A source that replays this schedule."""
        return ReplaySource(self.records, strict=strict,
                            lag_steps=self.lag_steps,
                            lag_slack=self.lag_slack)

    def fingerprint(self) -> str:
        """Choice-tree fingerprint: a digest of exactly what replay
        consumes — the (domain, n, choice) triple at every position plus
        the lag parameters.  Two schedules with equal fingerprints replay
        identically, so this is the corpus/findings dedup key."""
        import hashlib
        h = hashlib.sha256()
        h.update(f"lag:{self.lag_steps}:{self.lag_slack!r};".encode())
        for r in self.records:
            h.update(f"{r.domain},{r.n},{r.choice};".encode())
        return h.hexdigest()

    # -- serialization ------------------------------------------------- #

    def to_json(self) -> dict:
        return {
            "version": SCHEDULE_VERSION,
            "schema": SCHEDULE_SCHEMA,
            "meta": self.meta,
            "lag_steps": self.lag_steps,
            "lag_slack": self.lag_slack,
            "fault_plan": self.fault_plan,
            "outcome": self.outcome,
            "choices": [r.to_json() for r in self.records],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Schedule":
        version = data.get("version")
        if version != SCHEDULE_VERSION:
            raise ValueError(f"unsupported schedule version {version!r}")
        schema = data.get("schema", 1)   # pre-schema artifacts are gen 1
        if not isinstance(schema, int) or schema > SCHEDULE_SCHEMA:
            raise ValueError(
                f"schedule artifact written by a newer schema generation "
                f"({schema!r} > supported {SCHEDULE_SCHEMA}); refusing to "
                f"load it with fields silently dropped")
        return cls(
            records=[ChoiceRecord.from_json(r) for r in data["choices"]],
            meta=data.get("meta"),
            fault_plan=data.get("fault_plan"),
            outcome=data.get("outcome"),
            lag_steps=data.get("lag_steps", DEFAULT_LAG_STEPS),
            lag_slack=data.get("lag_slack", DEFAULT_LAG_SLACK),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1)

    @classmethod
    def load(cls, path) -> "Schedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(json.load(fh))

    def __repr__(self) -> str:
        failed = (self.outcome or {}).get("failed")
        return (f"<Schedule {len(self.records)} choices "
                f"({self.nonzero_choices()} non-default), "
                f"failed={failed}>")


def as_schedule_source(schedule) -> ScheduleSource:
    """Coerce what ``Machine(schedule=...)`` accepts into a source:
    a :class:`Schedule` becomes a strict :class:`ReplaySource`; any
    object with a ``choose`` method passes through."""
    if isinstance(schedule, Schedule):
        return schedule.source(strict=True)
    if hasattr(schedule, "choose"):
        return schedule
    raise TypeError(
        f"schedule must be a Schedule or a ScheduleSource, got "
        f"{type(schedule).__name__}"
    )
