"""The CAF 2.0 runtime: images, teams, coarrays, events, locks, and the
relaxed memory model's bookkeeping."""

from repro.runtime.team import Team
from repro.runtime.coarray import Coarray, CoarrayRef, ImageSection
from repro.runtime.event import EventVar, EventRef
from repro.runtime.lock import LockVar
from repro.runtime.memory_model import (
    Activation,
    PendingOp,
    ReorderOracle,
    READ,
    WRITE,
    ANY,
)
from repro.runtime.failure import (
    FailureConfig,
    FailureService,
    ImageFailureError,
)
from repro.runtime.image import Image, ImageState
from repro.runtime.program import DeadlockError, Machine, run_spmd

__all__ = [
    "FailureConfig",
    "FailureService",
    "ImageFailureError",
    "Team",
    "Coarray",
    "CoarrayRef",
    "ImageSection",
    "EventVar",
    "EventRef",
    "LockVar",
    "Activation",
    "PendingOp",
    "ReorderOracle",
    "READ",
    "WRITE",
    "ANY",
    "Image",
    "ImageState",
    "DeadlockError",
    "Machine",
    "run_spmd",
]
