"""Machine assembly and SPMD program launch.

:class:`Machine` wires the whole stack together — simulator, network,
active messages, GASNet layer, registries for teams / coarrays / events /
locks, finish frames and collective states — and owns the services the
core operation modules call into.

:func:`run_spmd` is the main entry point::

    def kernel(img):
        yield from img.barrier()
        return img.rank

    machine, results = run_spmd(kernel, n_images=8)

Every image runs ``kernel`` as its main activation; ``results[i]`` is the
kernel's return value on image i, and ``machine`` exposes the simulated
clock, statistics and busy-time accounting the benchmark harness reads.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.sim.engine import LivenessError, Simulator
from repro.sim.rng import RngPool
from repro.sim.tasks import Task
from repro.sim.trace import IntervalAccumulator, Stats
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.net.transport import Network
from repro.net.flowcontrol import CreditManager
from repro.net.active_messages import AMCategory, AMLayer
from repro.net.gasnet import Gasnet
from repro.runtime.coarray import Coarray
from repro.runtime.event import EventRef, EventVar
from repro.runtime.image import Image, ImageState
from repro.runtime.lock import LockVar
from repro.runtime.memory_model import Activation
from repro.runtime.team import Team

_EVENT_POST = "event.post"


def _member_key(members) -> tuple:
    """Hashable interning key for a team membership.  Ranges key by
    endpoints (tagged so a 2-member tuple can never collide) instead of
    expanding to a p-wide tuple."""
    if isinstance(members, range):
        return ("r", members.start, members.stop)
    return tuple(members)


class DeadlockError(RuntimeError):
    """The event queue drained while SPMD main programs were blocked."""


class Machine:
    """One simulated distributed machine running the CAF 2.0 runtime."""

    def __init__(self, n_images: int, params: Optional[MachineParams] = None,
                 seed: int = 0, tracer=None,
                 faults: Optional[FaultPlan] = None,
                 racecheck: bool = False, schedule=None,
                 failure_detection=None, backend: str = "sim",
                 conduit=None, local_ranks: Optional[Sequence[int]] = None):
        if params is None:
            params = MachineParams.uniform(n_images)
        if params.n_images != n_images:
            raise ValueError(
                f"params describe {params.n_images} images, asked for "
                f"{n_images}"
            )
        if backend not in ("sim", "process"):
            raise ValueError(
                f"backend must be 'sim' or 'process', got {backend!r}")
        #: execution substrate: "sim" (deterministic single-threaded
        #: oracle) or "process" (this Machine is one worker of a real
        #: multi-process run; see repro.backend)
        self.backend = backend
        if backend == "process":
            if conduit is None or local_ranks is None:
                raise ValueError(
                    "backend='process' machines are built by the process "
                    "launcher (repro.backend.parallel) with a conduit and "
                    "their local rank set; use run_spmd(..., "
                    "backend='process') or ProcessRunner")
            for feature, flag in (("fault injection", faults is not None),
                                  ("race checking", racecheck),
                                  ("schedule exploration",
                                   schedule is not None)):
                if flag:
                    raise ValueError(
                        f"{feature} requires the deterministic simulator "
                        "(backend='sim')")
            #: world ranks whose main programs THIS process runs
            self.local_ranks: Sequence[int] = tuple(sorted(local_ranks))
        else:
            self.local_ranks = range(n_images)
        self.n_images = n_images
        self.params = params
        self.seed = seed
        if backend == "process":
            from repro.backend.realtime import RealtimeScheduler

            self.sim = RealtimeScheduler()
        else:
            self.sim = Simulator()
        self.stats = Stats()
        self.tracer = tracer
        if tracer is not None:
            tracer.label_tracks(n_images)
        # rng streams: one per image, plus one for network jitter and one
        # for fault injection (SeedSequence children are independent of
        # pool size, so the extra stream leaves image streams untouched)
        self.rng_pool = RngPool(seed, n_images + 2)
        self.faults = faults
        if faults is not None and faults.seed is None:
            faults.bind(self.rng_pool[n_images + 1])
        if backend == "process":
            from repro.backend.transport import ProcessTransport

            self.network = ProcessTransport(self.sim, params,
                                            stats=self.stats,
                                            conduit=conduit)
        else:
            self.network = Network(self.sim, params, stats=self.stats,
                                   jitter_rng=self.rng_pool[n_images],
                                   tracer=tracer, faults=faults, seed=seed)
        #: schedule-exploration source (DESIGN.md §10), or None.  When
        #: installed, same-instant tie-breaks and delivery lags become
        #: explicit choice points driven by the source; with None the
        #: engine's canonical deterministic order is untouched.
        self.schedule_source = None
        if schedule is not None:
            from repro.explore.schedule import as_schedule_source

            source = as_schedule_source(schedule)
            self.schedule_source = source
            self.sim.set_schedule_source(source)
            self.network.schedule_source = source
        if backend == "sim":
            # A drained queue is meaningful only in virtual time; a
            # wall-clock worker is merely idle between messages.
            self.sim.add_drain_hook(self._liveness_check)
        credits = None
        if params.flow_credits is not None:
            credits = CreditManager(
                self.sim, params.flow_credits,
                stall_penalty=params.flow_stall_penalty,
                scope=params.flow_credit_scope,
                stats=self.stats,
            )
        self.credits = credits
        self.am = AMLayer(self.network, credit_manager=credits)
        if backend == "process":
            # The transport unpickles inbound frames against this
            # machine's registries and dispatches through the AM layer.
            self.network.bind(self)
        self.gasnet = Gasnet(self.am)
        self.busy = IntervalAccumulator(n_images)

        #: world ranks killed by fail-stop crash injection (ground truth;
        #: survivors only learn of a death through the failure detector)
        self.dead_images: set[int] = set()
        #: ground-truth crash times, {rank: sim time} — the detector's
        #: quality metrics (suspect/confirm latency) measure against this
        self.dead_at: dict[int, float] = {}
        #: heartbeat failure detector, or None (crashes then wedge the
        #: machine and surface through the liveness watchdog instead)
        self.failure = None
        if failure_detection:
            from repro.runtime.failure import FailureConfig, FailureService

            config = (failure_detection
                      if isinstance(failure_detection, FailureConfig)
                      else FailureConfig())
            self.failure = FailureService(self, config)
        self._failure_started = False
        # Crash scripts: scheduled kills and send-count triggers.  Fault
        # *menus* (crash_choice / partition_choice) resolve against the
        # schedule source first, so crash and partition timing live in
        # the same recorded choice sequence as message ordering.
        self.network.on_crash = self.kill_image
        if faults is not None:
            faults.resolve_choices(self.schedule_source)
            for image, t_crash in sorted(faults.scheduled_crashes().items()):
                self.sim.schedule_at(t_crash, self.kill_image, image)

        # Team ids are allocated per machine (not from Team's process-wide
        # fallback counter) so back-to-back runs in one process produce
        # identical ids in finish-frame keys, AM payloads and traces.
        self.team_world = Team(range(n_images), team_id=0)
        self._team_ids = itertools.count(1)
        self._teams: dict[int, Team] = {self.team_world.id: self.team_world}
        self._teams_by_members: dict[tuple, Team] = {
            _member_key(self.team_world.members): self.team_world
        }
        # Per-rank state is materialized on first touch: a machine built
        # for 8192+ images only pays for the ranks that actually run or
        # communicate (weak-scaling, DESIGN.md §13).
        self._image_states: dict[int, ImageState] = {}
        self._coarrays: dict[str, Coarray] = {}
        self._events: dict[str, EventVar] = {}
        self._locks: dict[str, LockVar] = {}
        self._frames: dict[tuple, Any] = {}
        self._coll_states: dict[tuple, Any] = {}
        #: open dictionary for cross-module transient state (copy tokens,
        #: detector scratch, lock grants, ...)
        self.scratch: dict = {}
        self._tokens = itertools.count(1)
        self._op_ids = itertools.count()
        # Spawn identity stream for recovery idempotency keys; separate
        # from _op_ids so enabling the ledger never shifts op ids (which
        # appear in traces and race reports).  In process mode each
        # worker strides by n_images from its own rank, so ids stay
        # globally unique without coordination (the dedup registry at an
        # executor must distinguish every spawner's spawns).
        if backend == "process":
            self._spawn_ids = itertools.count(self.local_ranks[0], n_images)
        else:
            self._spawn_ids = itertools.count()
        self._main_tasks: list[Task] = []

        #: happens-before race detector, or None (the default — every
        #: instrumentation hook is guarded by one `is None` test, so a
        #: disabled run pays nothing)
        self.racecheck = None
        if racecheck:
            from repro.analysis.racecheck import RaceDetector
            self.racecheck = RaceDetector(self)

        self.am.ensure_registered(_EVENT_POST, self._handle_event_post)
        if backend == "process":
            self._register_remote_handlers()

    def _register_remote_handlers(self) -> None:
        """Eagerly register every AM handler family.

        Under the simulator lazy registration is safe: the first caller
        anywhere registers a handler on the single shared machine, so by
        the time an AM is *delivered* its protocol is always known.
        With one machine per OS process, an inbound AM can arrive before
        this process ever makes the corresponding local call (e.g. a
        spawn lands here before this rank's own first spawn) — a worker
        must know every protocol from birth."""
        from repro.core import (collectives, collectives_algos,
                                collectives_async, copy_async, spawn)
        from repro.core.termination import ft_epoch, vector_count
        from repro.runtime import lock as lock_mod
        for mod in (collectives, collectives_algos, collectives_async,
                    copy_async, spawn, ft_epoch, vector_count, lock_mod):
            mod._ensure_handlers(self)
        self.am.ensure_registered("event.fire", self._handle_event_fire)

    # ------------------------------------------------------------------ #
    # Registries
    # ------------------------------------------------------------------ #

    def image_state(self, world_rank: int) -> ImageState:
        state = self._image_states.get(world_rank)
        if state is None:
            if not 0 <= world_rank < self.n_images:
                raise IndexError(
                    f"image {world_rank} out of range [0, {self.n_images})"
                )
            state = self._image_states[world_rank] = ImageState(
                self, world_rank)
        return state

    def team_by_id(self, team_id: int) -> Team:
        try:
            return self._teams[team_id]
        except KeyError:
            raise KeyError(f"unknown team id {team_id}") from None

    def intern_team(self, members: Sequence[int],
                    parent: Optional[Team] = None) -> Team:
        """One shared Team object per member set (team_split uses this so
        every member holds the same instance and id).  Contiguous member
        sets canonicalize to a range so block teams — including a re-
        derived world membership — stay O(1) objects (DESIGN.md §13)."""
        if not isinstance(members, range):
            members = list(members)
            if members and members == list(
                    range(members[0], members[0] + len(members))):
                members = range(members[0], members[0] + len(members))
        key = _member_key(members)
        team = self._teams_by_members.get(key)
        if team is None:
            team = Team(members, team_id=next(self._team_ids), parent=parent)
            self._teams_by_members[key] = team
            self._teams[team.id] = team
        return team

    def coarray(self, name: str, shape: Any, dtype: Any = np.float64,
                team: Optional[Team] = None, fill: Any = 0) -> Coarray:
        """Allocate a coarray over ``team`` (default: the world team)."""
        if name in self._coarrays:
            raise ValueError(f"coarray {name!r} already allocated")
        team = team if team is not None else self.team_world
        arr = Coarray(name, team, self.n_images, shape, dtype=dtype,
                      fill=fill)
        self.gasnet.register_segment(arr.segment)
        self._coarrays[name] = arr
        return arr

    def coarray_by_name(self, name: str) -> Coarray:
        try:
            return self._coarrays[name]
        except KeyError:
            raise KeyError(f"no coarray named {name!r}") from None

    def make_event(self, team: Optional[Team] = None,
                   name: Optional[str] = None) -> EventVar:
        """Create an event variable over ``team`` (default world)."""
        team = team if team is not None else self.team_world
        ev = EventVar(self, team, name=name)
        if ev.name in self._events:
            raise ValueError(f"event {ev.name!r} already exists")
        self._events[ev.name] = ev
        return ev

    def event_by_name(self, name: str) -> EventVar:
        return self._events[name]

    def make_lock(self, team: Optional[Team] = None,
                  name: Optional[str] = None) -> LockVar:
        """Create a lock variable over ``team`` (default world)."""
        team = team if team is not None else self.team_world
        lock = LockVar(self, team, name=name)
        if lock.name in self._locks and self._locks[lock.name] is not lock:
            raise ValueError(f"lock {lock.name!r} already exists")
        self._locks[lock.name] = lock
        return lock

    def lock_by_name(self, name: str) -> LockVar:
        return self._locks[name]

    def next_token(self) -> int:
        return next(self._tokens)

    def next_op_id(self) -> int:
        """Per-machine pending-op id stream (reproducible run-to-run; op
        ids in traces and race reports do not depend on how many machines
        the process built earlier)."""
        return next(self._op_ids)

    def next_spawn_id(self) -> int:
        """Machine-global spawn identity, used as the idempotency key
        when recovery re-executes lost shipped functions."""
        return next(self._spawn_ids)

    # ------------------------------------------------------------------ #
    # Fail-stop crashes
    # ------------------------------------------------------------------ #

    def kill_image(self, rank: int) -> None:
        """Fail-stop crash of ``rank`` *now*: halt every task running on
        it (main program, shipped functions, AM handlers, detector),
        drop its in-flight messages and mark its links down.  Idempotent.
        Survivors are NOT told — discovering the death is the failure
        detector's job (or the liveness watchdog's, if detection is
        off)."""
        if rank in self.dead_images:
            return
        if not 0 <= rank < self.n_images:
            raise ValueError(f"cannot crash image {rank}: not in "
                             f"[0, {self.n_images})")
        self.dead_images.add(rank)
        self.dead_at[rank] = self.sim.now
        killed = self.sim.kill_owner(rank)
        self.network.mark_dead(rank)
        self.stats.incr("fail.crashes")
        if self.tracer is not None:
            self.tracer.instant(rank, "fail.crash", self.sim.now,
                                args={"tasks_killed": killed})
        if self.failure is not None:
            self.failure.notify_death(rank)

    def _on_confirm(self, peer: int) -> None:
        """Failure-service callback: a suspect was CONFIRMED dead.
        Reconcile every surviving image's finish frames and, with
        recovery enabled, re-execute the lost spawns from their
        surviving senders' ledgers.  Mere suspicion never reaches
        here — reconciliation on a false suspicion would double-count
        when the straggler's delayed messages eventually land."""
        service = self.failure
        for (rank, _key), frame in sorted(self._frames.items()):
            if (rank in self.dead_images or rank in service.confirmed):
                continue
            entries = frame.reconcile_failure(peer)
            if entries:
                service.orphans[peer] = (service.orphans.get(peer, 0)
                                         + len(entries))
                if service.recover:
                    from repro.core.spawn import reexecute_lost

                    reexecute_lost(self, rank, frame, entries)

    def _on_heal(self, peer: int) -> None:
        """Failure-service callback: a suspicion turned out to be false
        (the peer spoke again).  Replay the compensating algebra: every
        frame that reconciled ``peer`` away adds its exact-subtraction
        stamp back, so the healed peer's counts are neither dropped nor
        double-subtracted (DESIGN §12)."""
        service = self.failure
        for (rank, _key), frame in sorted(self._frames.items()):
            if rank in self.dead_images:
                continue
            frame.unreconcile(peer)
        service.orphans.pop(peer, None)

    # ------------------------------------------------------------------ #
    # Services for the core operation modules
    # ------------------------------------------------------------------ #

    def get_or_create_frame(self, world_rank: int, key: tuple):
        """Finish frame for (image, key); lazily created because shipped
        functions can land before the image enters its own block."""
        from repro.core.finish import FinishFrame

        full_key = (world_rank, key)
        frame = self._frames.get(full_key)
        if frame is None:
            team_id, seq = key
            frame = FinishFrame(self, world_rank, self.team_by_id(team_id),
                                seq)
            self._frames[full_key] = frame
        return frame

    def next_coll_seq(self, world_rank: int, team_id: int) -> int:
        return self.image_state(world_rank).next_coll_seq(team_id)

    def coll_state(self, world_rank: int, team_id: int, seq: int,
                   factory: Callable[[], Any]) -> Any:
        key = (world_rank, team_id, seq)
        state = self._coll_states.get(key)
        if state is None:
            state = factory()
            self._coll_states[key] = state
        return state

    def drop_coll_state(self, world_rank: int, team_id: int, seq: int) -> None:
        self._coll_states.pop((world_rank, team_id, seq), None)

    def post_event(self, ref: EventRef, from_rank: int,
                   count: int = 1) -> None:
        """Post an event counter, sending a notify AM when the counter
        lives on a different image than the poster."""
        if ref.world_rank == from_rank:
            ref.event.post(ref.world_rank, count)
        else:
            self.am.request_nb(
                from_rank, ref.world_rank, _EVENT_POST,
                args=(ref.event.name, count),
                category=AMCategory.SHORT, kind="event.post",
            )

    def _handle_event_post(self, ctx, event_name: str, count: int) -> None:
        self._events[event_name].post(ctx.image, count)

    def when_event(self, ref: EventRef, initiator: int,
                   action: Callable[[], None]) -> None:
        """Run ``action`` (at the initiator) once ``ref`` has been posted,
        consuming one post — the predicated-copy mechanism.  When the
        event lives remotely, a waiter task runs at its home image and a
        control message triggers the action back at the initiator."""
        home = ref.world_rank

        def wait_and_fire():
            yield from ref.event.consume_when_ready(home, 1)
            if home == initiator:
                action()
            else:
                token = self.next_token()
                self.scratch[("when_event", token)] = action
                self.am.request_nb(
                    home, initiator, "event.fire", args=(token,),
                    category=AMCategory.SHORT, kind="event.fire",
                )

        self.am.ensure_registered("event.fire", self._handle_event_fire)
        self.start_internal_task(wait_and_fire(), name=f"when_event@{home}")

    def _handle_event_fire(self, ctx, token: int) -> None:
        self.scratch.pop(("when_event", token))()

    def make_image(self, world_rank: int, activation: Activation) -> Image:
        return Image(self, world_rank, activation)

    def start_internal_task(self, gen, name: str = "internal",
                            owner: Optional[int] = None) -> Task:
        """Run a runtime-internal generator as a simulation task.
        ``owner`` ties it to an image so a fail-stop crash halts it."""
        return Task(self.sim, gen, name=name, owner=owner)

    def summary(self) -> dict:
        """A run report: simulated time, traffic, busy-time balance and
        the headline construct counters (what the harness prints)."""
        busy = self.busy.busy
        # Balance statistics cover only images that did work: at paper
        # scale (8192 images) most ranks may be pure bystanders, and
        # averaging them in would both dilute the imbalance signal and
        # report a meaningless near-zero mean (DESIGN.md §13).
        active = int(np.count_nonzero(busy))
        mean_busy = float(busy.sum() / active) if active else 0.0
        return {
            "images": self.n_images,
            "active_images": active,
            "sim_time": self.sim.now,
            "events_processed": self.sim.events_processed,
            "messages": self.stats["net.msgs"],
            "bytes": self.stats["net.bytes"],
            "spawns": self.stats["spawn.executed"],
            "copies": self.stats["copy.initiated"],
            "cofences": self.stats["cofence.calls"],
            "finish_blocks": self.stats["finish.completed"],
            "finish_waves": self.stats["finish.rounds_total"],
            "retransmits": self.stats["net.retransmits"],
            "drops": self.stats["net.drops"],
            "dups": self.stats["net.dups"],
            "busy_total": float(busy.sum()),
            "busy_imbalance": (float(busy.max() / mean_busy)
                               if mean_busy > 0 else 1.0),
        }

    # ------------------------------------------------------------------ #
    # SPMD launch
    # ------------------------------------------------------------------ #

    def launch(self, kernel: Callable, args: tuple = ()) -> list[Task]:
        """Start ``kernel(img, *args)`` as the main program of every
        *local* image (every image under the simulator; just this
        worker's rank in process mode).  Call :meth:`run` afterwards
        (sim), or let the worker loop drive (process)."""
        tasks = []
        for rank in self.local_ranks:
            activation = Activation(self.image_state(rank), name="main")
            img = Image(self, rank, activation)
            tasks.append(Task(self.sim, kernel(img, *args),
                              name=f"main@{rank}", owner=rank))
        self._main_tasks.extend(tasks)
        if self.failure is not None:
            if not self._failure_started:
                self._failure_started = True
                self.failure.start()
            for t in tasks:
                t.done_future.add_done_callback(
                    lambda _f: self.failure.check_stop())
        return tasks

    def _liveness_check(self, sim: Simulator) -> None:
        """Drain hook: distinguish *quiescence without completion* caused
        by message loss from an application-level deadlock.

        Runs every time the event queue drains.  When main programs are
        still blocked and the network has demonstrably lost traffic, the
        stall is the fault injector's doing — raise a
        :class:`~repro.sim.engine.LivenessError` carrying counter
        snapshots.  With no fault evidence we stay silent and let
        :meth:`run` raise its usual :class:`DeadlockError`, and a failed
        image keeps surfacing its own exception as the root cause."""
        if not self._main_tasks:
            return
        blocked = [t.name for t in self._main_tasks
                   if not t.done_future.done
                   and (t.owner is None or t.owner not in self.dead_images)]
        if not blocked:
            return
        for t in self._main_tasks:
            if t.done_future.done and t.done_future.exception():
                return
        if self.dead_images:
            # Crashed image wedged its survivors (no failure detector, or
            # recovery off): surface a structured failure, not a hang.
            from repro.runtime.failure import build_failure_error

            raise build_failure_error(
                self, reason="image crash wedged surviving images")
        if self.stats["net.drops"] == 0 and self.stats["net.ack_drops"] == 0:
            return
        from repro.core.finish import stall_report

        raise LivenessError(stall_report(self, blocked))

    @staticmethod
    def _unwrap(exc: BaseException) -> BaseException:
        """Failures of an image's main program arrive wrapped in
        TaskFailed; surface a structured ImageFailureError directly so
        callers can catch the typed error."""
        from repro.runtime.failure import ImageFailureError

        if isinstance(exc.__cause__, ImageFailureError):
            return exc.__cause__
        return exc

    def run(self, max_events: Optional[int] = None) -> list[Any]:
        """Run the simulation to completion and return the main-program
        results in rank order.  Raises :class:`DeadlockError` with the
        blocked ranks if the machine wedges, or lets the liveness
        watchdog's :class:`~repro.sim.engine.LivenessError` propagate
        when injected faults stalled the workload."""
        if self.backend != "sim":
            raise RuntimeError(
                "Machine.run drives the simulator; process-mode workers "
                "are driven by repro.backend.parallel")
        self.sim.run(max_events=max_events)
        dead = self.dead_images
        blocked = [t.name for t in self._main_tasks
                   if not t.done_future.done
                   and (t.owner is None or t.owner not in dead)]
        if blocked:
            # A failed image often wedges its peers (they wait for its
            # collectives); surface the root cause, not the symptom.
            for t in self._main_tasks:
                if t.done_future.done and t.done_future.exception():
                    raise self._unwrap(t.done_future.exception())
            raise DeadlockError(
                f"simulation drained with blocked main programs: {blocked} "
                f"(t={self.sim.now:.6f}s)"
            )
        for t in self._main_tasks:
            if t.done_future.done and t.done_future.exception():
                raise self._unwrap(t.done_future.exception())
        # A main that completed before its image crashed still has a
        # result; only mains the crash interrupted report None.
        return [t.done_future.result() if t.done_future.done else None
                for t in self._main_tasks]


def run_spmd(kernel: Callable, n_images: int,
             params: Optional[MachineParams] = None, seed: int = 0,
             args: tuple = (), max_events: Optional[int] = None,
             setup: Optional[Callable[[Machine], None]] = None,
             faults: Optional[FaultPlan] = None,
             racecheck: bool = False, schedule=None,
             failure_detection=None,
             backend: str = "sim") -> tuple[Any, list[Any]]:
    """Build a machine, run ``kernel`` SPMD on every image, return
    ``(machine, per-rank results)``.

    ``setup(machine)`` runs before launch — the place to allocate
    coarrays, events and locks (allocation is a team-creation-time
    activity in CAF 2.0).  ``faults`` installs a
    :class:`~repro.net.faults.FaultPlan` (chaos mode); pair it with
    ``params.reliable=True`` unless the stall is the point.
    ``schedule`` installs a :class:`~repro.explore.schedule.Schedule`
    (replay) or :class:`~repro.explore.schedule.ScheduleSource`
    (exploration) that drives scheduling tie-breaks and delivery lags.
    ``failure_detection`` enables the heartbeat failure detector: pass
    ``True`` for defaults or a
    :class:`~repro.runtime.failure.FailureConfig` (with
    ``recover=True`` lost shipped functions re-execute on survivors).
    Dead images report ``None`` in the results list.

    ``backend`` selects the execution substrate: ``"sim"`` (default)
    runs every image on the deterministic simulator and returns the
    ``Machine``; ``"process"`` forks one OS process per image and
    returns a :class:`~repro.backend.parallel.ParallelRun` in the
    machine slot (same results-list semantics).  ``faults``,
    ``racecheck``, ``schedule`` and ``max_events`` are
    simulator-only.
    """
    if backend == "process":
        if faults is not None or racecheck or schedule is not None:
            raise ValueError(
                "fault injection, race checking and schedule "
                "exploration require backend='sim'")
        if max_events is not None:
            raise ValueError("max_events is a simulator-only budget")
        from repro.backend.parallel import run_spmd_process

        return run_spmd_process(
            kernel, n_images, params=params, seed=seed, args=args,
            setup=setup, failure_detection=failure_detection)
    machine = Machine(n_images, params=params, seed=seed, faults=faults,
                      racecheck=racecheck, schedule=schedule,
                      failure_detection=failure_detection)
    if setup is not None:
        setup(machine)
    machine.launch(kernel, args=args)
    results = machine.run(max_events=max_events)
    return machine, results
