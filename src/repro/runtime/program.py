"""Machine assembly and SPMD program launch.

:class:`Machine` wires the whole stack together — simulator, network,
active messages, GASNet layer, registries for teams / coarrays / events /
locks, finish frames and collective states — and owns the services the
core operation modules call into.

:func:`run_spmd` is the main entry point::

    def kernel(img):
        yield from img.barrier()
        return img.rank

    machine, results = run_spmd(kernel, n_images=8)

Every image runs ``kernel`` as its main activation; ``results[i]`` is the
kernel's return value on image i, and ``machine`` exposes the simulated
clock, statistics and busy-time accounting the benchmark harness reads.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.sim.engine import LivenessError, Simulator
from repro.sim.rng import RngPool
from repro.sim.tasks import Task
from repro.sim.trace import IntervalAccumulator, Stats
from repro.net.faults import FaultPlan
from repro.net.topology import MachineParams
from repro.net.transport import Network
from repro.net.flowcontrol import CreditManager
from repro.net.active_messages import AMCategory, AMLayer
from repro.net.gasnet import Gasnet
from repro.runtime.coarray import Coarray
from repro.runtime.event import EventRef, EventVar
from repro.runtime.image import Image, ImageState
from repro.runtime.lock import LockVar
from repro.runtime.memory_model import Activation
from repro.runtime.team import Team

_EVENT_POST = "event.post"


class DeadlockError(RuntimeError):
    """The event queue drained while SPMD main programs were blocked."""


class Machine:
    """One simulated distributed machine running the CAF 2.0 runtime."""

    def __init__(self, n_images: int, params: Optional[MachineParams] = None,
                 seed: int = 0, tracer=None,
                 faults: Optional[FaultPlan] = None,
                 racecheck: bool = False, schedule=None):
        if params is None:
            params = MachineParams.uniform(n_images)
        if params.n_images != n_images:
            raise ValueError(
                f"params describe {params.n_images} images, asked for "
                f"{n_images}"
            )
        self.n_images = n_images
        self.params = params
        self.seed = seed
        self.sim = Simulator()
        self.stats = Stats()
        self.tracer = tracer
        if tracer is not None:
            tracer.label_tracks(n_images)
        # rng streams: one per image, plus one for network jitter and one
        # for fault injection (SeedSequence children are independent of
        # pool size, so the extra stream leaves image streams untouched)
        self.rng_pool = RngPool(seed, n_images + 2)
        self.faults = faults
        if faults is not None and faults.seed is None:
            faults.bind(self.rng_pool[n_images + 1])
        self.network = Network(self.sim, params, stats=self.stats,
                               jitter_rng=self.rng_pool[n_images],
                               tracer=tracer, faults=faults, seed=seed)
        #: schedule-exploration source (DESIGN.md §10), or None.  When
        #: installed, same-instant tie-breaks and delivery lags become
        #: explicit choice points driven by the source; with None the
        #: engine's canonical deterministic order is untouched.
        self.schedule_source = None
        if schedule is not None:
            from repro.explore.schedule import as_schedule_source

            source = as_schedule_source(schedule)
            self.schedule_source = source
            self.sim.set_schedule_source(source)
            self.network.schedule_source = source
        self.sim.add_drain_hook(self._liveness_check)
        credits = None
        if params.flow_credits is not None:
            credits = CreditManager(
                self.sim, params.flow_credits,
                stall_penalty=params.flow_stall_penalty,
                scope=params.flow_credit_scope,
                stats=self.stats,
            )
        self.credits = credits
        self.am = AMLayer(self.network, credit_manager=credits)
        self.gasnet = Gasnet(self.am)
        self.busy = IntervalAccumulator(n_images)

        # Team ids are allocated per machine (not from Team's process-wide
        # fallback counter) so back-to-back runs in one process produce
        # identical ids in finish-frame keys, AM payloads and traces.
        self.team_world = Team(range(n_images), team_id=0)
        self._team_ids = itertools.count(1)
        self._teams: dict[int, Team] = {self.team_world.id: self.team_world}
        self._teams_by_members: dict[tuple, Team] = {
            tuple(self.team_world.members): self.team_world
        }
        self._image_states = [ImageState(self, r) for r in range(n_images)]
        self._coarrays: dict[str, Coarray] = {}
        self._events: dict[str, EventVar] = {}
        self._locks: dict[str, LockVar] = {}
        self._frames: dict[tuple, Any] = {}
        self._coll_states: dict[tuple, Any] = {}
        #: open dictionary for cross-module transient state (copy tokens,
        #: detector scratch, lock grants, ...)
        self.scratch: dict = {}
        self._tokens = itertools.count(1)
        self._op_ids = itertools.count()
        self._main_tasks: list[Task] = []

        #: happens-before race detector, or None (the default — every
        #: instrumentation hook is guarded by one `is None` test, so a
        #: disabled run pays nothing)
        self.racecheck = None
        if racecheck:
            from repro.analysis.racecheck import RaceDetector
            self.racecheck = RaceDetector(self)

        self.am.ensure_registered(_EVENT_POST, self._handle_event_post)

    # ------------------------------------------------------------------ #
    # Registries
    # ------------------------------------------------------------------ #

    def image_state(self, world_rank: int) -> ImageState:
        return self._image_states[world_rank]

    def team_by_id(self, team_id: int) -> Team:
        try:
            return self._teams[team_id]
        except KeyError:
            raise KeyError(f"unknown team id {team_id}") from None

    def intern_team(self, members: Sequence[int],
                    parent: Optional[Team] = None) -> Team:
        """One shared Team object per member set (team_split uses this so
        every member holds the same instance and id)."""
        key = tuple(members)
        team = self._teams_by_members.get(key)
        if team is None:
            team = Team(members, team_id=next(self._team_ids), parent=parent)
            self._teams_by_members[key] = team
            self._teams[team.id] = team
        return team

    def coarray(self, name: str, shape: Any, dtype: Any = np.float64,
                team: Optional[Team] = None, fill: Any = 0) -> Coarray:
        """Allocate a coarray over ``team`` (default: the world team)."""
        if name in self._coarrays:
            raise ValueError(f"coarray {name!r} already allocated")
        team = team if team is not None else self.team_world
        arr = Coarray(name, team, self.n_images, shape, dtype=dtype,
                      fill=fill)
        self.gasnet.register_segment(arr.segment)
        self._coarrays[name] = arr
        return arr

    def coarray_by_name(self, name: str) -> Coarray:
        try:
            return self._coarrays[name]
        except KeyError:
            raise KeyError(f"no coarray named {name!r}") from None

    def make_event(self, team: Optional[Team] = None,
                   name: Optional[str] = None) -> EventVar:
        """Create an event variable over ``team`` (default world)."""
        team = team if team is not None else self.team_world
        ev = EventVar(self, team, name=name)
        if ev.name in self._events:
            raise ValueError(f"event {ev.name!r} already exists")
        self._events[ev.name] = ev
        return ev

    def event_by_name(self, name: str) -> EventVar:
        return self._events[name]

    def make_lock(self, team: Optional[Team] = None,
                  name: Optional[str] = None) -> LockVar:
        """Create a lock variable over ``team`` (default world)."""
        team = team if team is not None else self.team_world
        lock = LockVar(self, team, name=name)
        if lock.name in self._locks and self._locks[lock.name] is not lock:
            raise ValueError(f"lock {lock.name!r} already exists")
        self._locks[lock.name] = lock
        return lock

    def lock_by_name(self, name: str) -> LockVar:
        return self._locks[name]

    def next_token(self) -> int:
        return next(self._tokens)

    def next_op_id(self) -> int:
        """Per-machine pending-op id stream (reproducible run-to-run; op
        ids in traces and race reports do not depend on how many machines
        the process built earlier)."""
        return next(self._op_ids)

    # ------------------------------------------------------------------ #
    # Services for the core operation modules
    # ------------------------------------------------------------------ #

    def get_or_create_frame(self, world_rank: int, key: tuple):
        """Finish frame for (image, key); lazily created because shipped
        functions can land before the image enters its own block."""
        from repro.core.finish import FinishFrame

        full_key = (world_rank, key)
        frame = self._frames.get(full_key)
        if frame is None:
            team_id, seq = key
            frame = FinishFrame(self, world_rank, self.team_by_id(team_id),
                                seq)
            self._frames[full_key] = frame
        return frame

    def next_coll_seq(self, world_rank: int, team_id: int) -> int:
        return self._image_states[world_rank].next_coll_seq(team_id)

    def coll_state(self, world_rank: int, team_id: int, seq: int,
                   factory: Callable[[], Any]) -> Any:
        key = (world_rank, team_id, seq)
        state = self._coll_states.get(key)
        if state is None:
            state = factory()
            self._coll_states[key] = state
        return state

    def drop_coll_state(self, world_rank: int, team_id: int, seq: int) -> None:
        self._coll_states.pop((world_rank, team_id, seq), None)

    def post_event(self, ref: EventRef, from_rank: int,
                   count: int = 1) -> None:
        """Post an event counter, sending a notify AM when the counter
        lives on a different image than the poster."""
        if ref.world_rank == from_rank:
            ref.event.post(ref.world_rank, count)
        else:
            self.am.request_nb(
                from_rank, ref.world_rank, _EVENT_POST,
                args=(ref.event.name, count),
                category=AMCategory.SHORT, kind="event.post",
            )

    def _handle_event_post(self, ctx, event_name: str, count: int) -> None:
        self._events[event_name].post(ctx.image, count)

    def when_event(self, ref: EventRef, initiator: int,
                   action: Callable[[], None]) -> None:
        """Run ``action`` (at the initiator) once ``ref`` has been posted,
        consuming one post — the predicated-copy mechanism.  When the
        event lives remotely, a waiter task runs at its home image and a
        control message triggers the action back at the initiator."""
        home = ref.world_rank

        def wait_and_fire():
            yield from ref.event.consume_when_ready(home, 1)
            if home == initiator:
                action()
            else:
                token = self.next_token()
                self.scratch[("when_event", token)] = action
                self.am.request_nb(
                    home, initiator, "event.fire", args=(token,),
                    category=AMCategory.SHORT, kind="event.fire",
                )

        self.am.ensure_registered("event.fire", self._handle_event_fire)
        self.start_internal_task(wait_and_fire(), name=f"when_event@{home}")

    def _handle_event_fire(self, ctx, token: int) -> None:
        self.scratch.pop(("when_event", token))()

    def make_image(self, world_rank: int, activation: Activation) -> Image:
        return Image(self, world_rank, activation)

    def start_internal_task(self, gen, name: str = "internal") -> Task:
        """Run a runtime-internal generator as a simulation task."""
        return Task(self.sim, gen, name=name)

    def summary(self) -> dict:
        """A run report: simulated time, traffic, busy-time balance and
        the headline construct counters (what the harness prints)."""
        busy = self.busy.busy
        mean_busy = float(busy.mean()) if self.n_images else 0.0
        return {
            "images": self.n_images,
            "sim_time": self.sim.now,
            "events_processed": self.sim.events_processed,
            "messages": self.stats["net.msgs"],
            "bytes": self.stats["net.bytes"],
            "spawns": self.stats["spawn.executed"],
            "copies": self.stats["copy.initiated"],
            "cofences": self.stats["cofence.calls"],
            "finish_blocks": self.stats["finish.completed"],
            "finish_waves": self.stats["finish.rounds_total"],
            "retransmits": self.stats["net.retransmits"],
            "drops": self.stats["net.drops"],
            "dups": self.stats["net.dups"],
            "busy_total": float(busy.sum()),
            "busy_imbalance": (float(busy.max() / mean_busy)
                               if mean_busy > 0 else 1.0),
        }

    # ------------------------------------------------------------------ #
    # SPMD launch
    # ------------------------------------------------------------------ #

    def launch(self, kernel: Callable, args: tuple = ()) -> list[Task]:
        """Start ``kernel(img, *args)`` as the main program of every
        image.  Call :meth:`run` afterwards."""
        tasks = []
        for rank in range(self.n_images):
            activation = Activation(self._image_states[rank], name="main")
            img = Image(self, rank, activation)
            tasks.append(Task(self.sim, kernel(img, *args),
                              name=f"main@{rank}"))
        self._main_tasks.extend(tasks)
        return tasks

    def _liveness_check(self, sim: Simulator) -> None:
        """Drain hook: distinguish *quiescence without completion* caused
        by message loss from an application-level deadlock.

        Runs every time the event queue drains.  When main programs are
        still blocked and the network has demonstrably lost traffic, the
        stall is the fault injector's doing — raise a
        :class:`~repro.sim.engine.LivenessError` carrying counter
        snapshots.  With no fault evidence we stay silent and let
        :meth:`run` raise its usual :class:`DeadlockError`, and a failed
        image keeps surfacing its own exception as the root cause."""
        if not self._main_tasks:
            return
        blocked = [t.name for t in self._main_tasks if not t.done_future.done]
        if not blocked:
            return
        for t in self._main_tasks:
            if t.done_future.done and t.done_future.exception():
                return
        if self.stats["net.drops"] == 0 and self.stats["net.ack_drops"] == 0:
            return
        from repro.core.finish import stall_report

        raise LivenessError(stall_report(self, blocked))

    def run(self, max_events: Optional[int] = None) -> list[Any]:
        """Run the simulation to completion and return the main-program
        results in rank order.  Raises :class:`DeadlockError` with the
        blocked ranks if the machine wedges, or lets the liveness
        watchdog's :class:`~repro.sim.engine.LivenessError` propagate
        when injected faults stalled the workload."""
        self.sim.run(max_events=max_events)
        blocked = [t.name for t in self._main_tasks if not t.done_future.done]
        if blocked:
            # A failed image often wedges its peers (they wait for its
            # collectives); surface the root cause, not the symptom.
            for t in self._main_tasks:
                if t.done_future.done and t.done_future.exception():
                    raise t.done_future.exception()
            raise DeadlockError(
                f"simulation drained with blocked main programs: {blocked} "
                f"(t={self.sim.now:.6f}s)"
            )
        return [t.done_future.result() for t in self._main_tasks]


def run_spmd(kernel: Callable, n_images: int,
             params: Optional[MachineParams] = None, seed: int = 0,
             args: tuple = (), max_events: Optional[int] = None,
             setup: Optional[Callable[[Machine], None]] = None,
             faults: Optional[FaultPlan] = None,
             racecheck: bool = False, schedule=None
             ) -> tuple[Machine, list[Any]]:
    """Build a machine, run ``kernel`` SPMD on every image, return
    ``(machine, per-rank results)``.

    ``setup(machine)`` runs before launch — the place to allocate
    coarrays, events and locks (allocation is a team-creation-time
    activity in CAF 2.0).  ``faults`` installs a
    :class:`~repro.net.faults.FaultPlan` (chaos mode); pair it with
    ``params.reliable=True`` unless the stall is the point.
    ``schedule`` installs a :class:`~repro.explore.schedule.Schedule`
    (replay) or :class:`~repro.explore.schedule.ScheduleSource`
    (exploration) that drives scheduling tie-breaks and delivery lags.
    """
    machine = Machine(n_images, params=params, seed=seed, faults=faults,
                      racecheck=racecheck, schedule=schedule)
    if setup is not None:
        setup(machine)
    machine.launch(kernel, args=args)
    results = machine.run(max_events=max_events)
    return machine, results
