"""Distributed locks.

The PGAS work-stealing algorithm the paper contrasts against (Fig. 2,
Dinan et al.) locks a victim's queue remotely; RandomAccess's reference
get-update-put variant is racy precisely because it does *not*.  This
module provides the lock those algorithms need: one lock word per team
member, acquired and released with active-message round trips, FIFO
granting.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Any, Generator, TYPE_CHECKING

from repro.sim.tasks import Future
from repro.net.active_messages import AMCategory
from repro.runtime.team import Team

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.program import Machine

_ACQ = "lock.acquire"
_REL = "lock.release"
_GRANT = "lock.grant"


def _ensure_handlers(machine: "Machine") -> None:
    def handle_acquire(ctx, lock_name: str, token: int) -> None:
        lock = machine.lock_by_name(lock_name)
        lock._acquire_at(ctx.image, ctx.src, token)

    def handle_release(ctx, lock_name: str) -> None:
        lock = machine.lock_by_name(lock_name)
        lock._release_at(ctx.image)

    def handle_grant(ctx, token: int) -> None:
        fut = machine.scratch.pop(("lock.grant", token))
        fut.set_result(None)

    machine.am.ensure_registered(_ACQ, handle_acquire)
    machine.am.ensure_registered(_REL, handle_release)
    machine.am.ensure_registered(_GRANT, handle_grant)


class LockVar:
    """One lock per team member, addressable from any image."""

    _anon = itertools.count()

    def __init__(self, machine: "Machine", team: Team, name: str | None = None):
        self.machine = machine
        self.team = team
        self.name = name or f"_lock{next(LockVar._anon)}"
        # Per-member world rank: held flags and FIFO waiters, sparse —
        # entries appear only on lock homes actually contended, so a
        # lock over 8192 images costs nothing up front (DESIGN.md §13).
        self._held: set[int] = set()
        self._queues: dict[int, deque[tuple[int, int]]] = {}
        _ensure_handlers(machine)

    # -- home-side mechanics ------------------------------------------------ #

    def _acquire_at(self, home: int, requester: int, token: int) -> None:
        if home not in self._held:
            self._held.add(home)
            self._grant(home, requester, token)
        else:
            self._queues.setdefault(home, deque()).append(
                (requester, token))

    def _release_at(self, home: int) -> None:
        if home not in self._held:
            raise RuntimeError(
                f"lock {self.name!r}@{home} released while not held"
            )
        if self._queues.get(home):
            requester, token = self._queues[home].popleft()
            self._grant(home, requester, token)
        else:
            self._held.discard(home)

    def _grant(self, home: int, requester: int, token: int) -> None:
        if requester == home:
            fut = self.machine.scratch.pop(("lock.grant", token))
            fut.set_result(None)
        else:
            self.machine.am.request_nb(
                home, requester, _GRANT, args=(token,),
                category=AMCategory.SHORT, kind="lock.grant",
            )

    # -- user API ------------------------------------------------------------ #

    def acquire(self, ctx, team_rank: int) -> Generator[Any, Any, None]:
        """Acquire the lock on ``team_rank`` (blocks; use ``yield from``)."""
        home = self.team.world_rank(team_rank)
        token = self.machine.next_token()
        fut = Future(f"{self.name}.grant{token}")
        self.machine.scratch[("lock.grant", token)] = fut
        if home == ctx.rank:
            self._acquire_at(home, ctx.rank, token)
        else:
            self.machine.am.request_nb(
                ctx.rank, home, _ACQ, args=(self.name, token),
                category=AMCategory.SHORT, kind="lock.acquire",
            )
        yield fut
        if self.machine.racecheck is not None:
            self.machine.racecheck.lock_acquired(ctx.activation, self.name,
                                                 home)
        self.machine.stats.incr("lock.acquired")

    def release(self, ctx, team_rank: int) -> None:
        """Release the lock on ``team_rank`` (fire-and-forget message)."""
        home = self.team.world_rank(team_rank)
        if self.machine.racecheck is not None:
            self.machine.racecheck.lock_released(ctx.activation, self.name,
                                                 home)
        if home == ctx.rank:
            self._release_at(home)
        else:
            self.machine.am.request_nb(
                ctx.rank, home, _REL, args=(self.name,),
                category=AMCategory.SHORT, kind="lock.release",
            )

    def is_held(self, team_rank: int) -> bool:
        return self.team.world_rank(team_rank) in self._held
