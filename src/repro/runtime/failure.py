"""Fail-stop image failures: detection and structured reporting.

The failure model (DESIGN §11) is *fail-stop*: a crashed image halts
instantly, loses its memory, and never sends another byte.  Survivors
learn about the crash through a heartbeat failure detector, not through
simulator omniscience — the simulator kills the image's tasks and drops
its links, but the *runtime* only acts once the detector publishes a
suspicion.

Detection
---------
Every image runs a detector task that, each ``period`` seconds, (a)
sends a best-effort SHORT heartbeat AM to every peer it does not
suspect, and (b) times out peers it has not heard from within
``timeout``.  *Any* delivery refreshes the observer's last-heard clock
(heartbeats piggyback on regular traffic via the transport's delivery
hook), so a chatty link never pays heartbeat overhead for detection.

The suspect set is a single monotonic set shared by all images and the
transport.  That is a deliberate idealization: it models a replicated
membership/agreement service (in the spirit of ULFM's agreement
primitive) that the paper's runtime would consult; implementing the
agreement protocol itself is out of scope.  Under fail-stop with
bounded simulated message delays and ``timeout >> period`` the detector
is accurate — it only suspects images that actually crashed — unless a
FaultPlan drops enough consecutive heartbeats to starve a link for a
full timeout.

On suspicion the service reconciles every surviving finish frame
(:meth:`repro.core.finish.FinishFrame.reconcile_failure`) and, when
``recover=True``, hands the popped spawn-ledger entries to
:func:`repro.core.spawn.reexecute_lost` so lost shipped functions rerun
on their surviving spawners.
"""

from __future__ import annotations

from typing import Optional

from repro.net.active_messages import AMCategory
from repro.sim.tasks import Delay, Task


class ImageFailureError(RuntimeError):
    """One or more images failed inside a finish that cannot (or was not
    asked to) recover.

    Attributes
    ----------
    dead : tuple[int, ...]
        The failed world ranks, as known when the error was built.
    epochs : dict
        Snapshot of the non-quiet finish frames' counters at detection
        time (``(rank, key) -> FinishFrame.snapshot()``).
    orphans : dict[int, int]
        Per-dead-image count of counted sends whose shipped work was
        orphaned by the crash.
    detected_at : float
        Simulated time at which the failure surfaced.
    """

    def __init__(self, message: str, dead: tuple = (), epochs=None,
                 orphans=None, detected_at: float = 0.0):
        super().__init__(message)
        self.dead = tuple(dead)
        self.epochs = dict(epochs or {})
        self.orphans = dict(orphans or {})
        self.detected_at = detected_at


def build_failure_error(machine, dead=None, reason: str = "image failure"
                        ) -> ImageFailureError:
    """Assemble a structured :class:`ImageFailureError` from the
    machine's current state (works with or without a failure service)."""
    service = machine.failure
    if dead is None:
        dead = set(machine.dead_images)
        if service is not None:
            dead |= service.suspects
    dead = tuple(sorted(dead))
    epochs = {}
    for (rank, key), frame in sorted(machine._frames.items()):
        if (not frame.even.locally_quiet() or not frame.odd.locally_quiet()
                or frame.cond.waiting):
            epochs[(rank, key)] = frame.snapshot()
    if service is not None and service.orphans:
        orphans = dict(service.orphans)
    else:
        orphans = {}
        for d in dead:
            n = sum(frame.sent_to.get(d, 0)
                    for (rank, _k), frame in machine._frames.items()
                    if rank not in dead)
            if n:
                orphans[d] = n
    msg = (f"{reason}: image(s) {list(dead)} failed at "
           f"t={machine.sim.now:.6f}s; "
           f"orphaned sends {orphans if orphans else '{}'} "
           f"({len(epochs)} finish frame(s) not quiet)")
    return ImageFailureError(msg, dead=dead, epochs=epochs, orphans=orphans,
                             detected_at=machine.sim.now)


class FailureConfig:
    """Tuning for the heartbeat failure detector.

    ``period``   — heartbeat interval per image (seconds).
    ``timeout``  — silence threshold for suspicion; default 10 periods.
    ``recover``  — re-execute lost shipped functions on survivors
                   instead of raising :class:`ImageFailureError`.
    """

    __slots__ = ("period", "timeout", "recover")

    def __init__(self, period: float = 5e-5,
                 timeout: Optional[float] = None,
                 recover: bool = False):
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {period}")
        if timeout is None:
            timeout = 10.0 * period
        if timeout <= period:
            raise ValueError(
                f"timeout ({timeout}) must exceed the heartbeat period "
                f"({period}) or every image is suspected instantly"
            )
        self.period = period
        self.timeout = timeout
        self.recover = recover

    def __repr__(self) -> str:
        return (f"FailureConfig(period={self.period}, timeout={self.timeout}, "
                f"recover={self.recover})")


_HB = "fail.hb"


class FailureService:
    """Per-machine failure detection (one detector task per image)."""

    def __init__(self, machine, config: FailureConfig):
        self.machine = machine
        self.config = config
        self.recover = config.recover
        n = machine.n_images
        self.n_images = n
        # Shared with the transport: sends to suspects fail fast.
        self.suspects: set[int] = machine.network.suspects
        #: membership generation; bumped on every new suspicion so
        #: detector waves snapshotting it can notice a mid-wave change
        self.gen = 0
        #: per-dead-image counted-send orphan totals (filled at reconcile)
        self.orphans: dict[int, int] = {}
        # last_heard[observer][peer] = sim time of last delivery
        self._last_heard = [[0.0] * n for _ in range(n)]
        self._tasks: list[Task] = []
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        machine = self.machine
        if self.recover:
            # Activate the spawn idempotency registry so every execution
            # is recorded (see repro.core.spawn).
            machine.scratch.setdefault("spawn.executed_ids", {})
        now = machine.sim.now
        for row in self._last_heard:
            for i in range(self.n_images):
                row[i] = now
        machine.network.on_delivery = self._on_delivery
        machine.am.ensure_registered(_HB, _heartbeat_handler)
        for rank in range(self.n_images):
            task = Task(machine.sim, self._detector(rank),
                        name=f"fail.detect@{rank}", owner=rank)
            self._tasks.append(task)
        machine.stats.incr("fail.detectors", self.n_images)

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.kill()

    def check_stop(self) -> None:
        """Stop heartbeating once every main program is finished or
        belongs to a dead/suspected image; otherwise the periodic timers
        would keep the event queue alive forever."""
        if self._stopped:
            return
        machine = self.machine
        for task in machine._main_tasks:
            if task.done_future.done:
                continue
            owner = task.owner
            if owner is not None and (owner in machine.dead_images
                                      or owner in self.suspects):
                continue
            return
        self.stop()

    def notify_death(self, rank: int) -> None:
        """The simulator killed ``rank`` (ground truth, *not* published
        to survivors — suspicion still takes a detector timeout)."""
        self.check_stop()

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #

    def _on_delivery(self, src: int, dst: int) -> None:
        self._last_heard[dst][src] = self.machine.sim.now

    def _detector(self, rank: int):
        machine = self.machine
        sim = machine.sim
        period = self.config.period
        timeout = self.config.timeout
        heard = self._last_heard[rank]
        while True:
            yield Delay(period)
            now = sim.now
            for peer in range(self.n_images):
                if peer == rank or peer in self.suspects:
                    continue
                if now - heard[peer] > timeout:
                    self.publish(peer)
            for peer in range(self.n_images):
                if peer == rank or peer in self.suspects:
                    continue
                machine.am.request_nb(
                    rank, peer, _HB, category=AMCategory.SHORT,
                    best_effort=True, kind="fail.hb",
                )
            machine.stats.incr("fail.hb_rounds")

    def publish(self, peer: int) -> None:
        """Record ``peer`` in the (shared, monotonic) suspect set and
        reconcile the survivors' finish frames."""
        if peer in self.suspects:
            return
        self.suspects.add(peer)
        self.gen += 1
        machine = self.machine
        machine.stats.incr("fail.suspected")
        if machine.tracer is not None:
            machine.tracer.instant(peer, "fail.suspected", machine.sim.now,
                                   args={"gen": self.gen})
        machine._on_suspect(peer)
        self.check_stop()

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def alive_members(self, team) -> list[int]:
        """Team members not currently suspected, in world-rank order."""
        return [r for r in sorted(team) if r not in self.suspects]

    def has_failed(self, team) -> bool:
        return any(r in self.suspects for r in team)


def _heartbeat_handler(ctx) -> None:
    """Inline no-op: the delivery itself refreshed the last-heard clock
    through the transport's on_delivery hook."""
