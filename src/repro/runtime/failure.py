"""Image failures: gray-failure-tolerant detection and reporting.

The failure model (DESIGN §11-§12) distinguishes *fail-stop* crashes —
an image halts instantly, loses its memory, never sends another byte —
from *gray* failures: stragglers and partitions that merely look like
crashes.  Survivors learn about either through a heartbeat failure
detector, not simulator omniscience, so the runtime must survive the
detector being wrong.

Two-level membership
--------------------
Suspicion comes in two levels with different commitments:

- ``SUSPECTED`` — the detector stopped hearing from the peer.  Cheap
  and revocable: sends toward the peer park in the transport's
  quarantine, nothing is reconciled.  *Any* delivery from the peer
  lifts the suspicion, bumps the peer's incarnation number, and flushes
  the quarantine.
- ``CONFIRMED_DEAD`` — the silence outlasted ``confirm_timeout``.
  Expensive and (almost) irreversible: quarantined sends fail with
  :class:`~repro.net.transport.PeerFailedError`, finish frames
  reconcile (exact-subtraction of the peer's counter stamps), and with
  ``recover=True`` lost shipped functions re-execute on survivors.  If
  a confirmed peer nevertheless delivers (an extreme gray failure), it
  is *resurrected*: the reconciliation algebra replays in reverse
  (:meth:`repro.core.finish.FinishFrame.unreconcile`).

Both sets are shared, monotonic-per-transition views modelling a
replicated membership service (in the spirit of ULFM's agreement);
``confirmed`` is always a subset of ``suspects`` so the transport's
fast path pays one membership check, not two.

Hierarchical monitoring (DESIGN §13)
------------------------------------
Monitoring is *not* all-pairs.  Live images are arranged in a radix
tree (``FailureConfig.tree_radix``) over the current non-confirmed
membership, and each image heartbeats and watches only its tree
neighbours — parent plus up to ``tree_radix`` children, so one period
costs O(p) messages total instead of O(p²) and every observer tracks
O(1) peers.  Suspicion and confirmation publish into the shared
membership sets, so detection latency is still one observer's timeout,
not a tree traversal.  When a confirmation (or resurrection) changes
membership, the tree is rebuilt over the survivors: a dead interior
node's children are re-adopted automatically because positions shift.
A *falsely confirmed* image that is in fact alive drops out of the
tree, so it keeps probing the surrogate root (the lowest live rank) —
one delivered probe is all a resurrection takes.

Detectors
---------
Every image runs a detector task each ``period`` (stretched by any
straggler factor on the image itself).  Two suspicion rules are
available:

- ``detector="timeout"``: suspect after ``timeout`` of silence — the
  classic rule, which flaps against a straggler whose service interval
  exceeds the timeout.
- ``detector="phi"``: Hayashibara-style phi-accrual — each observer
  keeps a window of per-peer delivery inter-arrival times and suspects
  when ``phi = -log10(P(a delivery this late or later))`` crosses
  ``phi_suspect``.  The window adapts to a straggler's degraded cadence,
  so sustained slowness stops triggering once observed; fewer than 4
  samples falls back to the timeout rule.

*Confirmation* is time-based for both rules — ``elapsed >
confirm_timeout`` — because accrued improbability must never be allowed
to confirm (and reconcile) a peer that is merely slow; only hard
silence may.  Detection-quality metrics (false-suspicion count,
suspect/confirm latency for real crashes, time-to-unsuspect) accumulate
on the service for the ``grayfail`` harness experiment.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.net.active_messages import AMCategory
from repro.sim.tasks import Delay, Task


class ImageFailureError(RuntimeError):
    """One or more images failed inside a finish that cannot (or was not
    asked to) recover.

    Attributes
    ----------
    dead : tuple[int, ...]
        The failed world ranks, as known when the error was built.
    epochs : dict
        Snapshot of the non-quiet finish frames' counters at detection
        time (``(rank, key) -> FinishFrame.snapshot()``).
    orphans : dict[int, int]
        Per-dead-image count of counted sends whose shipped work was
        orphaned by the crash.
    detected_at : float
        Simulated time at which the failure surfaced.
    """

    def __init__(self, message: str, dead: tuple = (), epochs=None,
                 orphans=None, detected_at: float = 0.0):
        super().__init__(message)
        self.dead = tuple(dead)
        self.epochs = dict(epochs or {})
        self.orphans = dict(orphans or {})
        self.detected_at = detected_at


def build_failure_error(machine, dead=None, reason: str = "image failure"
                        ) -> ImageFailureError:
    """Assemble a structured :class:`ImageFailureError` from the
    machine's current state (works with or without a failure service)."""
    service = machine.failure
    if dead is None:
        dead = set(machine.dead_images)
        if service is not None:
            dead |= service.confirmed
    dead = tuple(sorted(dead))
    epochs = {}
    for (rank, key), frame in sorted(machine._frames.items()):
        if (not frame.even.locally_quiet() or not frame.odd.locally_quiet()
                or frame.cond.waiting):
            epochs[(rank, key)] = frame.snapshot()
    if service is not None and service.orphans:
        orphans = dict(service.orphans)
    else:
        orphans = {}
        for d in dead:
            n = sum(frame.sent_to.get(d, 0)
                    for (rank, _k), frame in machine._frames.items()
                    if rank not in dead)
            if n:
                orphans[d] = n
    msg = (f"{reason}: image(s) {list(dead)} failed at "
           f"t={machine.sim.now:.6f}s; "
           f"orphaned sends {orphans if orphans else '{}'} "
           f"({len(epochs)} finish frame(s) not quiet)")
    return ImageFailureError(msg, dead=dead, epochs=epochs, orphans=orphans,
                             detected_at=machine.sim.now)


class FailureConfig:
    """Tuning for the heartbeat failure detector.

    ``period``          — heartbeat interval per image (seconds).
    ``timeout``         — silence threshold for suspicion under the
                          ``"timeout"`` rule (and the phi cold-start
                          fallback); default 10 periods.
    ``recover``         — re-execute lost shipped functions on survivors
                          instead of raising :class:`ImageFailureError`.
    ``detector``        — suspicion rule: ``"timeout"`` or ``"phi"``.
    ``confirm_timeout`` — silence threshold for CONFIRMED_DEAD (both
                          rules); default 3 timeouts.  Must exceed
                          ``timeout`` so confirmation never races
                          suspicion.
    ``phi_suspect``     — phi threshold for suspicion (``"phi"`` only);
                          phi = 8 means the silence had probability
                          1e-8 under the observed arrival distribution.
    ``window``          — per-(observer, peer) inter-arrival samples
                          kept for the phi estimate.
    ``tree_radix``      — fan-out of the hierarchical monitoring tree;
                          each image heartbeats/watches its parent and
                          up to this many children (never all pairs).
    """

    __slots__ = ("period", "timeout", "recover", "detector",
                 "confirm_timeout", "phi_suspect", "window", "tree_radix")

    def __init__(self, period: float = 5e-5,
                 timeout: Optional[float] = None,
                 recover: bool = False,
                 detector: str = "timeout",
                 confirm_timeout: Optional[float] = None,
                 phi_suspect: float = 8.0,
                 window: int = 100,
                 tree_radix: int = 4):
        if period <= 0:
            raise ValueError(f"heartbeat period must be positive, got {period}")
        if timeout is None:
            timeout = 10.0 * period
        if timeout <= period:
            raise ValueError(
                f"timeout ({timeout}) must exceed the heartbeat period "
                f"({period}) or every image is suspected instantly"
            )
        if detector not in ("timeout", "phi"):
            raise ValueError(
                f"detector must be 'timeout' or 'phi', got {detector!r}")
        if confirm_timeout is None:
            confirm_timeout = 3.0 * timeout
        if confirm_timeout <= timeout:
            raise ValueError(
                f"confirm_timeout ({confirm_timeout}) must exceed the "
                f"suspicion timeout ({timeout}): confirmation is the "
                "irreversible level"
            )
        if phi_suspect <= 0:
            raise ValueError(
                f"phi_suspect must be positive, got {phi_suspect}")
        if window < 4:
            raise ValueError(
                f"phi needs a window of at least 4 samples, got {window}")
        if tree_radix < 2:
            raise ValueError(
                f"monitoring tree radix must be at least 2, got {tree_radix}")
        self.period = period
        self.timeout = timeout
        self.recover = recover
        self.detector = detector
        self.confirm_timeout = confirm_timeout
        self.phi_suspect = phi_suspect
        self.window = int(window)
        self.tree_radix = int(tree_radix)

    def __repr__(self) -> str:
        return (f"FailureConfig(period={self.period}, timeout={self.timeout}, "
                f"recover={self.recover}, detector={self.detector!r}, "
                f"confirm_timeout={self.confirm_timeout})")


_HB = "fail.hb"
_MEMBER = "fail.member"


class _SparseCounters(dict):
    """Per-rank int counters that read 0 for untouched ranks without
    ever storing them — ``c[r] += 1`` materializes only rank ``r``."""

    __slots__ = ()

    def __missing__(self, key):
        return 0


class FailureService:
    """Per-machine failure detection (one detector task per image,
    heartbeating over a hierarchical monitoring tree)."""

    def __init__(self, machine, config: FailureConfig):
        self.machine = machine
        self.config = config
        self.recover = config.recover
        n = machine.n_images
        self.n_images = n
        # Shared with the transport: sends to merely-suspected peers
        # park in its quarantine, sends to confirmed peers fail fast.
        self.suspects: set[int] = machine.network.suspects
        self.confirmed: set[int] = machine.network.confirmed
        #: membership generation; bumped on every transition (suspect,
        #: unsuspect, confirm, resurrect) so detector waves snapshotting
        #: it can notice a mid-wave change
        self.gen = 0
        #: per-image incarnation numbers: bumped each time an image
        #: returns from wrongful suspicion/confirmation, so stale state
        #: about the previous "life" is distinguishable.  Sparse: only
        #: ranks that ever recovered occupy memory.
        self.incarnations = _SparseCounters()
        #: images that were suspected (or confirmed) and came back
        self.recovered: set[int] = set()
        #: per-dead-image counted-send orphan totals (filled at reconcile)
        self.orphans: dict[int, int] = {}
        # last-heard clocks, sparse per observer: entries exist only for
        # the observer's monitored tree neighbours, seeded on the first
        # detector tick that watches the pair (never an n×n matrix)
        self._last_heard: dict[int, dict[int, float]] = {}
        # phi-accrual inter-arrival windows, lazily created per
        # (observer, peer) directed pair
        self._phi = config.detector == "phi"
        self._intervals: dict[tuple, deque] = {}
        # Monitoring tree over the non-confirmed membership; rebuilt
        # lazily whenever `gen` moves (see monitored_peers).  While no
        # image is confirmed dead the membership is the identity map
        # (pos == rank) and costs nothing; the order/pos tables are only
        # materialized once a confirmation punches a hole in it.
        self._alive_order: Optional[list[int]] = None
        self._alive_pos: Optional[dict[int, int]] = None
        self._monitor_cache: dict[int, frozenset] = {}
        self._monitor_gen = -1
        #: when each currently-suspected image was suspected
        self.suspected_at: dict[int, float] = {}
        # --- detector-quality metrics (grayfail experiment) ---------- #
        #: crash -> suspicion lag per real crash detected
        self.suspect_latency: list[float] = []
        #: crash -> confirmation lag per real crash confirmed
        self.confirm_latency: list[float] = []
        #: suspicion -> unsuspicion lag per false suspicion healed
        self.time_to_unsuspect: list[float] = []
        self._tasks: list[Task] = []
        self._stopped = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        machine = self.machine
        if self.recover:
            # Activate the spawn idempotency registry so every execution
            # is recorded (see repro.core.spawn).
            machine.scratch.setdefault("spawn.executed_ids", {})
        machine.network.on_delivery = self._on_delivery
        machine.am.ensure_registered(_HB, _heartbeat_handler)
        machine.am.ensure_registered(_MEMBER, _make_member_handler(machine))
        # Detector tasks run only for ranks this machine hosts: all of
        # them under the simulator, exactly one in a process-mode worker
        # (each worker observes for its own rank; verdicts propagate by
        # membership gossip instead of the sim's shared sets).
        local = list(machine.local_ranks)
        for rank in local:
            task = Task(machine.sim, self._detector(rank),
                        name=f"fail.detect@{rank}", owner=rank)
            self._tasks.append(task)
        machine.stats.incr("fail.detectors", len(local))

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        for task in self._tasks:
            task.kill()

    def check_stop(self) -> None:
        """Stop heartbeating once every main program is finished or
        belongs to a dead/confirmed image; otherwise the periodic timers
        would keep the event queue alive forever.  Merely-suspected
        owners do NOT count as finished: a straggler's main is still
        running, and stopping the detectors would strand it suspected
        forever (no heartbeat could ever unsuspect it)."""
        if self._stopped:
            return
        machine = self.machine
        if machine.backend != "sim":
            # A process-mode worker must keep heartbeating after its own
            # main finishes — its peers may still be running (and its
            # silence would read as a crash).  The wall-clock loop has no
            # drained-queue liveness problem; the coordinator's shutdown
            # broadcast ends the process.
            return
        for task in machine._main_tasks:
            if task.done_future.done:
                continue
            owner = task.owner
            if owner is not None and (owner in machine.dead_images
                                      or owner in self.confirmed):
                continue
            return
        self.stop()

    def notify_death(self, rank: int) -> None:
        """The simulator killed ``rank`` (ground truth, *not* published
        to survivors — suspicion still takes a detector timeout)."""
        self.check_stop()

    # ------------------------------------------------------------------ #
    # Detection
    # ------------------------------------------------------------------ #

    # -- hierarchical monitoring tree ---------------------------------- #

    def _rebuild_membership(self) -> None:
        if self.confirmed:
            order = [r for r in range(self.n_images)
                     if r not in self.confirmed]
            self._alive_order = order
            self._alive_pos = {r: i for i, r in enumerate(order)}
        else:
            # Identity membership: pos == rank, no tables needed.
            self._alive_order = None
            self._alive_pos = None
        self._monitor_cache.clear()
        self._monitor_gen = self.gen

    def monitored_peers(self, rank: int) -> frozenset:
        """World ranks ``rank`` heartbeats and watches: its parent and
        children in the ``tree_radix``-ary monitoring tree over the
        current non-confirmed membership.  A rank that is itself
        confirmed (wrongly — it is calling this, so it is alive) gets
        the surrogate root so it can announce its own resurrection."""
        if self._monitor_gen != self.gen:
            self._rebuild_membership()
        peers = self._monitor_cache.get(rank)
        if peers is None:
            peers = self._monitor_cache[rank] = self._tree_neighbors(rank)
        return peers

    def _tree_neighbors(self, rank: int) -> frozenset:
        order = self._alive_order
        if order is None:
            pos, size = rank, self.n_images
            rank_at = lambda p: p
        else:
            pos = self._alive_pos.get(rank)
            size = len(order)
            rank_at = order.__getitem__
            if pos is None:
                # Confirmed-but-calling: alive despite the verdict.
                # Probe the surrogate root until a delivery resurrects.
                return frozenset(order[:1])
        radix = self.config.tree_radix
        out = []
        if pos > 0:
            out.append(rank_at((pos - 1) // radix))
        first_child = radix * pos + 1
        for c in range(first_child, min(first_child + radix, size)):
            out.append(rank_at(c))
        return frozenset(out)

    def _on_delivery(self, src: int, dst: int) -> None:
        now = self.machine.sim.now
        if src in self.monitored_peers(dst):
            heard = self._last_heard.get(dst)
            if heard is None:
                heard = self._last_heard[dst] = {}
            prev = heard.get(src)
            if self._phi and prev is not None and now > prev:
                key = (dst, src)
                window = self._intervals.get(key)
                if window is None:
                    window = self._intervals[key] = deque(
                        maxlen=self.config.window)
                window.append(now - prev)
            heard[src] = now
        # A delivery IS life: lift any wrong verdict about the sender
        # before the message's own callbacks run (the transport calls
        # this hook first), so its counter stamps land un-reconciled.
        if src in self.confirmed:
            if src not in self.machine.dead_images:
                self.resurrect(src)
        elif src in self.suspects:
            self.unsuspect(src)

    def _phi_value(self, observer: int, peer: int, elapsed: float) -> float:
        """Hayashibara phi: -log10 of the probability that a delivery
        gap this long or longer occurs under the observed inter-arrival
        distribution (normal approximation, std floored at a quarter of
        the mean so a metronomic sender is not suspected on microscopic
        jitter)."""
        window = self._intervals.get((observer, peer))
        if window is None or len(window) < 4:
            # Cold start: too little history for an estimate — fall
            # back to the fixed timeout rule.
            return math.inf if elapsed > self.config.timeout else 0.0
        mean = sum(window) / len(window)
        var = sum((x - mean) ** 2 for x in window) / len(window)
        std = max(math.sqrt(var), 0.25 * mean, 1e-12)
        y = (elapsed - mean) / std
        p_later = 0.5 * math.erfc(y / math.sqrt(2.0))
        return -math.log10(max(p_later, 1e-30))

    def _detector(self, rank: int):
        machine = self.machine
        sim = machine.sim
        cfg = self.config
        period = cfg.period
        timeout = cfg.timeout
        confirm_timeout = cfg.confirm_timeout
        phi_suspect = cfg.phi_suspect
        phi = self._phi
        faults = machine.network.faults
        straggling = faults is not None and bool(faults.stragglers)
        while True:
            delay = period
            if straggling:
                # A straggling image's own detector ticks slower too —
                # its heartbeats go out at the degraded cadence.
                delay *= faults.service_factor(rank, sim.now)
            yield Delay(delay)
            now = sim.now
            # O(tree_radix) work per tick: only tree neighbours are
            # watched and heartbeated, never all peers.
            peers = sorted(self.monitored_peers(rank))
            heard = self._last_heard.get(rank)
            if heard is None:
                heard = self._last_heard[rank] = {}
            for peer in peers:
                if peer == rank or peer in self.confirmed:
                    continue
                # A peer first watched on this tick (startup, or just
                # adopted after the tree healed) is measured from now.
                elapsed = now - heard.setdefault(peer, now)
                if peer in self.suspects:
                    # Level two is time-based for BOTH rules: only hard
                    # silence may trigger the irreversible verdict.
                    if elapsed > confirm_timeout:
                        self.confirm(peer)
                    continue
                if phi:
                    if self._phi_value(rank, peer, elapsed) >= phi_suspect:
                        self.publish(peer)
                elif elapsed > timeout:
                    self.publish(peer)
            for peer in peers:
                if peer == rank or peer in self.confirmed:
                    continue
                # Suspected-but-unconfirmed peers keep receiving
                # heartbeats: these probes (best-effort, so they bypass
                # the quarantine) are what lets a falsely-suspected peer
                # answer back and be unsuspected after a partition heals.
                machine.am.request_nb(
                    rank, peer, _HB, category=AMCategory.SHORT,
                    best_effort=True, kind="fail.hb",
                )
            machine.stats.incr("fail.hb_rounds")

    # ------------------------------------------------------------------ #
    # Membership transitions
    # ------------------------------------------------------------------ #

    def _gossip(self, op: str, peer: int) -> None:
        """Broadcast a membership transition to every other process.

        Under the simulator the suspect/confirmed sets are one shared
        structure (an idealized membership service); on real processes
        each worker holds its own copy, so the observer that makes a
        transition tells everyone else.  Best-effort SHORT messages
        (verdicts about a dead peer must not park in its quarantine);
        application is idempotent at the receiver, so crossed gossip
        converges — every *effective* transition is broadcast exactly
        once and applied at most once per machine, which keeps the
        membership generation counters equal across workers (the
        ft_epoch report rounds compare them)."""
        machine = self.machine
        if machine.backend == "sim":
            return
        src = machine.local_ranks[0]
        for dst in range(self.n_images):
            if dst == src:
                continue
            machine.am.request_nb(
                src, dst, _MEMBER, args=(op, peer),
                category=AMCategory.SHORT, best_effort=True,
                kind="fail.member",
            )

    def publish(self, peer: int, gossip: bool = True) -> None:
        """Level one — SUSPECTED: park traffic toward ``peer`` in the
        transport quarantine.  Revocable; nothing is reconciled yet."""
        if peer in self.suspects:
            return
        machine = self.machine
        machine.network.mark_suspect(peer)
        self.gen += 1
        now = machine.sim.now
        self.suspected_at[peer] = now
        machine.stats.incr("fail.suspected")
        t_dead = machine.dead_at.get(peer)
        if t_dead is None:
            machine.stats.incr("fail.false_suspected")
        else:
            self.suspect_latency.append(now - t_dead)
        if machine.tracer is not None:
            machine.tracer.instant(peer, "fail.suspected", now,
                                   args={"gen": self.gen})
        if gossip:
            self._gossip("suspect", peer)
        self.check_stop()

    def confirm(self, peer: int, gossip: bool = True) -> None:
        """Level two — CONFIRMED_DEAD: fail the quarantined traffic and
        reconcile the survivors' finish frames."""
        if peer in self.confirmed:
            return
        machine = self.machine
        machine.network.confirm_dead(peer)
        self.gen += 1
        now = machine.sim.now
        machine.stats.incr("fail.confirmed")
        t_dead = machine.dead_at.get(peer)
        if t_dead is None:
            machine.stats.incr("fail.false_confirmed")
        else:
            self.confirm_latency.append(now - t_dead)
        if machine.tracer is not None:
            machine.tracer.instant(peer, "fail.confirmed", now,
                                   args={"gen": self.gen})
        if gossip:
            self._gossip("confirm", peer)
        machine._on_confirm(peer)
        self.check_stop()

    def unsuspect(self, peer: int, gossip: bool = True) -> None:
        """A merely-suspected peer delivered: the suspicion was false.
        Bump its incarnation and flush the quarantined traffic."""
        if peer in self.confirmed or peer in self.machine.dead_images:
            return
        machine = self.machine
        self.gen += 1
        self.incarnations[peer] += 1
        self.recovered.add(peer)
        t0 = self.suspected_at.pop(peer, None)
        now = machine.sim.now
        if t0 is not None:
            self.time_to_unsuspect.append(now - t0)
        machine.stats.incr("fail.unsuspected")
        if machine.tracer is not None:
            machine.tracer.instant(peer, "fail.unsuspected", now,
                                   args={"gen": self.gen,
                                         "incarnation": self.incarnations[peer]})
        machine._on_heal(peer)
        # Flush after the heal: quarantined deliveries must find the
        # frames un-reconciled when their counter callbacks run.
        machine.network.unmark_suspect(peer)
        if gossip:
            self._gossip("unsuspect", peer)

    def resurrect(self, peer: int, gossip: bool = True) -> None:
        """A *confirmed* peer delivered — the irreversible verdict was
        wrong after all.  Undo it: replay the reconciliation algebra in
        reverse so the peer's counter stamps count again."""
        machine = self.machine
        if peer in machine.dead_images:
            return  # physically dead; a live delivery cannot happen
        self.confirmed.discard(peer)
        self.suspects.discard(peer)
        self.gen += 1
        self.incarnations[peer] += 1
        self.recovered.add(peer)
        t0 = self.suspected_at.pop(peer, None)
        now = machine.sim.now
        if t0 is not None:
            self.time_to_unsuspect.append(now - t0)
        machine.stats.incr("fail.resurrected")
        if machine.tracer is not None:
            machine.tracer.instant(peer, "fail.resurrected", now,
                                   args={"gen": self.gen,
                                         "incarnation": self.incarnations[peer]})
        machine._on_heal(peer)
        if gossip:
            self._gossip("resurrect", peer)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def alive_members(self, team) -> list[int]:
        """Team members not currently suspected, in world-rank order —
        the responsiveness view (who to pick as a coordinator, who to
        wait on synchronously).  NOT a soundness boundary: use
        :meth:`required_members` for any quorum whose completeness a
        correctness argument depends on."""
        return [r for r in sorted(team) if r not in self.suspects]

    def required_members(self, team) -> list[int]:
        """Team members a finish verdict must account for: everyone not
        CONFIRMED dead.  A merely-suspected member is alive until proven
        otherwise and still holds un-reconciled counters; summing
        ``sent - completed`` over a subset that excludes it is not a
        consistent cut — its unmatched completions and sends flow
        through the survivors' counters with opposite signs and can
        cancel to a spurious zero verdict while it holds live work.
        Confirmed deaths are excluded exactly because
        ``reconcile_failure`` folded their stamps into the survivors."""
        return [r for r in sorted(team) if r not in self.confirmed]

    def has_failed(self, team) -> bool:
        """Whether any team member is CONFIRMED dead (mere suspicion is
        revocable and must not abort anything)."""
        return any(r in self.confirmed for r in team)


def _heartbeat_handler(ctx) -> None:
    """Inline no-op: the delivery itself refreshed the last-heard clock
    through the transport's on_delivery hook."""


def _make_member_handler(machine):
    """Apply a gossiped membership transition, guarded so an already-
    applied (or since-reversed) transition is a no-op — the idempotence
    that keeps per-machine generation counters converging in process
    mode (see :meth:`FailureService._gossip`)."""
    def handle_member(ctx, op: str, peer: int) -> None:
        service = machine.failure
        if service is None:
            return
        if op == "suspect":
            service.publish(peer, gossip=False)
        elif op == "confirm":
            service.confirm(peer, gossip=False)
        elif op == "unsuspect":
            if peer in service.suspects and peer not in service.confirmed:
                service.unsuspect(peer, gossip=False)
        elif op == "resurrect":
            if peer in service.confirmed:
                service.resurrect(peer, gossip=False)
    return handle_member
