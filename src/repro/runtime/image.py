"""The per-image programming interface.

SPMD kernels are generator functions receiving an :class:`Image` handle —
the CAF 2.0 "process image" as seen from one activation::

    def kernel(img):
        A = img.machine.coarray_by_name("A")
        yield from img.finish_begin()
        yield from img.spawn(work, (img.rank + 1) % img.nimages)
        yield from img.finish_end()

Blocking operations are generators (call with ``yield from``);
asynchronous operations return immediately with an
:class:`~repro.core.completion.AsyncOp`.

An Image is bound to one *activation* (a main program or one shipped-
function execution); shipped functions receive their own Image on the
target, so ``rank``, pending-op tracking and finish attribution are
always correct for the executing scope.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, TYPE_CHECKING

import numpy as np

from repro.sim.tasks import Delay
from repro.runtime.coarray import Coarray, CoarrayRef
from repro.runtime.event import EventRef, EventVar
from repro.runtime.memory_model import Activation
from repro.runtime.team import Team
from repro.core import cofence as _cofence
from repro.core import collectives as _coll
from repro.core import collectives_async as _acoll
from repro.core import copy_async as _copy
from repro.core import finish as _finish
from repro.core import spawn as _spawn

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.program import Machine


class ImageState:
    """Durable per-rank state shared by all of the rank's activations.

    Compact and lazy by design: machines are built for thousands of
    images (DESIGN.md §13), so the per-rank footprint is a handful of
    slots and the random stream is only drawn from the pool when the
    image first asks for randomness."""

    __slots__ = ("machine", "world_rank", "_rng", "finish_stack",
                 "_finish_seq", "_coll_seq")

    def __init__(self, machine: "Machine", world_rank: int):
        self.machine = machine
        self.world_rank = world_rank
        self._rng = None
        #: stack of open finish frames of the main program
        self.finish_stack: list = []
        self._finish_seq: dict[int, int] = {}
        self._coll_seq: dict[int, int] = {}

    @property
    def rng(self) -> np.random.Generator:
        """This rank's deterministic stream, materialized on first use
        (bit-identical to eager creation: pool streams are keyed by
        index, not creation order)."""
        rng = self._rng
        if rng is None:
            rng = self._rng = self.machine.rng_pool[self.world_rank]
        return rng

    def next_finish_seq(self, team_id: int) -> int:
        seq = self._finish_seq.get(team_id, 0)
        self._finish_seq[team_id] = seq + 1
        return seq

    def next_coll_seq(self, team_id: int) -> int:
        seq = self._coll_seq.get(team_id, 0)
        self._coll_seq[team_id] = seq + 1
        return seq


class Image:
    """The handle SPMD kernels and shipped functions program against."""

    __slots__ = ("machine", "rank", "activation")

    def __init__(self, machine: "Machine", world_rank: int,
                 activation: Activation):
        self.machine = machine
        self.rank = world_rank
        self.activation = activation

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def team_world(self) -> Team:
        return self.machine.team_world

    @property
    def nimages(self) -> int:
        return self.machine.n_images

    @property
    def rng(self) -> np.random.Generator:
        """This image's deterministic random stream."""
        return self.machine.image_state(self.rank).rng

    @property
    def now(self) -> float:
        """Current simulated time, seconds."""
        return self.machine.sim.now

    def team_rank(self, team: Optional[Team] = None) -> int:
        """My rank within ``team`` (default: the world team)."""
        return (team or self.team_world).rank_of(self.rank)

    # ------------------------------------------------------------------ #
    # Failure introspection (DESIGN §11)
    # ------------------------------------------------------------------ #

    def failed_images(self, team: Optional[Team] = None) -> list[int]:
        """World ranks of ``team`` members this image's runtime suspects
        have fail-stopped (empty without a failure detector — survivors
        have no way to know)."""
        failure = self.machine.failure
        if failure is None:
            return []
        team = team if team is not None else self.team_world
        return [r for r in sorted(team) if r in failure.suspects]

    def image_failed(self, world_rank: int) -> bool:
        """Is ``world_rank`` currently suspected dead by the failure
        detector?"""
        failure = self.machine.failure
        return failure is not None and world_rank in failure.suspects

    def alive_images(self, team: Optional[Team] = None) -> list[int]:
        """Team members not suspected dead, in world-rank order."""
        team = team if team is not None else self.team_world
        failure = self.machine.failure
        return team.alive_members(failure.suspects if failure else ())

    def suspected_images(self, team: Optional[Team] = None) -> list[int]:
        """World ranks currently SUSPECTED but not yet confirmed dead —
        quarantined, possibly just slow (DESIGN §12)."""
        failure = self.machine.failure
        if failure is None:
            return []
        team = team if team is not None else self.team_world
        return [r for r in sorted(team)
                if r in failure.suspects and r not in failure.confirmed]

    def confirmed_dead_images(self, team: Optional[Team] = None) -> list[int]:
        """World ranks whose death the detector has CONFIRMED (silent
        past the confirmation timeout; reconciled out of finish)."""
        failure = self.machine.failure
        if failure is None:
            return []
        team = team if team is not None else self.team_world
        return [r for r in sorted(team) if r in failure.confirmed]

    def recovered_images(self, team: Optional[Team] = None) -> list[int]:
        """World ranks that were suspected (or even confirmed) and later
        proved alive — each carries a bumped incarnation number."""
        failure = self.machine.failure
        if failure is None:
            return []
        team = team if team is not None else self.team_world
        return [r for r in sorted(team) if r in failure.recovered]

    def image_incarnation(self, world_rank: int) -> int:
        """Incarnation number of ``world_rank``: bumped each time a
        suspicion against it is retracted (0 = never falsely suspected)."""
        failure = self.machine.failure
        if failure is None:
            return 0
        return failure.incarnations[world_rank]

    # ------------------------------------------------------------------ #
    # Computation
    # ------------------------------------------------------------------ #

    def compute(self, seconds: float) -> Generator[Any, Any, None]:
        """Model ``seconds`` of local computation (accrues busy time,
        which the harness turns into load-balance and efficiency plots).
        An active straggler fault on this image stretches the wall-clock
        duration by its service factor — the *work* is unchanged, the
        image is just slow (gray failure, DESIGN §12)."""
        if seconds < 0:
            raise ValueError(f"negative compute time {seconds!r}")
        self.machine.busy.add(self.rank, seconds)
        faults = self.machine.network.faults
        wall = seconds
        if faults is not None and faults.stragglers:
            wall = seconds * faults.service_factor(self.rank, self.now)
        if self.machine.tracer is not None:
            self.machine.tracer.span(self.rank, "compute", self.now,
                                     wall)
        yield Delay(wall)

    # ------------------------------------------------------------------ #
    # Asynchronous operations (paper §II-C)
    # ------------------------------------------------------------------ #

    def copy_async(self, dest, src, pre_event=None, src_event=None,
                   dest_event=None):
        """Predicated asynchronous copy; see :func:`repro.core.copy_async
        .copy_async`."""
        return _copy.copy_async(self, dest, src, pre_event=pre_event,
                                src_event=src_event, dest_event=dest_event)

    def spawn(self, fn, target: int, *args,
              team: Optional[Team] = None, event=None):
        """Ship ``fn`` to ``target`` (blocking only on flow-control
        credits); see :func:`repro.core.spawn.spawn`."""
        return (yield from _spawn.spawn(self, fn, target, *args,
                                        team=team, event=event))

    # -- asynchronous collectives -------------------------------------- #

    def broadcast_async(self, buf, root: int = 0, team: Optional[Team] = None,
                        src_event=None, local_event=None, radix: int = 2):
        return _acoll.broadcast_async(self, buf, root=root, team=team,
                                      src_event=src_event,
                                      local_event=local_event, radix=radix)

    def reduce_async(self, value, recvbuf=None, op="sum", root: int = 0,
                     team: Optional[Team] = None, src_event=None,
                     local_event=None, radix: int = 2):
        return _acoll.reduce_async(self, value, recvbuf=recvbuf, op=op,
                                   root=root, team=team, src_event=src_event,
                                   local_event=local_event, radix=radix)

    def allreduce_async(self, value, result_buf=None, op="sum",
                        team: Optional[Team] = None, src_event=None,
                        local_event=None, radix: int = 2):
        return _acoll.allreduce_async(self, value, result_buf=result_buf,
                                      op=op, team=team, src_event=src_event,
                                      local_event=local_event, radix=radix)

    def barrier_async(self, team: Optional[Team] = None, src_event=None,
                      local_event=None):
        return _acoll.barrier_async(self, team=team, src_event=src_event,
                                    local_event=local_event)

    def gather_async(self, value, root: int = 0, team: Optional[Team] = None,
                     src_event=None, local_event=None):
        return _acoll.gather_async(self, value, root=root, team=team,
                                   src_event=src_event,
                                   local_event=local_event)

    def scatter_async(self, values, root: int = 0,
                      team: Optional[Team] = None, src_event=None,
                      local_event=None):
        return _acoll.scatter_async(self, values, root=root, team=team,
                                    src_event=src_event,
                                    local_event=local_event)

    def allgather_async(self, value, team: Optional[Team] = None,
                        src_event=None, local_event=None):
        return _acoll.allgather_async(self, value, team=team,
                                      src_event=src_event,
                                      local_event=local_event)

    def alltoall_async(self, values, team: Optional[Team] = None,
                       src_event=None, local_event=None):
        return _acoll.alltoall_async(self, values, team=team,
                                     src_event=src_event,
                                     local_event=local_event)

    def scan_async(self, value, op="sum", team: Optional[Team] = None,
                   inclusive: bool = True, src_event=None, local_event=None):
        return _acoll.scan_async(self, value, op=op, team=team,
                                 inclusive=inclusive, src_event=src_event,
                                 local_event=local_event)

    def sort_async(self, values, team: Optional[Team] = None,
                   src_event=None, local_event=None):
        return _acoll.sort_async(self, values, team=team,
                                 src_event=src_event,
                                 local_event=local_event)

    # ------------------------------------------------------------------ #
    # Synchronization constructs (paper §III)
    # ------------------------------------------------------------------ #

    def finish_begin(self, team: Optional[Team] = None):
        """Enter a finish block; see :func:`repro.core.finish.finish_begin`."""
        return (yield from _finish.finish_begin(self, team=team))

    def finish_end(self, detector: str = "epoch"):
        """Leave a finish block (global termination detection); returns the
        number of allreduce waves used."""
        return (yield from _finish.finish_end(self, detector=detector))

    def cofence(self, downward: Optional[str] = None,
                upward: Optional[str] = None):
        """Local-data-completion fence; see :func:`repro.core.cofence.cofence`."""
        yield from _cofence.cofence(self, downward=downward, upward=upward)

    def event_wait(self, event: EventVar | EventRef, count: int = 1
                   ) -> Generator[Any, Any, None]:
        """Block until ``count`` posts are available on my local counter
        of ``event``, then consume them.  Acquire semantics (§III-B.4b):
        earlier operations may still be completing."""
        ev, home = self._event_home(event)
        if home != self.rank:
            raise ValueError(
                "event_wait must name the caller's own counter "
                f"(waiting on image {home} from image {self.rank})"
            )
        self.machine.stats.incr("event.waits")
        yield from ev.consume_when_ready(self.rank, count)
        if self.machine.racecheck is not None:
            self.machine.racecheck.event_acquire(self.activation,
                                                 ev.ref_for(home))

    def event_notify(self, event: EventVar | EventRef, count: int = 1
                     ) -> Generator[Any, Any, None]:
        """Post ``event`` (on its home image).  Release semantics
        (§III-B.4a): the notification is held back until the remote
        effects of this activation's earlier implicit operations are
        visible, so a waiter that observes the post also observes the
        data."""
        release = self.activation.release_waits()
        if release:
            from repro.sim.tasks import all_of
            yield all_of(release, "notify.release")
        ev, home = self._event_home(event)
        self.machine.stats.incr("event.notifies")
        if self.machine.racecheck is not None:
            self.machine.racecheck.notify(self.activation, ev.ref_for(home))
        self.machine.post_event(ev.ref_for(home), from_rank=self.rank,
                                count=count)

    def _event_home(self, event) -> tuple[EventVar, int]:
        if isinstance(event, EventRef):
            return event.event, event.world_rank
        if isinstance(event, EventVar):
            return event, self.rank
        raise TypeError(
            f"expected EventVar or EventRef, got {type(event).__name__}"
        )

    # ------------------------------------------------------------------ #
    # Blocking collectives and data movement
    # ------------------------------------------------------------------ #

    def _rc_coll_enter(self, team: Optional[Team], contribute: bool = True):
        """Race-detector entry edge for a blocking collective; returns the
        round key to hand back to :meth:`_rc_coll_exit` (None when the
        detector is off).  Rooted collectives pass ``contribute``/``join``
        flags matching their actual message flow (a reduce orders nothing
        for non-roots on exit; a broadcast contributes nothing but the
        root's clock)."""
        rc = self.machine.racecheck
        if rc is None:
            return None
        team = team if team is not None else self.team_world
        return rc.coll_enter(self.activation, team, contribute=contribute)

    def _rc_coll_exit(self, key, join: bool = True) -> None:
        if key is not None:
            self.machine.racecheck.coll_exit(self.activation, key, join=join)

    def _is_root(self, root: int, team: Optional[Team]) -> bool:
        team = team if team is not None else self.team_world
        return team.rank_of(self.rank) == root

    def barrier(self, team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        yield from _coll.barrier(self, team=team)
        self._rc_coll_exit(key)

    def allreduce(self, value, op="sum", team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.allreduce(self, value, op=op, team=team)
        self._rc_coll_exit(key)
        return result

    def reduce(self, value, op="sum", root: int = 0,
               team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.reduce(self, value, op=op, root=root,
                                         team=team)
        self._rc_coll_exit(key, join=self._is_root(root, team))
        return result

    def broadcast(self, value, root: int = 0, team: Optional[Team] = None):
        key = self._rc_coll_enter(team, contribute=self._is_root(root, team))
        result = yield from _coll.broadcast(self, value, root=root, team=team)
        self._rc_coll_exit(key)
        return result

    def gather(self, value, root: int = 0, team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.gather(self, value, root=root, team=team)
        self._rc_coll_exit(key, join=self._is_root(root, team))
        return result

    def allgather(self, value, team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.allgather(self, value, team=team)
        self._rc_coll_exit(key)
        return result

    def scatter(self, values, root: int = 0, team: Optional[Team] = None):
        key = self._rc_coll_enter(team, contribute=self._is_root(root, team))
        result = yield from _coll.scatter(self, values, root=root, team=team)
        self._rc_coll_exit(key)
        return result

    def alltoall(self, values, team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.alltoall(self, values, team=team)
        self._rc_coll_exit(key)
        return result

    def scan(self, value, op="sum", team: Optional[Team] = None,
             inclusive: bool = True):
        key = self._rc_coll_enter(team)
        result = yield from _coll.scan(self, value, op=op, team=team,
                                       inclusive=inclusive)
        self._rc_coll_exit(key)
        return result

    def sort(self, values, team: Optional[Team] = None):
        key = self._rc_coll_enter(team)
        result = yield from _coll.sort(self, values, team=team)
        self._rc_coll_exit(key)
        return result

    def team_split(self, team: Team, color: int, key: int):
        """Collectively split ``team``; returns my new team (§II-A)."""
        rc_key = self._rc_coll_enter(team)
        result = yield from _coll.team_split(self, team, color, key)
        self._rc_coll_exit(rc_key)
        return result

    def ring_allreduce(self, array, op="sum", team: Optional[Team] = None):
        """Bandwidth-optimal array allreduce (ring reduce-scatter +
        allgather); see :mod:`repro.core.collectives_algos`."""
        from repro.core import collectives_algos as _algos
        key = self._rc_coll_enter(team)
        result = yield from _algos.ring_allreduce(self, array, op=op,
                                                  team=team)
        self._rc_coll_exit(key)
        return result

    def pipelined_broadcast(self, array, root: int = 0,
                            team: Optional[Team] = None, segments: int = 8):
        """Chain-pipelined bulk broadcast; see
        :mod:`repro.core.collectives_algos`."""
        from repro.core import collectives_algos as _algos
        key = self._rc_coll_enter(team, contribute=self._is_root(root, team))
        result = yield from _algos.pipelined_broadcast(
            self, array, root=root, team=team, segments=segments)
        self._rc_coll_exit(key)
        return result

    def wait_all(self, ops) -> Generator[Any, Any, None]:
        """Block until every given AsyncOp is globally done."""
        from repro.sim.tasks import all_of
        ops = list(ops)
        futures = [op.global_done for op in ops]
        if futures:
            yield all_of(futures, "wait_all")
        if self.machine.racecheck is not None:
            for op in ops:
                self.machine.racecheck.op_waited(self.activation, op)

    def wait_any(self, ops) -> Generator[Any, Any, int]:
        """Block until one of the AsyncOps is globally done; returns its
        index in the input sequence."""
        from repro.sim.tasks import any_of
        ops = list(ops)
        if not ops:
            raise ValueError("wait_any of no operations")
        index, _value = yield any_of([op.global_done for op in ops],
                                     "wait_any")
        if self.machine.racecheck is not None:
            self.machine.racecheck.op_waited(self.activation, ops[index])
        return index

    def get(self, src: CoarrayRef) -> Generator[Any, Any, Any]:
        """Blocking one-sided read of a (remote) coarray section.  Returns
        an array for section reads, a scalar for element reads."""
        sample = src.coarray.local_at(src.world_rank)[src.index]
        scalar = np.ndim(sample) == 0
        buf = np.empty_like(np.atleast_1d(np.asarray(sample)))
        op = _copy.copy_async(self, buf, src, _explicit=True)
        yield op.local_data
        if self.machine.racecheck is not None:
            self.machine.racecheck.op_waited(self.activation, op, "local")
        self.machine.stats.incr("blocking.gets")
        return buf[0] if scalar else buf

    def put(self, dest: CoarrayRef, data) -> Generator[Any, Any, None]:
        """Blocking one-sided write to a (remote) coarray section; returns
        once the write is visible at the destination."""
        buf = np.asarray(data)
        op = _copy.copy_async(self, dest, buf, _explicit=True)
        yield op.global_done
        if self.machine.racecheck is not None:
            self.machine.racecheck.op_waited(self.activation, op)
        self.machine.stats.incr("blocking.puts")

    # ------------------------------------------------------------------ #
    # Direct local accesses (race-detector-visible)
    # ------------------------------------------------------------------ #

    def _rc_access(self, target, write: bool) -> None:
        """Report a synchronous local access to the race detector (no-op
        when detection is off).  Used by the interpreter's coarray
        accesses and the local_read/local_write convenience API."""
        if self.machine.racecheck is not None:
            self.machine.racecheck.record_direct(self.activation, target,
                                                 self.rank, write)

    def _local_ref(self, target) -> CoarrayRef:
        if isinstance(target, Coarray):
            target = CoarrayRef(target, self.rank, slice(None))
        if not isinstance(target, CoarrayRef):
            raise TypeError(
                f"expected a Coarray or CoarrayRef, got "
                f"{type(target).__name__}")
        if target.world_rank != self.rank:
            raise ValueError(
                f"local access to coarray {target.coarray.name!r} on image "
                f"{target.world_rank} from image {self.rank}; use get/put "
                "for remote sections")
        return target

    def local_read(self, target):
        """Read my section (or an element) of a coarray — or a local numpy
        buffer — through the instrumented access path: equivalent to plain
        numpy indexing, but the race detector sees it."""
        if isinstance(target, np.ndarray):
            self._rc_access(target, write=False)
            return target
        ref = self._local_ref(target)
        self._rc_access(ref, write=False)
        return ref.read()

    def local_write(self, target, value) -> None:
        """Write my section (or an element) of a coarray — or a local
        numpy buffer — through the instrumented access path."""
        if isinstance(target, np.ndarray):
            self._rc_access(target, write=True)
            target[...] = value
            return
        ref = self._local_ref(target)
        self._rc_access(ref, write=True)
        ref.write(value)
