"""The relaxed memory model: pending-op tracking and reorder legality.

CAF 2.0 uses a relaxed memory model (paper §III): asynchronous operations,
coarray reads/writes and event notify/wait are unordered unless a
synchronization construct orders them.  This module supplies:

- :class:`PendingOp` — the record an asynchronous operation leaves behind
  on its initiating activation until it completes, classified by whether
  it *reads* and/or *writes* local memory (the classes ``cofence``
  filters on);
- :class:`Activation` — one dynamic scope of execution (an image's main
  program, or one shipped-function execution).  ``cofence`` inside a
  shipped function only sees operations launched by that function
  (paper §III-B.3, "dynamic scoping"), which falls out of pending ops
  living on the activation;
- :class:`ReorderOracle` — a pure-logic encoding of the legality rules of
  §III (which operations may hoist above / sink below a fence, an
  event_notify (release) or an event_wait (acquire)).  The simulator
  executes in program order, so the oracle is how we *test* the model:
  property tests enumerate reorderings and check them against it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from repro.sim.tasks import Future

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.image import ImageState


# --------------------------------------------------------------------- #
# Operation classes
# --------------------------------------------------------------------- #

#: operation reads local memory (e.g. an async copy out of a local buffer)
READ = "read"
#: operation writes local memory (e.g. an async copy into a local buffer)
WRITE = "write"
#: both classes — the wildcard argument value for cofence
ANY = "any"

_VALID_CLASSES = frozenset({READ, WRITE})


def classes_of(reads_local: bool, writes_local: bool) -> frozenset:
    out = set()
    if reads_local:
        out.add(READ)
    if writes_local:
        out.add(WRITE)
    return frozenset(out)


def allowed_set(arg: Optional[str]) -> frozenset:
    """Map a cofence argument (None/READ/WRITE/ANY) to the set of classes
    allowed to pass the fence in that direction."""
    if arg is None:
        return frozenset()
    if arg == ANY:
        return _VALID_CLASSES
    if arg in _VALID_CLASSES:
        return frozenset({arg})
    raise ValueError(
        f"invalid cofence class {arg!r}; expected READ, WRITE, ANY or None"
    )


def may_pass(op_classes: frozenset, allowed: frozenset) -> bool:
    """An operation passes a fence direction only if *every* class of its
    local effect is allowed (paper §III-B: an op that both reads and
    writes is constrained by the stricter class)."""
    return op_classes <= allowed


# --------------------------------------------------------------------- #
# Pending operations
# --------------------------------------------------------------------- #

class PendingOp:
    """One in-flight asynchronous operation with implicit completion.

    Completion futures correspond to the paper's Fig. 1 timeline:

    - ``local_data``: inputs on the initiating image may be overwritten,
      outputs may be read (what ``cofence`` waits on);
    - ``local_op``: pairwise communication involving the initiator is
      done (what an event attached to the op would signal);
    - ``released``: the operation's remote effect is visible at its
      destination — what an ``event_notify`` (release) must wait for
      before signalling other images.
    """

    #: process-wide fallback only; machines pass their own ``op_id`` so
    #: id streams are reproducible run-to-run (see Machine.next_op_id)
    _ids = itertools.count()

    __slots__ = ("op_id", "kind", "classes", "local_data", "local_op",
                 "released", "started", "rc")

    def __init__(self, kind: str, reads_local: bool, writes_local: bool,
                 local_data: Future, local_op: Future,
                 released: Optional[Future] = None,
                 op_id: Optional[int] = None):
        self.op_id = op_id if op_id is not None else next(PendingOp._ids)
        self.kind = kind
        self.classes = classes_of(reads_local, writes_local)
        self.local_data = local_data
        self.local_op = local_op
        self.released = released if released is not None else local_op
        #: False while the op is gated behind an unposted predicate event;
        #: such an op is ordered by its own predicate, not by a release —
        #: event_notify must not wait for it (that would deadlock a
        #: notify that *is* the predicate).
        self.started = True
        #: race-detector clock material (analysis.racecheck), when enabled
        self.rc = None

    def __repr__(self) -> str:
        return (f"<PendingOp #{self.op_id} {self.kind} "
                f"classes={sorted(self.classes)}>")


class Activation:
    """A dynamic scope: the unit `cofence` and finish-counting bind to.

    Every image's main program is one activation; every shipped-function
    execution gets a fresh one (carrying the finish frame of its spawner).

    Slotted: one activation exists per main program and per in-flight
    shipped function, which at paper-scale image counts makes this one
    of the hottest allocations in the runtime (DESIGN.md §13).
    """

    __slots__ = ("image_state", "finish_frame", "name", "_pending", "rc",
                 "cause")

    def __init__(self, image_state: "ImageState",
                 finish_frame=None, name: str = "main"):
        self.image_state = image_state
        self.finish_frame = finish_frame
        self.name = name
        self._pending: list[PendingOp] = []
        #: race-detector thread clock (analysis.racecheck), when enabled
        self.rc = None
        #: the finish receive stamp of the message that started this
        #: activation (shipped functions only; None for main programs).
        #: Sends issued by the activation inherit their epoch tag from
        #: it — see FinishFrame.on_send's causal classification.
        self.cause = None

    def current_frame(self):
        """The finish frame this activation's implicit ops count toward:
        a shipped function is pinned to its spawner's frame; the main
        activation tracks the image's innermost open finish block."""
        if self.finish_frame is not None:
            return self.finish_frame
        stack = self.image_state.finish_stack
        return stack[-1] if stack else None

    @property
    def in_shipped_function(self) -> bool:
        return self.finish_frame is not None

    # -- registration ---------------------------------------------------- #

    def register(self, op: PendingOp) -> PendingOp:
        self._pending.append(op)
        return op

    def _prune(self) -> None:
        self._pending = [
            op for op in self._pending
            if not (op.local_data.done and op.released.done)
        ]

    @property
    def pending(self) -> list[PendingOp]:
        self._prune()
        return list(self._pending)

    # -- what fences wait on ---------------------------------------------- #

    def fence_waits(self, downward_allowed: frozenset) -> list[Future]:
        """Local-data futures a cofence with this downward filter must
        await: every pending implicit op whose class set is NOT allowed
        to defer completion past the fence."""
        self._prune()
        return [
            op.local_data for op in self._pending
            if not op.local_data.done
            and not may_pass(op.classes, downward_allowed)
        ]

    def release_waits(self) -> list[Future]:
        """Futures an event_notify must await so that the notification
        cannot overtake the remote effects of earlier implicit ops.
        Predicate-gated ops that have not started are exempt (see
        :attr:`PendingOp.started`)."""
        self._prune()
        return [op.released for op in self._pending
                if op.started and not op.released.done]


# --------------------------------------------------------------------- #
# The reorder-legality oracle
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class OpItem:
    """An asynchronous operation in an abstract program trace."""
    name: str
    reads_local: bool = False
    writes_local: bool = False

    @property
    def classes(self) -> frozenset:
        return classes_of(self.reads_local, self.writes_local)


@dataclass(frozen=True)
class FenceItem:
    """A cofence with its two direction arguments."""
    downward: Optional[str] = None
    upward: Optional[str] = None


@dataclass(frozen=True)
class NotifyItem:
    """event_notify — release semantics (§III-B.4a)."""


@dataclass(frozen=True)
class WaitItem:
    """event_wait — acquire semantics (§III-B.4b)."""


class ReorderOracle:
    """Pairwise legality of moving operations across synchronization items.

    Two questions, matching the two halves of Fig. 1's discussion:

    - may an operation *before* the item defer its completion until after
      it (``may_sink``)?
    - may an operation *after* the item be initiated before it
      (``may_hoist``)?
    """

    @staticmethod
    def may_sink(op: OpItem, item) -> bool:
        if isinstance(item, FenceItem):
            return may_pass(op.classes, allowed_set(item.downward))
        if isinstance(item, NotifyItem):
            # Release: nothing moves downward past a notify.
            return False
        if isinstance(item, WaitItem):
            # Acquire: earlier operations may complete after the wait.
            return True
        raise TypeError(f"not a synchronization item: {item!r}")

    @staticmethod
    def may_hoist(op: OpItem, item) -> bool:
        if isinstance(item, FenceItem):
            return may_pass(op.classes, allowed_set(item.upward))
        if isinstance(item, NotifyItem):
            # Release is porous upward: later ops may start before it.
            return True
        if isinstance(item, WaitItem):
            # Acquire: nothing after the wait may begin before it.
            return False
        raise TypeError(f"not a synchronization item: {item!r}")

    @classmethod
    def completion_must_precede(cls, program: list, op_index: int,
                                item_index: int) -> bool:
        """True if program[op_index] (an op, before item_index) must be
        locally complete before the synchronization item fires."""
        if not isinstance(program[op_index], OpItem):
            raise TypeError("op_index must name an OpItem")
        if op_index >= item_index:
            raise ValueError("op must precede the item in program order")
        return not cls.may_sink(program[op_index], program[item_index])

    @classmethod
    def initiation_must_follow(cls, program: list, item_index: int,
                               op_index: int) -> bool:
        """True if program[op_index] (an op, after item_index) must not be
        initiated until the synchronization item completes."""
        if not isinstance(program[op_index], OpItem):
            raise TypeError("op_index must name an OpItem")
        if op_index <= item_index:
            raise ValueError("op must follow the item in program order")
        return not cls.may_hoist(program[op_index], program[item_index])

    @classmethod
    def legal_initiation_orders(cls, program: list) -> Iterable[tuple]:
        """Enumerate permutations of the program's OpItems that respect
        every hoist/sink constraint (used by property tests on small
        programs).  Yields tuples of op names."""
        ops = [(i, it) for i, it in enumerate(program) if isinstance(it, OpItem)]
        syncs = [(i, it) for i, it in enumerate(program)
                 if not isinstance(it, OpItem)]
        for perm in itertools.permutations(range(len(ops))):
            ok = True
            # position of op k in the permuted order
            pos = {ops[k][0]: slot for slot, k in enumerate(perm)}
            for (si, sitem) in syncs:
                for (oi, oitem) in ops:
                    if oi > si and not cls.may_hoist(oitem, sitem):
                        # op must stay after every op that must stay before
                        # the sync — approximate by requiring it not to be
                        # placed before any non-hoistable older op.
                        for (oj, ojtem) in ops:
                            if oj < si and not cls.may_sink(ojtem, sitem):
                                if pos[oi] < pos[oj]:
                                    ok = False
                                    break
                    if not ok:
                        break
                if not ok:
                    break
            if ok:
                yield tuple(ops[k][1].name for k in perm)
