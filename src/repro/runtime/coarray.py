"""Coarrays: shared distributed data objects allocated over a team.

A coarray has one local section per member image, all of the same shape
and dtype (CAF semantics).  Remote sections are addressed through
:class:`CoarrayRef` handles:

    A = machine.coarray("A", shape=64, dtype=np.float64, team=world)
    A.local(ctx)[...]          # my section (free, it's my memory)
    A.on(p)                    # image p's section (a reference, no data moves)
    A.on(p)[2:5]               # a slice of image p's section

``CoarrayRef`` objects are what ``copy_async``, shipped-function arguments
(by reference!), and the blocking ``ctx.get``/``ctx.put`` convenience
operations consume.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.net.gasnet import Segment
from repro.runtime.team import Team


class Coarray:
    """A distributed array: one same-shape numpy section per team member."""

    def __init__(self, name: str, team: Team, n_images: int, shape: Any,
                 dtype: Any = np.float64, fill: Any = 0):
        self.name = name
        self.team = team
        self.shape = shape
        self.dtype = np.dtype(dtype)
        self.segment = Segment(
            name, n_images, shape=shape, dtype=dtype, fill=fill,
            members=team.members,
        )

    # -- local access ---------------------------------------------------- #

    def local_at(self, world_rank: int) -> np.ndarray:
        """The section owned by ``world_rank`` (must be a team member)."""
        return self.segment.local(world_rank)

    # -- remote references ------------------------------------------------ #

    def on(self, team_rank: int) -> "ImageSection":
        """The section on team rank ``team_rank`` (no data moves)."""
        return ImageSection(self, self.team.world_rank(team_rank))

    def ref(self, team_rank: int, index: Any = slice(None)) -> "CoarrayRef":
        """Shorthand for ``self.on(team_rank)[index]``."""
        return CoarrayRef(self, self.team.world_rank(team_rank), index)

    def __repr__(self) -> str:
        return (f"<Coarray {self.name!r} team={self.team.id} "
                f"shape={self.shape} dtype={self.dtype}>")


class ImageSection:
    """``A.on(p)`` — a whole remote section, indexable into a ref."""

    __slots__ = ("coarray", "world_rank")

    def __init__(self, coarray: Coarray, world_rank: int):
        self.coarray = coarray
        self.world_rank = world_rank

    def __getitem__(self, index: Any) -> "CoarrayRef":
        return CoarrayRef(self.coarray, self.world_rank, index)

    @property
    def whole(self) -> "CoarrayRef":
        return CoarrayRef(self.coarray, self.world_rank, slice(None))


class CoarrayRef:
    """A (coarray, image, index) triple — the unit of one-sided access."""

    __slots__ = ("coarray", "world_rank", "index")

    def __init__(self, coarray: Coarray, world_rank: int, index: Any):
        if world_rank not in coarray.segment.members:
            raise ValueError(
                f"image {world_rank} holds no section of coarray "
                f"{coarray.name!r}"
            )
        self.coarray = coarray
        self.world_rank = world_rank
        self.index = index

    @property
    def nbytes(self) -> int:
        """Simulated size of the referenced elements."""
        return self.coarray.segment.nbytes_of(self.index)

    def read(self) -> np.ndarray:
        """Read the referenced elements directly (simulation-internal;
        user code should move data with copy_async/get)."""
        return np.copy(self.coarray.local_at(self.world_rank)[self.index])

    def write(self, data: Any) -> None:
        """Write the referenced elements directly (simulation-internal)."""
        local = self.coarray.local_at(self.world_rank)
        data = np.asarray(data)
        if np.ndim(local[self.index]) == 0 and data.size == 1:
            data = data.reshape(())  # size-1 payload into a scalar slot
        local[self.index] = data

    def is_local_to(self, world_rank: int) -> bool:
        return self.world_rank == world_rank

    def __repr__(self) -> str:
        return (f"<CoarrayRef {self.coarray.name}[{self.index}]"
                f"@img{self.world_rank}>")
