"""Event variables (paper §II-B).

Events are counting synchronization objects.  Declared over a team they
behave like a coarray of counters — any image may notify the event *on*
any member image; ``event_wait`` blocks the caller until its local count
is positive, then consumes one post.

The acquire/release ordering semantics (§III-B.4) — an ``event_notify``
must not let earlier implicitly-completed operations move below it, an
``event_wait`` lets earlier operations complete after it — are enforced by
the :class:`~repro.runtime.image.Image` facade, which owns the pending-op
lists; this module is only the counter substrate.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.sim.tasks import Condition
from repro.runtime.team import Team

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.program import Machine


class EventRef:
    """``ev.at(p)`` — the event's counter on a specific image."""

    __slots__ = ("event", "world_rank")

    def __init__(self, event: "EventVar", world_rank: int):
        if world_rank not in event.team:
            raise ValueError(
                f"event {event.name!r} has no counter on image {world_rank}"
            )
        self.event = event
        self.world_rank = world_rank

    def __repr__(self) -> str:
        return f"<EventRef {self.event.name}@img{self.world_rank}>"


class EventVar:
    """A counting event with one counter per team member.

    Created via :meth:`repro.runtime.program.Machine.make_event`, which
    registers it for remote posting.  Posting and waiting are mediated by
    the Image facade so that ordering semantics and network charges are
    applied; the methods here mutate counters instantaneously.
    """

    _anon = itertools.count()

    __slots__ = ("machine", "team", "name", "_counts", "_conds")

    def __init__(self, machine: "Machine", team: Team, name: str | None = None):
        self.machine = machine
        self.team = team
        self.name = name or f"_event{next(EventVar._anon)}"
        # Sparse: counters and wait conditions materialize per member on
        # first touch, so an event over 8192 images costs only what the
        # program actually posts/waits on (DESIGN.md §13).
        self._counts: dict[int, int] = {}
        self._conds: dict[int, Condition] = {}

    def _cond(self, world_rank: int) -> Condition:
        cond = self._conds.get(world_rank)
        if cond is None:
            cond = self._conds[world_rank] = Condition(
                self.machine.sim, f"{self.name}@{world_rank}")
        return cond

    # -- addressing ------------------------------------------------------ #

    def at(self, team_rank: int) -> EventRef:
        """The event counter on team rank ``team_rank``."""
        return EventRef(self, self.team.world_rank(team_rank))

    def ref_for(self, world_rank: int) -> EventRef:
        """The event counter on a world rank (internal helper)."""
        return EventRef(self, world_rank)

    # -- counter mechanics (simulation-internal) -------------------------- #

    def count_at(self, world_rank: int) -> int:
        return self._counts.get(world_rank, 0)

    def post(self, world_rank: int, count: int = 1) -> None:
        """Increment the counter on ``world_rank`` and wake waiters.

        Callers are responsible for any network charge incurred getting
        the post to ``world_rank`` (e.g. the delivery of a remote notify
        AM, or an async copy's destination-side completion).
        """
        if count <= 0:
            raise ValueError(f"post count must be positive, got {count}")
        self._counts[world_rank] = self._counts.get(world_rank, 0) + count
        self._cond(world_rank).wake()

    def consume_when_ready(self, world_rank: int, count: int = 1):
        """Generator: block until the counter on ``world_rank`` reaches
        ``count``, then consume that many posts."""
        if count <= 0:
            raise ValueError(f"wait count must be positive, got {count}")
        yield from self._cond(world_rank).wait_until(
            lambda: self._counts.get(world_rank, 0) >= count
        )
        self._counts[world_rank] -= count

    def __repr__(self) -> str:
        return f"<EventVar {self.name!r} team={self.team.id}>"
