"""Teams: first-class process subsets (paper §II-A).

A team serves three purposes in CAF 2.0: it is the allocation domain for
coarrays, a namespace of relative ranks, and an isolated domain for
collective communication.  All images start in ``team_world``; new teams
are created collectively with ``team_split`` (implemented in
:mod:`repro.core.collectives` since it is itself a collective operation).

This module holds the pure membership structure plus the tree-shape
helpers that every collective uses.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence


class Team:
    """An ordered set of world ranks.

    ``members[i]`` is the world rank of team rank ``i``.  Team ids are
    globally unique and identical on every member (they are assigned
    deterministically by the collective that creates the team), which is
    what lets finish frames and collective rendezvous match across images.
    """

    _ids = itertools.count()

    __slots__ = ("id", "members", "parent", "_rank_of")

    def __init__(self, members: Sequence[int], team_id: int | None = None,
                 parent: "Team | None" = None):
        if isinstance(members, range) and members.step == 1:
            # Contiguous membership (team_world, block splits): keep the
            # range itself — rank_of is arithmetic, so an 8192-image
            # world team costs O(1) memory instead of a list plus an
            # inverse dict (DESIGN.md §13).
            if len(members) == 0:
                raise ValueError("a team must have at least one member")
            self.members: Sequence[int] = members
            self._rank_of = None
        else:
            members = list(members)
            if not members:
                raise ValueError("a team must have at least one member")
            if len(set(members)) != len(members):
                raise ValueError(f"duplicate members in team: {members}")
            self.members = members
            self._rank_of = {w: i for i, w in enumerate(members)}
        self.id = next(Team._ids) if team_id is None else team_id
        self.parent = parent

    # -- membership ----------------------------------------------------- #

    @property
    def size(self) -> int:
        return len(self.members)

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[int]:
        return iter(self.members)

    def __contains__(self, world_rank: int) -> bool:
        if self._rank_of is None:
            return world_rank in self.members  # range: O(1) arithmetic
        return world_rank in self._rank_of

    def rank_of(self, world_rank: int) -> int:
        """Team rank of a world rank."""
        if self._rank_of is None:
            members = self.members
            if world_rank in members:
                return world_rank - members.start
        else:
            try:
                return self._rank_of[world_rank]
            except KeyError:
                pass
        raise ValueError(
            f"world rank {world_rank} is not a member of team {self.id}"
        )

    def world_rank(self, team_rank: int) -> int:
        """World rank of a team rank."""
        if not 0 <= team_rank < len(self.members):
            raise ValueError(
                f"team rank {team_rank} out of range for team of size "
                f"{len(self.members)}"
            )
        return self.members[team_rank]

    def is_subset_of(self, other: "Team") -> bool:
        """True when every member of self is a member of ``other``
        (the containment rule for collectives under finish, §III-A.1)."""
        return all(w in other for w in self.members)

    # -- tree shape for collectives ------------------------------------- #

    def tree_parent(self, team_rank: int, root: int = 0, radix: int = 2) -> int | None:
        """Parent of ``team_rank`` in a ``radix``-ary tree rooted at
        ``root`` (ranks rotated so the root maps to position 0).
        Returns None for the root."""
        pos = (team_rank - root) % self.size
        if pos == 0:
            return None
        parent_pos = (pos - 1) // radix
        return (parent_pos + root) % self.size

    def tree_children(self, team_rank: int, root: int = 0, radix: int = 2) -> list[int]:
        """Children of ``team_rank`` in the same tree."""
        pos = (team_rank - root) % self.size
        out = []
        for i in range(radix):
            child_pos = radix * pos + 1 + i
            if child_pos < self.size:
                out.append((child_pos + root) % self.size)
        return out

    def alive_members(self, suspects) -> list[int]:
        """Members not in ``suspects`` (a set of world ranks), in world
        rank order — the membership view fault-tolerant protocols
        iterate (see :mod:`repro.runtime.failure`)."""
        if not suspects:
            return list(self.members)
        return [r for r in self.members if r not in suspects]

    def hypercube_neighbors(self, team_rank: int) -> list[int]:
        """Team ranks at XOR offsets 2^0, 2^1, ... (UTS lifelines,
        paper §IV-C: lifelines are set on hypercube neighbors)."""
        out = []
        bit = 1
        while bit < self.size:
            neighbor = team_rank ^ bit
            if neighbor < self.size:
                out.append(neighbor)
            bit <<= 1
        return out

    def __repr__(self) -> str:
        return f"<Team {self.id} size={self.size}>"
