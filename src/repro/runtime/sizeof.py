"""Simulated wire footprint of Python values.

The simulator charges network time per byte; this module decides how many
bytes a payload "weighs".  Numpy data uses its true buffer size; scalars
weigh one word; containers add a small per-element header, approximating a
compact binary encoding (not pickle, whose overhead would distort the
model).
"""

from __future__ import annotations

from typing import Any

import numpy as np

#: bytes charged per scalar (one 64-bit word)
WORD = 8
#: per-container overhead, bytes
CONTAINER_OVERHEAD = 16


def sizeof(value: Any) -> int:
    """Simulated size of ``value`` in bytes."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float, complex)):
        return WORD
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(sizeof(v) for v in value)
    if isinstance(value, dict):
        return CONTAINER_OVERHEAD + sum(
            sizeof(k) + sizeof(v) for k, v in value.items()
        )
    # Opaque objects (e.g. by-reference handles) travel as one descriptor.
    return WORD
