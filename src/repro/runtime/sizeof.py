"""Simulated wire footprint of Python values.

The simulator charges network time per byte; this module decides how many
bytes a payload "weighs".  Numpy data uses its true buffer size; scalars
weigh one word; containers add a small per-element header, approximating a
compact binary encoding (not pickle, whose overhead would distort the
model).
"""

from __future__ import annotations

import sys
from types import FunctionType, ModuleType
from typing import Any

import numpy as np

#: bytes charged per scalar (one 64-bit word)
WORD = 8
#: per-container overhead, bytes
CONTAINER_OVERHEAD = 16


def sizeof(value: Any) -> int:
    """Simulated size of ``value`` in bytes."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, np.generic):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float, complex)):
        return WORD
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, (list, tuple, set, frozenset)):
        return CONTAINER_OVERHEAD + sum(sizeof(v) for v in value)
    if isinstance(value, dict):
        return CONTAINER_OVERHEAD + sum(
            sizeof(k) + sizeof(v) for k, v in value.items()
        )
    # Opaque objects (e.g. by-reference handles) travel as one descriptor.
    return WORD


#: node types deep_sizeof never descends into — shared interpreter
#: machinery, not per-machine state.
_OPAQUE = (ModuleType, FunctionType, type)


def deep_sizeof(root: Any) -> int:
    """Resident heap bytes of an object graph (the *simulator's* memory,
    not simulated wire bytes — contrast :func:`sizeof`).

    Walks ``__dict__``/``__slots__`` attributes and container elements
    iteratively with cycle detection, summing :func:`sys.getsizeof` per
    node plus numpy buffer sizes.  Functions, classes, and modules are
    counted as single references but not entered, so shared interpreter
    state is not attributed to the machine being measured.  Used by the
    weak-scaling bench to report bytes-per-image (DESIGN.md §13).
    """
    seen: set[int] = set()
    total = 0
    stack = [root]
    while stack:
        obj = stack.pop()
        oid = id(obj)
        if oid in seen:
            continue
        seen.add(oid)
        if isinstance(obj, _OPAQUE):
            continue
        try:
            total += sys.getsizeof(obj)
        except TypeError:  # pragma: no cover - exotic C objects
            total += WORD
        if isinstance(obj, np.ndarray):
            total += int(obj.nbytes) if obj.base is None else 0
            continue
        if isinstance(obj, dict):
            stack.extend(obj.keys())
            stack.extend(obj.values())
            continue
        if isinstance(obj, (list, tuple, set, frozenset)):
            stack.extend(obj)
            continue
        if isinstance(obj, (str, bytes, bytearray, memoryview, range)):
            continue
        d = getattr(obj, "__dict__", None)
        if d is not None:
            stack.append(d)
        for klass in type(obj).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if isinstance(name, str) and hasattr(obj, name):
                    stack.append(getattr(obj, name))
    return total
