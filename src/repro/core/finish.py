"""The ``finish`` construct (paper §III-A).

``finish`` is a block-structured, *collective* construct over a team:
every member enters a matching block, and ``end finish`` blocks until all
implicitly-synchronized asynchronous operations initiated inside the
block — by any member, including transitively spawned functions — are
globally complete.

Matching
--------
Finish blocks match across images by ``(team id, per-team finish sequence
number)``; because CAF 2.0 is SPMD, each image's N-th finish block on a
team pairs with its teammates' N-th.  A :class:`FinishFrame` holds one
image's counters for one block; frames are created lazily, because a
shipped function can land on an image *before* that image has entered its
own copy of the block.

Counting (Fig. 7)
-----------------
Each frame keeps two epochs (even/odd), each with four counters:

- ``sent``       — counted messages this image initiated;
- ``delivered``  — of those, how many have been acknowledged delivered;
- ``received``   — counted messages that landed on this image;
- ``completed``  — of those, how many have finished their local work.

A message is tagged with whether it was sent "inside" the current wave's
consistent cut; all four counter updates for that message go to the epoch
named by the tag.  Receiving an odd-tagged message hoists the receiver
into the odd epoch (Fig. 7, line 32) — that is what makes the allreduce
cut consistent without FIFO channels or global clocks.

The tag is *causal*, not phase-based.  Classifying a send purely by the
sender image's current phase is unsound: an image hoisted into the odd
epoch may still be running (a) its main program, whose sends precede its
allreduce join and are forced delivered by the line-4 wait, and (b) a
shipped-function handler whose receive was folded into the even epoch by
a wave exit while its body was still running.  In both cases the work is
accounted *inside* the cut (line 4 waits on ``even``), so hiding its
sends in ``odd`` lets an allreduce read zero with counted messages
outstanding — finish returns while shipped functions still run.
:meth:`FinishFrame.on_send` therefore classifies each send by the
*cause* of the sending activation: main-program sends count even (they
happen before this image contributes to the wave); handler sends follow
their receive — odd while the receive is still hidden in the odd epoch,
even once it has been folded into the visible cut (provided this image
has not yet contributed its even counters to the in-flight wave), and
odd again after the contribution, so late sends cannot pair with an
already-read completion on the remote side.

One bookkeeping detail the pseudo-code leaves implicit: when the odd
epoch is *folded* into the even one (allreduce exit), counts for odd-
tagged messages still in flight must follow their ``sent``/``received``
counterparts into the even epoch.  We track a per-frame fold generation;
a delivery ack (or completion) whose message was stamped in an earlier
generation lands in the even epoch, where its matching count now lives.
Without this, a late ack strands ``even.sent > even.delivered`` forever
and the line-4 wait deadlocks.

What counts
-----------
Spawns, asynchronous copies, and asynchronous collectives initiated with
*implicit* completion (no event arguments) while a frame is current.
Operations carrying explicit events manage their own completion and are
not tracked (§III: finish guarantees are for implicitly-synchronized
operations).  The detector's own allreduce traffic is never counted.

Failure reconciliation (DESIGN §11)
-----------------------------------
Under the fail-stop model a crashed image takes its counters with it, so
the surviving members' sums can never balance unless every count that
*paired* with the dead image is removed.  :meth:`FinishFrame.
reconcile_failure` does that subtraction when the failure detector
publishes a suspect: fully-delivered sends to the dead peer
(``delivered_to``) leave ``sent``/``delivered`` together, and receipts
from it (``received_from``/``completed_from``) leave
``received``/``completed``.  Sends still in flight are uncounted one at
a time by :meth:`on_send_failed` when the transport surfaces
``PeerFailedError`` — never at reconcile time, so nothing is subtracted
twice.  After reconciliation the peer lands in ``reconciled`` and later
counter events that name it are ignored.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.tasks import Condition
from repro.runtime.team import Team


class FinishUsageError(RuntimeError):
    """Structural misuse of finish (mismatched end, bad team nesting...)."""


class Epoch:
    """Four counters of Fig. 7's ``epoch`` structure."""

    __slots__ = ("sent", "delivered", "received", "completed")

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.received = 0
        self.completed = 0

    def fold_from(self, other: "Epoch") -> None:
        """Accumulate ``other`` into self and zero it (Fig. 7 lines 16-25)."""
        self.sent += other.sent
        self.delivered += other.delivered
        self.received += other.received
        self.completed += other.completed
        other.sent = other.delivered = other.received = other.completed = 0

    def locally_quiet(self) -> bool:
        """Fig. 7 line 4: all my sends landed, all my receipts completed."""
        return (self.sent == self.delivered
                and self.completed == self.received)

    def __repr__(self) -> str:
        return (f"Epoch(sent={self.sent}, delivered={self.delivered}, "
                f"received={self.received}, completed={self.completed})")


class FinishFrame:
    """One image's state for one finish block.

    Slotted and peer-sparse: every per-peer map holds entries only for
    peers this image actually exchanged counted messages with, so a
    frame's footprint follows the communication degree, not the image
    count (DESIGN.md §13)."""

    __slots__ = ("machine", "world_rank", "team", "seq", "key", "even",
                 "odd", "present", "gen", "contributed", "cond", "rounds",
                 "c_sent", "c_delivered", "c_received", "c_completed",
                 "sent_to", "delivered_to", "received_from",
                 "completed_from", "reconciled", "_reconcile_stamps",
                 "ledger")

    def __init__(self, machine, world_rank: int, team: Team, seq: int):
        self.machine = machine
        self.world_rank = world_rank
        self.team = team
        self.seq = seq
        self.key = (team.id, seq)
        self.even = Epoch()
        self.odd = Epoch()
        self.present = self.even
        #: fold generation (bumped by fold_to_even; see module docstring)
        self.gen = 0
        #: True between this image contributing its even counters to an
        #: allreduce wave and the fold on that wave's exit; handler sends
        #: in that window are post-cut and must hide in odd (see
        #: module docstring, "causal" tagging)
        self.contributed = False
        self.cond = Condition(machine.sim, f"finish{self.key}@{world_rank}")
        #: diagnostic: allreduce waves this image participated in
        self.rounds = 0
        # Cumulative (epoch-independent) counters, used by the baseline
        # detectors and for diagnostics; the paper's algorithm itself only
        # reads the epoch counters.
        self.c_sent = 0
        self.c_delivered = 0
        self.c_received = 0
        self.c_completed = 0
        #: per-destination send counts (X10-style vector detector)
        self.sent_to: dict[int, int] = {}
        # Per-peer pairing counters, consumed by reconcile_failure.
        self.delivered_to: dict[int, int] = {}
        self.received_from: dict[int, int] = {}
        self.completed_from: dict[int, int] = {}
        #: peers whose counts were reconciled out of this frame; seeded
        #: from the failure service's *confirmed* set so frames created
        #: lazily after a confirmation never count traffic paired with
        #: the dead image.  Mere suspicion does not reconcile (DESIGN
        #: §12): the suspect's traffic is quarantined, not lost.
        self.reconciled: set[int] = set()
        failure = getattr(machine, "failure", None)
        if failure is not None:
            self.reconciled |= failure.confirmed
        #: exact-subtraction stamps per reconciled peer, kept so a false
        #: confirmation can be healed by replaying the algebra in
        #: reverse (:meth:`unreconcile`)
        self._reconcile_stamps: dict[int, tuple] = {}
        #: outbound spawn ledger [(spawn_id, dst, fn, args, name)], kept
        #: only while a failure service with recovery is attached; popped
        #: per-destination by reconcile_failure for re-execution.
        self.ledger: list[tuple] = []

    # -- epoch machinery ------------------------------------------------- #

    @property
    def in_odd(self) -> bool:
        return self.present is self.odd

    def _epoch_for(self, tag_odd: bool, gen: int) -> Epoch:
        """The epoch a follow-up count (delivered/completed) belongs to:
        odd only while the fold generation its message was stamped in is
        still current; after a fold, the matching counts live in even."""
        if tag_odd and gen == self.gen:
            return self.odd
        return self.even

    def advance_to_odd(self) -> None:
        """Even → odd transition (entering an allreduce, Fig. 7 line 7,
        or receiving an odd-tagged message, line 32)."""
        self.present = self.odd

    def fold_to_even(self) -> None:
        """Odd → even transition on allreduce exit (Fig. 7 line 10 via
        next_epoch): fold the odd epoch into the even one."""
        self.even.fold_from(self.odd)
        self.present = self.even
        self.gen += 1
        self.contributed = False
        self.cond.wake()

    # -- counter events ---------------------------------------------------- #

    def on_send(self, dst: Optional[int] = None,
                cause: Optional[tuple] = None) -> tuple[bool, int, Optional[int]]:
        """Count an outgoing message; returns the (tag, generation, dst)
        stamp.  The tag travels on the wire; the stamp stays with the
        sender's ack callback.  Always counts, even toward a suspected
        peer: the transport guarantees such a send later resolves as
        failed, and :meth:`on_send_failed` removes exactly this count.

        ``cause`` is the receive stamp of the shipped-function activation
        issuing the send (None for main-program sends).  It determines
        the epoch tag causally — see the module docstring: a send is
        hidden in odd exactly when its cause is hidden, or when this
        image has already contributed its even counters to the wave in
        flight."""
        if cause is None:
            # Main-program send: always precedes this image's allreduce
            # contribution (the main blocks inside the detector once it
            # joins), and the line-4 wait forces its delivery before the
            # contribution is read — so it is inside the cut even when
            # an odd-tagged arrival has hoisted the image's phase.
            tag_odd = False
        elif cause[0] and cause[1] == self.gen:
            # Caused by a receive still hidden in the odd epoch: hide the
            # send with it; both fold into the visible cut together.
            tag_odd = True
        else:
            # The causing receive is visible in even.  Pre-contribution
            # the send joins it inside the cut (line 4 then holds this
            # image's read until the handler completes, so the count is
            # included); post-contribution it must hide until the fold.
            tag_odd = self.contributed
        epoch = self.odd if tag_odd else self.even
        epoch.sent += 1
        self.c_sent += 1
        if dst is not None:
            self.sent_to[dst] = self.sent_to.get(dst, 0) + 1
        self.cond.wake()
        return (tag_odd, self.gen, dst)

    def on_delivered(self, stamp: tuple) -> None:
        tag_odd, gen, dst = stamp
        if dst is not None and dst in self.reconciled:
            return  # the pair was already subtracted wholesale
        self._epoch_for(tag_odd, gen).delivered += 1
        self.c_delivered += 1
        if dst is not None:
            self.delivered_to[dst] = self.delivered_to.get(dst, 0) + 1
        self.cond.wake()

    def on_send_failed(self, stamp: tuple) -> None:
        """A counted send was reported undeliverable (peer failed):
        remove its ``sent`` count so the frame can balance without the
        dead receiver's counters."""
        tag_odd, gen, dst = stamp
        self._epoch_for(tag_odd, gen).sent -= 1
        self.c_sent -= 1
        if dst is not None and dst in self.sent_to:
            self.sent_to[dst] -= 1
        self.machine.stats.incr("finish.sends_failed")
        self.cond.wake()

    def on_received(self, tag_odd: bool, src: Optional[int] = None
                    ) -> tuple[bool, int, Optional[int]]:
        """Count an incoming message; returns the receiver-side stamp to
        hand back to :meth:`on_completed` when its local work is done."""
        if src is not None and src in self.reconciled:
            return (tag_odd, self.gen, src)  # uncounted; completion skips too
        if tag_odd:
            self.advance_to_odd()
            self.odd.received += 1
        else:
            self.even.received += 1
        self.c_received += 1
        if src is not None:
            self.received_from[src] = self.received_from.get(src, 0) + 1
        self.cond.wake()
        return (tag_odd, self.gen, src)

    def on_completed(self, stamp: tuple) -> None:
        tag_odd, gen, src = stamp
        if src is not None and src in self.reconciled:
            return
        self._epoch_for(tag_odd, gen).completed += 1
        self.c_completed += 1
        if src is not None:
            self.completed_from[src] = self.completed_from.get(src, 0) + 1
        self.cond.wake()

    # -- failure reconciliation ----------------------------------------- #

    def reconcile_failure(self, dead: int) -> list[tuple]:
        """Remove every count paired with ``dead`` (see module docstring)
        and return the popped ledger entries destined to it, so the
        caller can re-execute the lost shipped functions.  Idempotent."""
        if dead in self.reconciled:
            return []
        self.reconciled.add(dead)
        # Collapse both epochs first so the subtraction has one target
        # and any in-progress detector wave restarts on the gen bump.
        self.fold_to_even()
        d = self.delivered_to.pop(dead, 0)
        r = self.received_from.pop(dead, 0)
        c = self.completed_from.pop(dead, 0)
        self.even.sent -= d
        self.even.delivered -= d
        self.even.received -= r
        self.even.completed -= c
        self.c_sent -= d
        self.c_delivered -= d
        self.c_received -= r
        self.c_completed -= c
        lost = [e for e in self.ledger if e[1] == dead]
        if lost:
            self.ledger = [e for e in self.ledger if e[1] != dead]
        self._reconcile_stamps[dead] = (d, r, c, tuple(lost))
        self.machine.stats.incr("finish.reconciled")
        self.cond.wake()
        return lost

    def unreconcile(self, peer: int) -> None:
        """Heal a false confirmation: replay :meth:`reconcile_failure`'s
        exact subtraction in reverse, so ``peer``'s counter pairs count
        again and its future stamps are no longer ignored.  No count is
        added twice (the stamps record exactly what was subtracted, and
        while reconciled no new pair with ``peer`` could accumulate) and
        none is lost (the transport heals *before* delivering the
        message that proved the peer alive).  Idempotent."""
        if peer not in self.reconciled:
            return
        self.reconciled.discard(peer)
        d, r, c, lost = self._reconcile_stamps.pop(peer, (0, 0, 0, ()))
        # Collapse to even first: the subtraction targeted the even
        # epoch, and the gen bump restarts any in-progress detector
        # wave — the membership it snapshotted just changed.
        self.fold_to_even()
        if d:
            self.delivered_to[peer] = self.delivered_to.get(peer, 0) + d
        if r:
            self.received_from[peer] = self.received_from.get(peer, 0) + r
        if c:
            self.completed_from[peer] = self.completed_from.get(peer, 0) + c
        self.even.sent += d
        self.even.delivered += d
        self.even.received += r
        self.even.completed += c
        self.c_sent += d
        self.c_delivered += d
        self.c_received += r
        self.c_completed += c
        if lost:
            # The popped spawn-ledger entries go back on the books: the
            # peer is alive, so they were delivered (or quarantined and
            # flushed), not lost.
            self.ledger.extend(lost)
        self.machine.stats.incr("finish.unreconciled")
        self.cond.wake()

    def snapshot(self) -> dict:
        """Counter snapshot for liveness diagnostics (see
        :func:`stall_report`)."""
        return {
            "image": self.world_rank,
            "key": self.key,
            "phase": "odd" if self.in_odd else "even",
            "even": {"sent": self.even.sent,
                     "delivered": self.even.delivered,
                     "received": self.even.received,
                     "completed": self.even.completed},
            "odd": {"sent": self.odd.sent,
                    "delivered": self.odd.delivered,
                    "received": self.odd.received,
                    "completed": self.odd.completed},
            "cumulative": {"sent": self.c_sent,
                           "delivered": self.c_delivered,
                           "received": self.c_received,
                           "completed": self.c_completed},
            "rounds": self.rounds,
            "waiters": self.cond.waiting,
            "reconciled": sorted(self.reconciled),
            "ledger": len(self.ledger),
        }

    def __repr__(self) -> str:
        return (f"<FinishFrame {self.key}@{self.world_rank} "
                f"{'odd' if self.in_odd else 'even'} even={self.even} "
                f"odd={self.odd}>")


# --------------------------------------------------------------------- #
# Liveness diagnostics
# --------------------------------------------------------------------- #

def _fmt_epoch(name: str, e: Epoch) -> str:
    return (f"{name}(sent={e.sent}, delivered={e.delivered}, "
            f"received={e.received}, completed={e.completed})")


def stall_report(machine, blocked: list) -> str:
    """The liveness watchdog's diagnostic: which images stalled, and the
    finish-counter evidence of *why* (typically ``sent > delivered`` on
    a frame whose counted message was lost by an unreliable network).

    Called by :meth:`Machine._liveness_check` when the event queue
    drains with main programs still blocked and the network has dropped
    traffic."""
    net = machine.network
    stats = machine.stats
    lines = [
        f"quiescence without completion at t={machine.sim.now:.6f}s: "
        f"blocked main programs {blocked}",
        f"  network: reliable={'on' if machine.params.reliable else 'OFF'} "
        f"drops={stats['net.drops']} ack_drops={stats['net.ack_drops']} "
        f"dups={stats['net.dups']} retransmits={stats['net.retransmits']}",
    ]
    for rec in net.lost[:8]:
        lines.append(f"  lost: {rec}")
    if len(net.lost) > 8:
        lines.append(f"  ... and {len(net.lost) - 8} more lost messages")
    for rec in net.unacked()[:8]:
        lines.append(f"  unacked: {rec}")
    dead = sorted(getattr(machine, "dead_images", ()))
    if dead:
        lines.append(f"  dead images: {dead}")
    confirmed = set(getattr(net, "confirmed", ()))
    suspects = sorted(set(getattr(net, "suspects", ())) - confirmed)
    if suspects:
        lines.append(f"  suspected images: {suspects}")
    if confirmed:
        lines.append(f"  confirmed dead images: {sorted(confirmed)}")
    service = getattr(machine, "failure", None)
    if service is not None and service.recovered:
        lines.append(
            "  recovered images: "
            + ", ".join(f"{r} (incarnation {service.incarnations[r]})"
                        for r in sorted(service.recovered)))
    if getattr(net, "_quarantine", None):
        parked = {dst: len(q) for dst, q in sorted(net._quarantine.items())}
        lines.append(f"  quarantined sends per suspect: {parked}")
    # Per-image pending handles: spawn replies still awaiting delivery
    # acks, and blocked event_wait calls.
    pending_spawns: dict[int, int] = {}
    for pend in net._tx_pending.values():
        if pend.msg.kind == "spawn":
            pending_spawns[pend.msg.src] = pending_spawns.get(pend.msg.src, 0) + 1
    event_waits: dict[int, int] = {}
    for ev in machine._events.values():
        for rank, cond in ev._conds.items():
            if cond.waiting:
                event_waits[rank] = event_waits.get(rank, 0) + cond.waiting
    for rank in sorted(set(pending_spawns) | set(event_waits)):
        lines.append(
            f"  image {rank} pending handles: "
            f"spawn_replies={pending_spawns.get(rank, 0)} "
            f"event_waits={event_waits.get(rank, 0)}"
        )
    for (rank, key), frame in sorted(machine._frames.items()):
        interesting = (frame.cond.waiting > 0
                       or not frame.even.locally_quiet()
                       or not frame.odd.locally_quiet()
                       or frame.in_odd)
        if not interesting:
            continue
        lines.append(
            f"  image {rank} finish{key}: phase={'odd' if frame.in_odd else 'even'} "
            f"{_fmt_epoch('even', frame.even)} {_fmt_epoch('odd', frame.odd)} "
            f"rounds={frame.rounds} waiters={frame.cond.waiting}"
        )
    stalled_colls = [
        key for key, state in sorted(machine._coll_states.items())
        if getattr(getattr(state, "down", None), "done", True) is False
    ]
    if stalled_colls:
        lines.append(
            "  stalled collectives (rank, team, seq): "
            + ", ".join(map(str, stalled_colls[:8]))
            + (" ..." if len(stalled_colls) > 8 else "")
        )
    lines.append(
        "  hint: enable MachineParams.reliable to retransmit lost "
        "messages, or remove the FaultPlan"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Message-side helpers (used by spawn / copy_async / async collectives)
# --------------------------------------------------------------------- #

def frame_at(machine, world_rank: int, key: tuple) -> FinishFrame:
    """Get-or-create the frame for ``key`` on ``world_rank`` (frames are
    created lazily on message arrival, see module docstring)."""
    return machine.get_or_create_frame(world_rank, key)


def count_send(machine, world_rank: int, key: Optional[tuple],
               dst: Optional[int] = None,
               cause: Optional[tuple] = None) -> Optional[tuple]:
    """Count a message send at its initiator.  Returns the sender stamp
    ``(tag, generation)``: put ``stamp[0]`` on the wire, keep the stamp
    for :func:`count_delivered`.  None when not inside a finish.
    ``cause`` is the sending activation's receive stamp (see
    :meth:`FinishFrame.on_send`); pass ``activation.cause`` so handler
    sends are classified causally."""
    if key is None:
        return None
    return frame_at(machine, world_rank, key).on_send(dst, cause)


def wire_tag(stamp: Optional[tuple]) -> Optional[bool]:
    """The piggybacked epoch tag of a sender stamp."""
    return None if stamp is None else stamp[0]


def count_delivered(machine, world_rank: int, key: Optional[tuple],
                    stamp: Optional[tuple]) -> None:
    if key is not None and stamp is not None:
        frame_at(machine, world_rank, key).on_delivered(stamp)


def count_received(machine, world_rank: int, key: Optional[tuple],
                   tag: Optional[bool], src: Optional[int] = None
                   ) -> Optional[tuple]:
    """Count a message arrival; returns the receiver stamp to pass to
    :func:`count_completed` when its local work finishes.  ``src`` is
    the sending image, used for failure reconciliation."""
    if key is None:
        return None
    return frame_at(machine, world_rank, key).on_received(bool(tag), src)


def count_send_failed(machine, world_rank: int, key: Optional[tuple],
                      stamp: Optional[tuple]) -> None:
    """Uncount a send whose delivery failed because the peer died."""
    if key is not None and stamp is not None:
        frame_at(machine, world_rank, key).on_send_failed(stamp)


def count_delivery_outcome(machine, world_rank: int, key: Optional[tuple],
                           stamp: Optional[tuple], fut) -> None:
    """Done-callback body for a counted send's ``delivered`` future:
    count it delivered on success, uncount the send if the transport
    reported the peer failed."""
    if key is None or stamp is None:
        return
    frame = frame_at(machine, world_rank, key)
    if fut.exception() is None:
        frame.on_delivered(stamp)
    else:
        frame.on_send_failed(stamp)


def count_completed(machine, world_rank: int, key: Optional[tuple],
                    recv_stamp: Optional[tuple]) -> None:
    if key is not None and recv_stamp is not None:
        frame_at(machine, world_rank, key).on_completed(recv_stamp)


# --------------------------------------------------------------------- #
# The block construct
# --------------------------------------------------------------------- #

def finish_begin(ctx, team: Optional[Team] = None
                 ) -> Generator[Any, Any, FinishFrame]:
    """Enter a finish block on ``team`` (default: the world team).

    Purely local: the collective synchronization happens at
    :func:`finish_end`.  Returns the frame (useful for diagnostics).
    """
    team = team if team is not None else ctx.team_world
    if ctx.rank not in team:
        raise FinishUsageError(
            f"image {ctx.rank} entered a finish on team {team.id} it does "
            "not belong to"
        )
    if ctx.activation.in_shipped_function:
        raise FinishUsageError(
            "finish blocks are collective and cannot be opened inside a "
            "shipped function (spawn from within an image-level finish "
            "instead)"
        )
    state = ctx.machine.image_state(ctx.rank)
    parent = state.finish_stack[-1] if state.finish_stack else None
    if parent is not None and not team.is_subset_of(parent.team):
        raise FinishUsageError(
            f"nested finish team {team.id} is not a subset of the "
            f"enclosing finish team {parent.team.id}"
        )
    seq = state.next_finish_seq(team.id)
    frame = frame_at(ctx.machine, ctx.rank, (team.id, seq))
    state.finish_stack.append(frame)
    ctx.machine.stats.incr("finish.blocks")
    return frame
    yield  # pragma: no cover - makes this a generator for API uniformity


def finish_end(ctx, detector: str = "epoch") -> Generator[Any, Any, int]:
    """Leave the current finish block: run global termination detection
    and block until it succeeds.  Returns the number of allreduce waves
    used (the Fig. 18 metric).

    ``detector`` selects the algorithm: ``"epoch"`` (the paper's,
    default), ``"wave_unbounded"`` (no line-4 wait — the Fig. 18
    baseline), ``"four_counter"`` (Mattern/AM++), or ``"barrier"``
    (the *incorrect* naive scheme of Fig. 5, kept for demonstration).
    """
    from repro.core import termination

    state = ctx.machine.image_state(ctx.rank)
    if not state.finish_stack:
        raise FinishUsageError(f"image {ctx.rank}: end finish without finish")
    frame = state.finish_stack[-1]
    if ctx.machine.racecheck is not None:
        ctx.machine.racecheck.finish_enter(ctx.activation, frame.key)
    algorithm = termination.get_detector(detector)
    rounds = yield from algorithm(ctx, frame)
    state.finish_stack.pop()
    if ctx.machine.racecheck is not None:
        ctx.machine.racecheck.finish_exit(ctx.activation, frame.key)
    ctx.machine.stats.incr("finish.completed")
    ctx.machine.stats.incr("finish.rounds_total", rounds)
    return rounds
