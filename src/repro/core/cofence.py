"""The ``cofence`` construct (paper §III-B).

``cofence(downward=..., upward=...)`` demands *local data completion* of
the implicitly-synchronized asynchronous operations initiated by the
current activation: on return, the inputs of those operations may be
overwritten and their outputs may be read.

Arguments (both optional, mirroring SPARC V9 MEMBAR's ordering masks):

- ``downward`` — which class of earlier operations (``READ``, ``WRITE``,
  ``ANY``) may defer their completion until *after* the fence.  The fence
  does not wait for operations of an allowed class.  Default: none pass;
  the fence waits for everything.
- ``upward`` — which class of *later* operations may be initiated before
  the fence completes.  The simulator initiates operations in program
  order, so this argument cannot change execution here; it is validated
  and recorded (a per-class stats counter, and the fence-class annotation
  handed to the race detector) so programs carry the same information
  they would on a reordering implementation (tests check the reorder
  oracle's legality rules instead).

An operation that both reads and writes local data only passes a
direction that allows *both* classes (§III-B: the unconstrained action
may not overtake the constrained one).

Inside a shipped function a cofence is dynamically scoped: it only covers
operations launched by that function (§III-B.3) — which falls out of
pending operations living on the activation.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.tasks import all_of
from repro.runtime.memory_model import allowed_set


def cofence(ctx, downward: Optional[str] = None,
            upward: Optional[str] = None) -> Generator[Any, Any, None]:
    """Block until every constrained pending implicit operation of this
    activation is local-data complete."""
    down_allowed = allowed_set(downward)
    allowed_set(upward)  # validate eagerly, even when upward is None
    machine = ctx.machine
    machine.stats.incr("cofence.calls")
    if upward is not None:
        machine.stats.incr(f"cofence.upward.{upward}")
    waits = ctx.activation.fence_waits(down_allowed)
    if waits:
        machine.stats.incr("cofence.waited", len(waits))
        yield all_of(waits, "cofence")
    if machine.racecheck is not None:
        machine.racecheck.cofence_joined(ctx.activation, down_allowed,
                                         downward, upward)
