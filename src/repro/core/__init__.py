"""The paper's primary contribution: asynchronous operations and the
constructs that manage their completion.

- :mod:`repro.core.completion` — the four completion points of Fig. 1 as
  first-class futures on every asynchronous operation;
- :mod:`repro.core.copy_async` — predicated asynchronous copies (§II-C.1);
- :mod:`repro.core.spawn` — function shipping (§II-C.2);
- :mod:`repro.core.collectives` — synchronous and asynchronous team
  collectives (§II-C.3), including the allreduce that drives finish;
- :mod:`repro.core.cofence` — local-data-completion fences with
  directional class filters (§III-B);
- :mod:`repro.core.finish` — the SPMD global-completion construct
  (§III-A) over the epoch termination-detection algorithm (Fig. 7);
- :mod:`repro.core.termination` — the paper's detector plus the baseline
  algorithms it is compared against.
"""

from repro.core.completion import AsyncOp

__all__ = ["AsyncOp"]
