"""The Fig. 18 baseline: allreduce waves *without* the wait precondition.

This detector runs the same even/odd epoch machinery as the paper's
algorithm but skips Fig. 7 line 4 — it does not wait for its sent
messages to be delivered or its received functions to complete before
joining the next reduction wave.  Messages still in flight therefore keep
the global sum nonzero for extra waves; the paper measures roughly 2x the
number of reductions on UTS (Fig. 18).

Because back-to-back reductions with no pacing could spin arbitrarily
fast relative to message progress, real implementations insert a poll
delay between waves; ``POLL_INTERVAL`` models that.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.tasks import Delay
from repro.core import collectives
from repro.core.finish import FinishFrame

#: pause between waves (one wire latency's worth of polling)
POLL_INTERVAL = 2.0e-6


def wave_unbounded_detector(ctx, frame: FinishFrame
                            ) -> Generator[Any, Any, int]:
    """Allreduce waves with no local-quiet precondition."""
    rounds = 0
    while True:
        if not frame.in_odd:
            frame.advance_to_odd()
        outstanding = frame.even.sent - frame.even.completed
        frame.contributed = True
        total = yield from collectives.allreduce(
            ctx, outstanding, op="sum", team=frame.team,
            _stat="finish.allreduce_unbounded",
        )
        rounds += 1
        frame.rounds += 1
        frame.fold_to_even()
        if total == 0:
            return rounds
        ctx.machine.stats.incr("finish.extra_waves_unbounded")
        yield Delay(POLL_INTERVAL)
