"""An intermediate Fig. 18 baseline: waves with *half* the wait.

Fig. 7 line 4 has two clauses: wait until (a) my sent messages are
acknowledged delivered AND (b) my received messages have completed.
The :mod:`wave_unbounded` baseline drops both; this detector keeps only
(b) — any realistic poll-loop implementation drains its inbox between
reductions anyway, but learning about *deliveries* requires the ack
machinery that is precisely the paper's addition.

Together the three detectors bracket the design space the paper's
measurement sits in:

- ``epoch`` (both clauses)  — fewest waves;
- ``wave_drain`` (clause b) — slightly more;
- ``wave_unbounded`` (none) — free-spinning, many more.

The paper's ~2x baseline lands between the latter two (EXPERIMENTS.md
discusses the placement).
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core import collectives
from repro.core.finish import FinishFrame


def wave_drain_detector(ctx, frame: FinishFrame
                        ) -> Generator[Any, Any, int]:
    """Allreduce waves gated only on local completion of received
    messages (no delivery-ack precondition)."""
    while True:
        yield from frame.cond.wait_until(
            lambda: frame.even.received == frame.even.completed)
        if not frame.in_odd:
            frame.advance_to_odd()
        outstanding = frame.even.sent - frame.even.completed
        frame.contributed = True
        total = yield from collectives.allreduce(
            ctx, outstanding, op="sum", team=frame.team,
            _stat="finish.allreduce_drain",
        )
        frame.rounds += 1
        frame.fold_to_even()
        if total == 0:
            return frame.rounds
        ctx.machine.stats.incr("finish.extra_waves_drain")
