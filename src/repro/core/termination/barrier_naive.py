"""The *incorrect* wait-then-barrier scheme (paper Fig. 5).

Each image waits for delivery of the asynchronous operations *it*
initiated, then joins a team barrier.  The scheme misses transitively
shipped functions: if p ships f1 to q and f1 — executing on q, invisible
to q's main program — ships f2 to r, then r can enter and leave the
barrier before f2 even lands (Fig. 5).  ``finish`` exists because of
exactly this failure.

Kept in the library so tests and the Fig. 5 demo can exhibit the bug;
never use it for real synchronization.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core import collectives
from repro.core.finish import FinishFrame


def barrier_naive_detector(ctx, frame: FinishFrame
                           ) -> Generator[Any, Any, int]:
    """Wait for my own sends to be delivered, then barrier.  UNSOUND:
    returns while transitively spawned work may still be outstanding."""
    yield from frame.cond.wait_until(
        lambda: frame.c_sent == frame.c_delivered
    )
    yield from collectives.barrier(ctx, team=frame.team)
    ctx.machine.stats.incr("finish.naive_barriers")
    return 1
