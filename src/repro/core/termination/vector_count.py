"""X10-style centralized vector-counting termination detection (paper §V).

Each image, whenever it quiesces, sends the finish *owner* (team rank 0)
a report: the vector of message counts it sent per destination, plus the
count of messages it has completed locally.  The owner declares
termination once it holds a report from every member in which, for every
image j, the summed sends addressed to j equal j's completed count.

The paper's criticism is structural: the owner receives p vectors of
size p — O(p²) traffic and memory concentrated at one image, "a
bottleneck in computations on a large number of places."  The benchmark
harness reports ``term.vector.owner_bytes`` to expose exactly that.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.runtime.sizeof import WORD
from repro.net.active_messages import AMCategory
from repro.core import collectives
from repro.core.finish import FinishFrame, frame_at

_REPORT = "term.vector.report"
_ALL_DONE = "term.vector.done"


class _OwnerState:
    """Collected reports at the finish owner."""

    def __init__(self, team_size: int):
        self.reports: dict[int, tuple[dict, int]] = {}
        self.versions: dict[int, int] = {}
        self.team_size = team_size
        self.done = False


def _owner_state(machine, key: tuple, team_size: int) -> _OwnerState:
    states = machine.scratch.setdefault("term.vector.states", {})
    if key not in states:
        states[key] = _OwnerState(team_size)
    return states[key]


def _flags(machine, key: tuple) -> dict:
    return machine.scratch.setdefault(("term.vector.flags", key), {})


def _ensure_handlers(machine) -> None:
    def handle_report(ctx, key, team_rank, version, sent_to, completed,
                      team_size):
        state = _owner_state(machine, key, team_size)
        machine.stats.incr("term.vector.owner_bytes",
                           (team_size + 2) * WORD)
        machine.stats.incr("term.vector.owner_msgs")
        _record_report(machine, ctx.image, key, state, team_rank, version,
                       sent_to, completed)

    def handle_done(ctx, key):
        _flags(machine, key)[ctx.image] = True
        frame_at(machine, ctx.image, key).cond.wake()

    machine.am.ensure_registered(_REPORT, handle_report)
    machine.am.ensure_registered(_ALL_DONE, handle_done)


def _record_report(machine, owner_world: int, key, state: _OwnerState,
                   team_rank: int, version: int, sent_to: dict,
                   completed: int) -> None:
    if version > state.versions.get(team_rank, -1):
        state.versions[team_rank] = version
        state.reports[team_rank] = (sent_to, completed)
    if state.done or len(state.reports) < state.team_size:
        return
    sends = [0] * state.team_size
    for report_sends, _completed in state.reports.values():
        for dst_tr, n in report_sends.items():
            sends[dst_tr] += n
    completed_counts = [state.reports[tr][1] for tr in range(state.team_size)]
    if sends == completed_counts:
        state.done = True
        team = machine.scratch[("term.vector.team", key)]
        for tr in range(state.team_size):
            w = team.world_rank(tr)
            if w == owner_world:
                _flags(machine, key)[w] = True
                frame_at(machine, w, key).cond.wake()
            else:
                machine.am.request_nb(
                    owner_world, w, _ALL_DONE, args=(key,),
                    category=AMCategory.SHORT, kind="term.vector.done",
                )


def vector_count_detector(ctx, frame: FinishFrame
                          ) -> Generator[Any, Any, int]:
    """Centralized detection; returns the number of reports this image
    sent (the per-image analogue of a wave count)."""
    machine = ctx.machine
    _ensure_handlers(machine)
    team = frame.team
    key = frame.key
    owner_world = team.world_rank(0)
    machine.scratch.setdefault(("term.vector.team", key), team)
    flags = _flags(machine, key)

    my_tr = team.rank_of(ctx.rank)
    version = 0
    reports = 0
    while not flags.get(ctx.rank, False):
        yield from frame.cond.wait_until(
            lambda: (flags.get(ctx.rank, False)
                     or (frame.c_sent == frame.c_delivered
                         and frame.c_received == frame.c_completed))
        )
        if flags.get(ctx.rank, False):
            break
        # Snapshot my per-destination sends (translated to team ranks).
        sent_to = {team.rank_of(w): n for w, n in frame.sent_to.items()}
        completed = frame.c_completed
        if ctx.rank == owner_world:
            state = _owner_state(machine, key, team.size)
            _record_report(machine, owner_world, key, state, my_tr,
                           version, sent_to, completed)
        else:
            machine.am.request_nb(
                ctx.rank, owner_world, _REPORT,
                args=(key, my_tr, version, sent_to, completed, team.size),
                payload_size=(team.size + 2) * WORD,
                category=AMCategory.LONG, kind="term.vector.report",
            )
        reports += 1
        version += 1
        # Wait until either termination is announced or my counters move
        # again (in which case I re-report).
        base = (frame.c_sent, frame.c_delivered,
                frame.c_received, frame.c_completed)
        yield from frame.cond.wait_until(
            lambda: (flags.get(ctx.rank, False)
                     or (frame.c_sent, frame.c_delivered,
                         frame.c_received, frame.c_completed) != base)
        )
    # A final barrier keeps teammates aligned on exit (the announcement
    # fans out asynchronously).
    yield from collectives.barrier(ctx, team=team)
    return reports
