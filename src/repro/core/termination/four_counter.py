"""Mattern's four-counter algorithm, as used by AM++ (paper §V).

Every wave reduces the cumulative ``(sent, received)`` pair.  Termination
is declared when two *consecutive* waves observe identical, balanced
counts: the first wave establishes a candidate cut, the second confirms
no message crossed it.  The double-counting is what the paper points at —
"because this algorithm counts twice, it always incurs an extra global
reduction to detect termination; our algorithm does not pay this extra
cost."

We pair the algorithm with the same local-quiet precondition as the
paper's detector so the comparison isolates the counting scheme itself.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core import collectives
from repro.core.finish import FinishFrame


def four_counter_detector(ctx, frame: FinishFrame
                          ) -> Generator[Any, Any, int]:
    """Double-reduction termination detection; returns reduction waves."""
    rounds = 0
    prev: tuple[int, int] | None = None
    while True:
        yield from frame.cond.wait_until(
            lambda: frame.c_sent == frame.c_delivered
            and frame.c_received == frame.c_completed
        )
        totals = yield from collectives.allreduce(
            ctx, (frame.c_sent, frame.c_received),
            op=lambda a, b: (a[0] + b[0], a[1] + b[1]),
            team=frame.team, _stat="finish.allreduce_four_counter",
        )
        rounds += 1
        frame.rounds += 1
        sent, received = totals
        if prev == (sent, received) and sent == received:
            return rounds
        prev = (sent, received)
