"""The paper's epoch-based termination detection algorithm (Fig. 7).

Each image repeatedly:

1. waits until it is *locally quiet* in the even epoch — every message it
   sent has been acknowledged delivered, and every message it received
   has completed its local work (Fig. 7 line 4, the precondition that
   halves the number of waves, see Fig. 18);
2. advances into the odd epoch if not already hoisted there by an
   odd-tagged message (line 7);
3. joins a synchronous team allreduce of ``sent - completed`` over the
   even epoch (line 8);
4. folds the odd epoch into the even one on exit (line 10 via
   ``next_epoch``).

Global termination is detected when the reduction yields zero.  Theorem 1
bounds the number of waves by ``L + 1`` where ``L`` is the longest chain
of transitively shipped functions; a test asserts that bound on
adversarial chains.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core import collectives
from repro.core.finish import FinishFrame


def epoch_detector(ctx, frame: FinishFrame) -> Generator[Any, Any, int]:
    """Run the Fig. 7 algorithm for one image; returns allreduce waves."""
    machine = ctx.machine
    if machine.failure is not None:
        # With a failure detector attached the synchronous allreduce
        # would deadlock on the first crash; swap in the fault-tolerant
        # coordinator variant transparently.
        from repro.core.termination.ft_epoch import ft_epoch_detector

        rounds = yield from ft_epoch_detector(ctx, frame)
        return rounds
    rounds = 0
    while True:
        # Line 4: wait until locally quiet in the even epoch.  Counter
        # updates wake the condition.
        yield from frame.cond.wait_until(frame.even.locally_quiet)
        # Line 6-7: enter the odd epoch (unless an odd-tagged message
        # already hoisted us there).
        if not frame.in_odd:
            frame.advance_to_odd()
        # Line 8: the consistent-cut sum over the even epoch.  The
        # reduction-tree radix is overridable for the ablation bench.
        outstanding = frame.even.sent - frame.even.completed
        frame.contributed = True
        wave_start = machine.sim.now
        total = yield from collectives.allreduce(
            ctx, outstanding, op="sum", team=frame.team,
            radix=machine.scratch.get("finish.allreduce_radix", 2),
            _stat="finish.allreduce",
        )
        rounds += 1
        frame.rounds += 1
        if machine.tracer is not None:
            machine.tracer.span(ctx.rank, "finish wave", wave_start,
                                machine.sim.now - wave_start,
                                args={"outstanding": outstanding,
                                      "total": total})
        # Line 10: exit the allreduce — fold odd into even.
        frame.fold_to_even()
        if total == 0:
            return rounds
        machine.stats.incr("finish.extra_waves")
