"""Fault-tolerant epoch termination detection (DESIGN §11).

The paper's Fig. 7 algorithm closes each wave with a synchronous team
allreduce — which deadlocks the moment a team member fail-stops, because
the reduction tree waits for the dead image's contribution forever.
This variant replaces the allreduce with a coordinator round that never
waits on a *confirmed-dead* member (whose counters reconciliation has
already folded into the survivors):

1. wait until locally quiet in the even epoch **or** a failure is known
   (a confirmed death reconciles the frame's counters and wakes the
   wait; a mere suspicion only re-routes coordination around the peer);
2. with recovery off, a known failure raises a structured
   :class:`~repro.runtime.failure.ImageFailureError` instead of wedging;
3. otherwise report ``even.sent - even.completed`` into a *report
   tree* — a radix tree over every member not confirmed dead, rotated
   so the round's coordinator (the lowest-ranked alive member) is the
   root.  Each node folds its own count into its children's subtree
   sums and forwards one aggregate up, so a round costs each image
   O(radix) messages and the coordinator O(radix) fan-in instead of a
   p-wide flat gather (paper-scale image counts, DESIGN §13);
4. the coordinator's aggregate must cover every member *not confirmed
   dead* (merely-suspected members included — their counters are
   un-reconciled, so a verdict summed without them is not a consistent
   cut) of the same generation; a mid-round membership change bumps the
   generation, making the survivors restart the round with a fresh tree
   (and possibly a new coordinator, if the old one died);
5. the round's verdict (the summed outstanding count) is cached under
   ``(frame key, round)`` and broadcast back down the report tree;
   termination is a zero verdict.

The verdict cache and coordinator scratch state are machine-global —
like the monotonic suspect set, they model a replicated membership/
agreement service (ULFM-style) rather than an in-band consensus
protocol, which keeps the round logic honest about *asynchrony* (all
coordination travels as active messages) while idealizing *agreement*.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.net.active_messages import AMCategory
from repro.core.finish import FinishFrame

_REPORT = "ft.report"
_VERDICT = "ft.verdict"


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_REPORT, _make_report_handler(machine))
    machine.am.ensure_registered(_VERDICT, _make_verdict_handler(machine))


def _verdict_slot(key, r) -> tuple:
    return ("ft.verdict", key, r)


def _collect_slot(key, r, node) -> tuple:
    return ("ft.collect", key, r, node)


_TREE_RADIX = 4


def _layout(machine, team_id: int, gen: int):
    """Report-tree layout for membership generation ``gen``: the
    non-confirmed members rotated so the coordinator sits at position
    0, plus the position of every member.  Cached per (team, gen) so a
    round costs O(1) lookups per report, and kept for the verdict
    broadcast (which may land after a later membership change)."""
    slot = ("ft.layout", team_id, gen)
    layout = machine.scratch.get(slot)
    if layout is None:
        service = machine.failure
        team = machine.team_by_id(team_id)
        # The verdict must sum over every member not confirmed dead —
        # merely-suspected members included.  Excluding a live suspect
        # sums an inconsistent cut: its unmatched sends/completions flow
        # through the survivors' counters with opposite signs and can
        # cancel to a spurious zero while it still holds live work (seen
        # as an exact UTS undercount under phi suspicion across a
        # healing partition).
        required = service.required_members(team)
        alive = service.alive_members(team)
        coordinator = alive[0] if alive else required[0]
        ci = required.index(coordinator)
        order = required[ci:] + required[:ci]
        layout = (order, {m: i for i, m in enumerate(order)})
        machine.scratch[slot] = layout
    return layout


def _subtree_need(pos: int, size: int) -> int:
    """Number of descendants below position ``pos`` — how many subtree
    reports the node must fold in before sending its aggregate up."""
    total = -1  # exclude pos itself
    frontier = [pos]
    while frontier:
        nxt = []
        for p in frontier:
            total += 1
            first = _TREE_RADIX * p + 1
            if first < size:
                nxt.extend(range(first, min(first + _TREE_RADIX, size)))
        frontier = nxt
    return total


def _accept_report(machine, key, r, team_id, node: int, sender: int,
                   subtotal: int, count: int, gen: int) -> None:
    """One report-tree step at ``node``: fold in a subtree aggregate
    (``sender`` ≠ ``node``) or the node's own count (``sender`` ==
    ``node``), and forward one combined aggregate to the tree parent
    once the whole subtree has reported.  At the root, a complete
    aggregate is the verdict."""
    service = machine.failure
    if machine.scratch.get(_verdict_slot(key, r)) is not None:
        # Round already decided (the reporter restarted needlessly, or
        # its report raced the broadcast): re-wake the sender's image.
        _send_verdict(machine, key, r, team_id, sender, node, gen)
        return
    if gen != service.gen:
        return  # stale report from before a membership change
    order, pos_of = _layout(machine, team_id, gen)
    pos = pos_of.get(node)
    if pos is None:
        return  # node no longer part of the membership this gen
    slot = _collect_slot(key, r, node)
    state = machine.scratch.get(slot)
    if state is None or state["gen"] != gen:
        state = {"gen": gen, "own": None, "sum": 0, "count": 0,
                 "from": set(), "need": _subtree_need(pos, len(order))}
        machine.scratch[slot] = state
    if sender == node:
        if state["own"] is not None:
            return  # duplicate own contribution
        state["own"] = subtotal
    else:
        if sender in state["from"]:
            return  # duplicate subtree report
        state["from"].add(sender)
        state["sum"] += subtotal
        state["count"] += count
    if state["own"] is None or state["count"] < state["need"]:
        return  # subtree not complete yet
    total = state["own"] + state["sum"]
    total_count = 1 + state["count"]
    machine.scratch.pop(slot, None)
    if pos == 0:
        # Root: the aggregate covers every required member — decide.
        machine.scratch[_verdict_slot(key, r)] = total
        machine.stats.incr("ft.rounds_decided")
        _broadcast_verdict(machine, key, r, team_id, node, gen)
        return
    parent = order[(pos - 1) // _TREE_RADIX]
    machine.am.request_nb(
        node, parent, _REPORT,
        args=(team_id, key, r, node, total, total_count, gen),
        category=AMCategory.SHORT, kind="ft.report",
    )


def _broadcast_verdict(machine, key, r, team_id, node: int, gen: int) -> None:
    """Wake ``node``'s frame and push the verdict to its report-tree
    children.  The verdict VALUE rides in the AM itself: under the
    simulator the shared scratch cache would carry it anyway, but on the
    process backend each worker has its own scratch, and the broadcast
    is what populates it (the handler installs the value before
    recursing)."""
    machine.get_or_create_frame(node, key).cond.wake()
    verdict = machine.scratch.get(_verdict_slot(key, r))
    order, pos_of = _layout(machine, team_id, gen)
    pos = pos_of.get(node)
    if pos is None:
        return
    first = _TREE_RADIX * pos + 1
    for c in range(first, min(first + _TREE_RADIX, len(order))):
        machine.am.request_nb(
            node, order[c], _VERDICT, args=(key, r, team_id, gen, verdict),
            category=AMCategory.SHORT, kind="ft.verdict",
        )


def _send_verdict(machine, key, r, team_id, member: int, src: int,
                  gen: int) -> None:
    """Re-wake one member that reported into an already-decided round."""
    if member == src:
        machine.get_or_create_frame(member, key).cond.wake()
        return
    verdict = machine.scratch.get(_verdict_slot(key, r))
    machine.am.request_nb(
        src, member, _VERDICT, args=(key, r, team_id, gen, verdict),
        category=AMCategory.SHORT, kind="ft.verdict",
    )


def _make_report_handler(machine):
    def handle_report(ctx, team_id, key, r, sender, subtotal, count, gen):
        _accept_report(machine, key, r, team_id, ctx.image, sender,
                       subtotal, count, gen)
    return handle_report


def _make_verdict_handler(machine):
    def handle_verdict(ctx, key, r, team_id, gen, verdict):
        if verdict is not None:
            # First write wins; under the simulator the root already
            # wrote the same value, so this is a no-op there.
            machine.scratch.setdefault(_verdict_slot(key, r), verdict)
        _broadcast_verdict(machine, key, r, team_id, ctx.image, gen)
    return handle_verdict


def ft_epoch_detector(ctx, frame: FinishFrame) -> Generator[Any, Any, int]:
    """Fault-tolerant Fig. 7: per-image detection loop; returns the
    number of completed coordinator rounds this image participated in."""
    machine = ctx.machine
    service = machine.failure
    if service is None:
        raise RuntimeError(
            "ft_epoch detector requires failure detection "
            "(run_spmd(..., failure_detection=True))"
        )
    _ensure_handlers(machine)
    from repro.runtime.failure import build_failure_error

    key = frame.key
    rounds = 0
    r = 0
    if service.recover:
        # Recovery mode: a confirmed death reconciles the counters
        # (waking the condition), so plain local quiescence is the
        # whole wait.  Mere suspicion only bumps the generation.
        quiet_or_failed = frame.even.locally_quiet
    else:
        # Report-only mode: a known failure ends the wait — to raise.
        def quiet_or_failed():
            return (frame.even.locally_quiet()
                    or service.has_failed(frame.team))
    while True:
        yield from frame.cond.wait_until(quiet_or_failed)
        if not service.recover and service.has_failed(frame.team):
            raise build_failure_error(
                machine, dead=set(service.confirmed),
                reason=f"image failure detected inside finish{key}")
        if not frame.even.locally_quiet():
            continue
        verdict = machine.scratch.get(_verdict_slot(key, r))
        if verdict is None:
            # Start (or restart) round r against the current membership.
            if not frame.in_odd:
                frame.advance_to_odd()
            gen0 = service.gen
            outstanding = frame.even.sent - frame.even.completed
            frame.contributed = True
            wave_start = machine.sim.now
            # Contribute the local count at this image's own report-tree
            # node; the aggregate climbs to the coordinator from there.
            _accept_report(machine, key, r, frame.team.id, ctx.rank,
                           ctx.rank, outstanding, 0, gen0)
            yield from frame.cond.wait_until(
                lambda: machine.scratch.get(_verdict_slot(key, r)) is not None
                or service.gen != gen0)
            verdict = machine.scratch.get(_verdict_slot(key, r))
            if verdict is None:
                continue  # membership changed mid-round: restart round r
            if machine.tracer is not None:
                machine.tracer.span(ctx.rank, "ft finish wave", wave_start,
                                    machine.sim.now - wave_start,
                                    args={"outstanding": outstanding,
                                          "total": verdict, "round": r})
        rounds += 1
        frame.rounds += 1
        frame.fold_to_even()
        if verdict == 0:
            return rounds
        r += 1
        machine.stats.incr("finish.extra_waves")
