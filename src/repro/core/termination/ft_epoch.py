"""Fault-tolerant epoch termination detection (DESIGN §11).

The paper's Fig. 7 algorithm closes each wave with a synchronous team
allreduce — which deadlocks the moment a team member fail-stops, because
the reduction tree waits for the dead image's contribution forever.
This variant replaces the allreduce with a coordinator round that never
waits on a *confirmed-dead* member (whose counters reconciliation has
already folded into the survivors):

1. wait until locally quiet in the even epoch **or** a failure is known
   (a confirmed death reconciles the frame's counters and wakes the
   wait; a mere suspicion only re-routes coordination around the peer);
2. with recovery off, a known failure raises a structured
   :class:`~repro.runtime.failure.ImageFailureError` instead of wedging;
3. otherwise report ``even.sent - even.completed`` to the round's
   coordinator — the lowest-ranked alive member — stamped with the
   membership generation the report was computed under;
4. the coordinator collects reports from every member *not confirmed
   dead* (merely-suspected members included — their counters are
   un-reconciled, so a verdict summed without them is not a consistent
   cut) of the same generation; a mid-round membership change bumps the
   generation, making the survivors restart the round (and possibly
   elect a new coordinator, if the old one died);
5. the round's verdict (the summed outstanding count) is cached under
   ``(frame key, round)`` and broadcast; termination is a zero verdict.

The verdict cache and coordinator scratch state are machine-global —
like the monotonic suspect set, they model a replicated membership/
agreement service (ULFM-style) rather than an in-band consensus
protocol, which keeps the round logic honest about *asynchrony* (all
coordination travels as active messages) while idealizing *agreement*.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.net.active_messages import AMCategory
from repro.core.finish import FinishFrame

_REPORT = "ft.report"
_VERDICT = "ft.verdict"


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_REPORT, _make_report_handler(machine))
    machine.am.ensure_registered(_VERDICT, _make_verdict_handler(machine))


def _verdict_slot(key, r) -> tuple:
    return ("ft.verdict", key, r)


def _collect_slot(key, r) -> tuple:
    return ("ft.collect", key, r)


def _accept_report(machine, key, r, team_id, rank: int, outstanding: int,
                   gen: int, coord: int) -> None:
    """Coordinator side of one detection round (runs inline at the
    current coordinator ``coord``; also called directly for its own
    report)."""
    service = machine.failure
    verdict = machine.scratch.get(_verdict_slot(key, r))
    if verdict is not None:
        # Round already decided (the reporter restarted needlessly, or
        # its report raced the broadcast): re-send the cached verdict.
        _send_verdict(machine, key, r, rank, coord)
        return
    if gen != service.gen:
        return  # stale report from before a membership change
    state = machine.scratch.get(_collect_slot(key, r))
    if state is None or state["gen"] != service.gen:
        state = {"gen": service.gen, "reports": {}}
        machine.scratch[_collect_slot(key, r)] = state
    state["reports"][rank] = outstanding
    team = machine.team_by_id(team_id)
    # The verdict must sum over every member not confirmed dead —
    # merely-suspected members included.  Excluding a live suspect sums
    # an inconsistent cut: its unmatched sends/completions flow through
    # the survivors' counters with opposite signs and can cancel to a
    # spurious zero while it still holds live work (seen as an exact
    # UTS undercount under phi suspicion across a healing partition).
    required = service.required_members(team)
    if not all(m in state["reports"] for m in required):
        return
    total = sum(state["reports"][m] for m in required)
    machine.scratch[_verdict_slot(key, r)] = total
    machine.scratch.pop(_collect_slot(key, r), None)
    machine.stats.incr("ft.rounds_decided")
    for member in required:
        _send_verdict(machine, key, r, member, coord)


def _send_verdict(machine, key, r, member: int, src: int) -> None:
    """Wake ``member``'s frame once the round's verdict is readable.
    The verdict value travels through the (idealized) shared cache; the
    AM is the asynchronous wake-up."""
    if member == src:
        machine.get_or_create_frame(member, key).cond.wake()
        return
    machine.am.request_nb(
        src, member, _VERDICT, args=(key, r),
        category=AMCategory.SHORT, kind="ft.verdict",
    )


def _make_report_handler(machine):
    def handle_report(ctx, team_id, key, r, rank, outstanding, gen):
        _accept_report(machine, key, r, team_id, rank, outstanding, gen,
                       coord=ctx.image)
    return handle_report


def _make_verdict_handler(machine):
    def handle_verdict(ctx, key, r):
        machine.get_or_create_frame(ctx.image, key).cond.wake()
    return handle_verdict


def ft_epoch_detector(ctx, frame: FinishFrame) -> Generator[Any, Any, int]:
    """Fault-tolerant Fig. 7: per-image detection loop; returns the
    number of completed coordinator rounds this image participated in."""
    machine = ctx.machine
    service = machine.failure
    if service is None:
        raise RuntimeError(
            "ft_epoch detector requires failure detection "
            "(run_spmd(..., failure_detection=True))"
        )
    _ensure_handlers(machine)
    from repro.runtime.failure import build_failure_error

    key = frame.key
    rounds = 0
    r = 0
    if service.recover:
        # Recovery mode: a confirmed death reconciles the counters
        # (waking the condition), so plain local quiescence is the
        # whole wait.  Mere suspicion only bumps the generation.
        quiet_or_failed = frame.even.locally_quiet
    else:
        # Report-only mode: a known failure ends the wait — to raise.
        def quiet_or_failed():
            return (frame.even.locally_quiet()
                    or service.has_failed(frame.team))
    while True:
        yield from frame.cond.wait_until(quiet_or_failed)
        if not service.recover and service.has_failed(frame.team):
            raise build_failure_error(
                machine, dead=set(service.confirmed),
                reason=f"image failure detected inside finish{key}")
        if not frame.even.locally_quiet():
            continue
        verdict = machine.scratch.get(_verdict_slot(key, r))
        if verdict is None:
            # Start (or restart) round r against the current membership.
            if not frame.in_odd:
                frame.advance_to_odd()
            gen0 = service.gen
            outstanding = frame.even.sent - frame.even.completed
            alive = service.alive_members(frame.team)
            coordinator = alive[0] if alive else ctx.rank
            wave_start = machine.sim.now
            if coordinator == ctx.rank:
                _accept_report(machine, key, r, frame.team.id, ctx.rank,
                               outstanding, gen0, coord=ctx.rank)
            else:
                machine.am.request_nb(
                    ctx.rank, coordinator, _REPORT,
                    args=(frame.team.id, key, r, ctx.rank, outstanding,
                          gen0),
                    category=AMCategory.SHORT, kind="ft.report",
                )
            yield from frame.cond.wait_until(
                lambda: machine.scratch.get(_verdict_slot(key, r)) is not None
                or service.gen != gen0)
            verdict = machine.scratch.get(_verdict_slot(key, r))
            if verdict is None:
                continue  # membership changed mid-round: restart round r
            if machine.tracer is not None:
                machine.tracer.span(ctx.rank, "ft finish wave", wave_start,
                                    machine.sim.now - wave_start,
                                    args={"outstanding": outstanding,
                                          "total": verdict, "round": r})
        rounds += 1
        frame.rounds += 1
        frame.fold_to_even()
        if verdict == 0:
            return rounds
        r += 1
        machine.stats.incr("finish.extra_waves")
