"""Distributed termination detection algorithms.

The paper's contribution (:mod:`repro.core.termination.epoch`) plus the
baselines it is compared against:

- :mod:`repro.core.termination.ft_epoch` — the fault-tolerant variant
  of the paper's detector (DESIGN §11): coordinator rounds over the
  alive membership instead of a team allreduce; ``epoch`` delegates to
  it automatically when a failure detector is attached;
- :mod:`repro.core.termination.wave_unbounded` — the same allreduce-wave
  scheme but *without* the Fig. 7 line-4 wait precondition; the Fig. 18
  baseline that needs roughly twice the reduction rounds;
- :mod:`repro.core.termination.wave_drain` — the intermediate variant
  keeping only the received==completed half of the precondition (any
  poll-loop drains its inbox); brackets the paper's baseline from below;
- :mod:`repro.core.termination.four_counter` — Mattern's four-counter
  algorithm as used by AM++ (§V): double-counts sends/receives, always
  paying one extra global reduction;
- :mod:`repro.core.termination.vector_count` — the X10-style centralized
  scheme (§V): every image reports a per-destination vector to one owner,
  whose traffic grows as O(p²);
- :mod:`repro.core.termination.barrier_naive` — the provably *incorrect*
  wait-then-barrier scheme whose failure under transitive spawns (Fig. 5)
  motivated finish in the first place.

Each detector is a generator ``detector(ctx, frame) -> rounds`` run by
every team member inside :func:`repro.core.finish.finish_end`.
"""

from repro.core.termination.epoch import epoch_detector
from repro.core.termination.ft_epoch import ft_epoch_detector
from repro.core.termination.wave_unbounded import wave_unbounded_detector
from repro.core.termination.wave_drain import wave_drain_detector
from repro.core.termination.four_counter import four_counter_detector
from repro.core.termination.vector_count import vector_count_detector
from repro.core.termination.barrier_naive import barrier_naive_detector

_DETECTORS = {
    "epoch": epoch_detector,
    "ft_epoch": ft_epoch_detector,
    "wave_unbounded": wave_unbounded_detector,
    "wave_drain": wave_drain_detector,
    "four_counter": four_counter_detector,
    "vector_count": vector_count_detector,
    "barrier": barrier_naive_detector,
}


def get_detector(name: str):
    """Resolve a detector by name (see module docstring)."""
    try:
        return _DETECTORS[name]
    except KeyError:
        raise ValueError(
            f"unknown termination detector {name!r}; "
            f"expected one of {sorted(_DETECTORS)}"
        ) from None


__all__ = [
    "get_detector",
    "epoch_detector",
    "ft_epoch_detector",
    "wave_unbounded_detector",
    "wave_drain_detector",
    "four_counter_detector",
    "vector_count_detector",
    "barrier_naive_detector",
]
