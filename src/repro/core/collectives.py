"""Synchronous (blocking) team collectives.

These are the building blocks the runtime itself relies on — most
importantly the team ``allreduce`` that drives finish's termination
detection (paper Fig. 7, line 8) and the team barrier that replaces
Fortran 2008's ``SYNC ALL`` (§V).

All collectives are implemented with real tree messages over the active
message layer (radix-2 by default), so their simulated cost is the
expected ``O(log p)`` wire latencies — the constant the paper's Fig. 12
micro-benchmark exposes.

Collective calls on a team must be issued in the same order by every
member (SPMD discipline); a per-image, per-team sequence number matches
the calls up.  Messages here are *not* counted against enclosing finish
blocks: a blocking collective is complete when it returns.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

import numpy as np

from repro.sim.tasks import Future
from repro.runtime.sizeof import sizeof
from repro.runtime.team import Team
from repro.net.active_messages import AMCategory


_UP = "coll.up"
_DOWN = "coll.down"

#: registered reduction operators
_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: a if a >= b else b,
    "min": lambda a, b: a if a <= b else b,
}


def op_function(op: Any) -> Callable[[Any, Any], Any]:
    """Resolve an operator name (or pass a callable through)."""
    if callable(op):
        return op
    try:
        return _OPS[op]
    except KeyError:
        raise ValueError(
            f"unknown reduction op {op!r}; expected one of {sorted(_OPS)} "
            "or a callable"
        ) from None


class _CollState:
    """Per-image state of one collective instance.

    Instances are keyed (image, team, seq) and may be created either by
    the local call or by an early-arriving tree message.
    """

    def __init__(self) -> None:
        self.have_own = False
        self.value: Any = None
        self.op: Optional[Callable] = None
        self.radix = 2
        self.root = 0
        self.child_values: list[Any] = []
        self.sent_up = False
        self.down = Future("coll.down")
        self.is_reduce_only = False


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_UP, _make_up_handler(machine))
    machine.am.ensure_registered(_DOWN, _make_down_handler(machine))


def _make_up_handler(machine):
    def handle_up(ctx, team_id: int, seq: int, root: int, radix: int):
        state = machine.coll_state(ctx.image, team_id, seq, _CollState)
        state.child_values.append(ctx.payload)
        _try_combine(machine, ctx.image, team_id, seq, state, root, radix)
    return handle_up


def _make_down_handler(machine):
    def handle_down(ctx, team_id: int, seq: int, root: int, radix: int):
        team = machine.team_by_id(team_id)
        my_tr = team.rank_of(ctx.image)
        state = machine.coll_state(ctx.image, team_id, seq, _CollState)
        _send_down(machine, team, my_tr, seq, root, radix, ctx.payload)
        state.down.set_result(ctx.payload)
    return handle_down


def _send_down(machine, team: Team, my_tr: int, seq: int, root: int,
               radix: int, value: Any) -> None:
    for child_tr in team.tree_children(my_tr, root, radix):
        machine.am.request_nb(
            team.world_rank(my_tr), team.world_rank(child_tr), _DOWN,
            args=(team.id, seq, root, radix),
            payload=value, payload_size=sizeof(value),
            category=AMCategory.LONG, kind="coll.down",
        )


def _try_combine(machine, world_rank: int, team_id: int, seq: int,
                 state: _CollState, root: int, radix: int) -> None:
    if not state.have_own or state.sent_up:
        return
    team = machine.team_by_id(team_id)
    my_tr = team.rank_of(world_rank)
    children = team.tree_children(my_tr, root, radix)
    if len(state.child_values) < len(children):
        return
    state.sent_up = True
    combined = state.value
    for v in state.child_values:
        combined = state.op(combined, v)
    parent_tr = team.tree_parent(my_tr, root, radix)
    if parent_tr is None:
        # I am the root: begin the downward phase (or finish, for reduce).
        if not state.is_reduce_only:
            _send_down(machine, team, my_tr, seq, root, radix, combined)
        state.down.set_result(combined)
    else:
        machine.am.request_nb(
            world_rank, team.world_rank(parent_tr), _UP,
            args=(team_id, seq, root, radix),
            payload=combined, payload_size=sizeof(combined),
            category=AMCategory.LONG, kind="coll.up",
        )
        if state.is_reduce_only:
            # Non-root's role in a rooted reduce ends with its upward send.
            state.down.set_result(None)


# --------------------------------------------------------------------- #
# Public collectives
# --------------------------------------------------------------------- #

def allreduce(ctx, value: Any, op: Any = "sum",
              team: Optional[Team] = None, radix: int = 2,
              root: int = 0, _reduce_only: bool = False,
              _stat: str = "coll.allreduce") -> Generator[Any, Any, Any]:
    """Blocking team allreduce; every member returns the combined value.

    This is the primitive finish's detector calls; the harness counts its
    invocations through ``machine.stats`` (key ``coll.allreduce``).
    """
    team = team if team is not None else ctx.team_world
    machine = ctx.machine
    _ensure_handlers(machine)
    if ctx.rank not in team:
        raise ValueError(f"image {ctx.rank} is not in team {team.id}")
    machine.stats.incr(_stat)
    seq = machine.next_coll_seq(ctx.rank, team.id)
    state = machine.coll_state(ctx.rank, team.id, seq, _CollState)
    state.have_own = True
    state.value = value
    state.op = op_function(op)
    state.is_reduce_only = _reduce_only
    _try_combine(machine, ctx.rank, team.id, seq, state, root, radix)
    result = yield state.down
    machine.drop_coll_state(ctx.rank, team.id, seq)
    return result


def reduce(ctx, value: Any, op: Any = "sum", root: int = 0,
           team: Optional[Team] = None, radix: int = 2
           ) -> Generator[Any, Any, Any]:
    """Blocking rooted reduction; the root returns the combined value,
    other members return None (their role ends with the upward send)."""
    return (yield from allreduce(
        ctx, value, op=op, team=team, radix=radix, root=root,
        _reduce_only=True, _stat="coll.reduce",
    ))


def barrier(ctx, team: Optional[Team] = None, radix: int = 2
            ) -> Generator[Any, Any, None]:
    """Team barrier (the CAF 2.0 replacement for ``SYNC ALL``)."""
    yield from allreduce(ctx, 0, op="sum", team=team, radix=radix,
                         _stat="coll.barrier")


def broadcast(ctx, value: Any, root: int = 0,
              team: Optional[Team] = None, radix: int = 2
              ) -> Generator[Any, Any, Any]:
    """Blocking broadcast of the root's ``value`` to every member."""
    team = team if team is not None else ctx.team_world
    machine = ctx.machine
    _ensure_handlers(machine)
    machine.stats.incr("coll.broadcast")
    seq = machine.next_coll_seq(ctx.rank, team.id)
    state = machine.coll_state(ctx.rank, team.id, seq, _CollState)
    my_tr = team.rank_of(ctx.rank)
    if my_tr == root:
        _send_down(machine, team, my_tr, seq, root, radix, value)
        state.down.set_result(value)
    result = yield state.down
    machine.drop_coll_state(ctx.rank, team.id, seq)
    return result


def gather(ctx, value: Any, root: int = 0, team: Optional[Team] = None,
           radix: int = 2) -> Generator[Any, Any, Optional[list]]:
    """Blocking gather: the root returns ``[value of team rank 0, 1, ...]``,
    other members return None."""
    team = team if team is not None else ctx.team_world
    my_tr = team.rank_of(ctx.rank)

    def merge(a: dict, b: dict) -> dict:
        out = dict(a)
        out.update(b)
        return out

    combined = yield from allreduce(
        ctx, {my_tr: value}, op=merge, team=team, radix=radix, root=root,
        _reduce_only=True, _stat="coll.gather",
    )
    if combined is None:
        return None
    return [combined[i] for i in range(team.size)]


def allgather(ctx, value: Any, team: Optional[Team] = None,
              radix: int = 2) -> Generator[Any, Any, list]:
    """Blocking allgather (gather + broadcast)."""
    team = team if team is not None else ctx.team_world
    my_tr = team.rank_of(ctx.rank)

    def merge(a: dict, b: dict) -> dict:
        out = dict(a)
        out.update(b)
        return out

    combined = yield from allreduce(
        ctx, {my_tr: value}, op=merge, team=team, radix=radix,
        _stat="coll.allgather",
    )
    return [combined[i] for i in range(team.size)]


def scan(ctx, value: Any, op: Any = "sum", team: Optional[Team] = None,
         inclusive: bool = True, radix: int = 2) -> Generator[Any, Any, Any]:
    """Blocking prefix reduction over team ranks.

    Implemented as allgather + local prefix (depth ``O(log p)``, volume
    ``O(p)`` — adequate for a simulated runtime; a production scan would
    use a dedicated prefix tree).
    Exclusive scan returns None on team rank 0.
    """
    team = team if team is not None else ctx.team_world
    fn = op_function(op)
    values = yield from allgather(ctx, value, team=team, radix=radix)
    my_tr = team.rank_of(ctx.rank)
    stop = my_tr + 1 if inclusive else my_tr
    if stop == 0:
        return None
    acc = values[0]
    for v in values[1:stop]:
        acc = fn(acc, v)
    return acc


def scatter(ctx, values: Optional[list], root: int = 0,
            team: Optional[Team] = None, radix: int = 2
            ) -> Generator[Any, Any, Any]:
    """Blocking scatter: the root supplies one value per team rank; each
    member returns its own.  Non-roots pass ``values=None``.

    Implemented as a broadcast of the full list (tree scatter with payload
    splitting is left to the asynchronous variant).
    """
    team = team if team is not None else ctx.team_world
    my_tr = team.rank_of(ctx.rank)
    if my_tr == root:
        if values is None or len(values) != team.size:
            raise ValueError(
                "scatter root must supply exactly one value per member"
            )
    full = yield from broadcast(ctx, values, root=root, team=team,
                                radix=radix)
    return full[my_tr]


def alltoall(ctx, values: list, team: Optional[Team] = None,
             radix: int = 2) -> Generator[Any, Any, list]:
    """Blocking all-to-all: member i supplies ``values[j]`` for member j
    and returns the list of values addressed to it."""
    team = team if team is not None else ctx.team_world
    if len(values) != team.size:
        raise ValueError("alltoall needs exactly one value per member")
    my_tr = team.rank_of(ctx.rank)
    rows = yield from allgather(ctx, values, team=team, radix=radix)
    return [rows[j][my_tr] for j in range(team.size)]


def sort(ctx, values: np.ndarray, team: Optional[Team] = None,
         radix: int = 2) -> Generator[Any, Any, np.ndarray]:
    """Blocking distributed sort: each member contributes an equal-length
    array; the concatenation is sorted and redistributed so that member i
    receives the i-th sorted chunk (gather-sort-scatter algorithm)."""
    team = team if team is not None else ctx.team_world
    values = np.asarray(values)
    chunks = yield from allgather(ctx, values, team=team, radix=radix)
    if len({len(c) for c in chunks}) != 1:
        raise ValueError("sort requires equal-length contributions")
    merged = np.sort(np.concatenate(chunks))
    n = len(values)
    my_tr = team.rank_of(ctx.rank)
    return merged[my_tr * n:(my_tr + 1) * n]


def team_split(ctx, team: Team, color: int, key: int
               ) -> Generator[Any, Any, Team]:
    """Collectively split ``team`` into sub-teams by ``color``, ordered by
    ``(key, world rank)`` (paper §II-A).  Every member returns its new
    team; the Team object is shared (interned) across members."""
    machine = ctx.machine
    machine.stats.incr("coll.team_split")
    triples = yield from allgather(ctx, (color, key, ctx.rank), team=team)
    groups: dict[int, list[tuple[int, int]]] = {}
    for c, k, w in triples:
        groups.setdefault(c, []).append((k, w))
    my_color = color
    members = [w for _k, w in sorted(groups[my_color])]
    return machine.intern_team(members, parent=team)
