"""The four completion points of an asynchronous operation (paper Fig. 1).

Every asynchronous operation in the runtime returns an :class:`AsyncOp`
carrying one future per completion point:

- ``initiated``     — the operation has been queued for execution
  (always resolved by the time the initiating call returns);
- ``local_data``    — inputs on the initiator may be overwritten, outputs
  on the initiator may be read (what ``cofence`` waits for);
- ``local_op``      — all pair-wise communication involving the initiator
  is complete (what an attached event signals);
- ``global_done``   — the operation is complete on every participating
  image (what ``finish`` guarantees for implicit operations).

The invariant ``local_data ≤ local_op ≤ global_done`` (in time) holds for
every operation; tests assert it.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.tasks import Future
from repro.runtime.memory_model import PendingOp


class AsyncOp:
    """Handle for one asynchronous operation."""

    __slots__ = ("kind", "initiated", "local_data", "local_op",
                 "global_done", "pending_op", "rc")

    def __init__(self, kind: str):
        self.kind = kind
        self.initiated = Future(f"{kind}.initiated")
        self.local_data = Future(f"{kind}.local_data")
        self.local_op = Future(f"{kind}.local_op")
        self.global_done = Future(f"{kind}.global_done")
        #: the record registered on the initiating activation when the
        #: operation uses implicit completion; None for explicit ops
        self.pending_op: Optional[PendingOp] = None
        #: race-detector clock material (analysis.racecheck), when enabled
        self.rc = None

    def make_pending(self, reads_local: bool, writes_local: bool,
                     released: Optional[Future] = None,
                     op_id: Optional[int] = None) -> PendingOp:
        """Build (and remember) the pending-op record for this operation."""
        self.pending_op = PendingOp(
            self.kind, reads_local, writes_local,
            local_data=self.local_data, local_op=self.local_op,
            released=released if released is not None else self.global_done,
            op_id=op_id,
        )
        return self.pending_op

    def __repr__(self) -> str:
        stage = ("global" if self.global_done.done else
                 "local_op" if self.local_op.done else
                 "local_data" if self.local_data.done else
                 "initiated" if self.initiated.done else "new")
        return f"<AsyncOp {self.kind} @{stage}>"


def chain(src: Future, dst: Future) -> None:
    """Resolve ``dst`` when ``src`` resolves (value forwarded)."""
    def forward(f: Future) -> None:
        exc = f.exception()
        if exc is not None:
            dst.set_exception(exc)
        else:
            dst.set_result(f.result())
    src.add_done_callback(forward)
