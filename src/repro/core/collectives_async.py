"""Asynchronous team collectives (paper §II-C.3).

The paper's vision covers alltoall, barrier, broadcast, gather, reduce,
scatter, scan and sort, each overlappable with computation and carrying
optional event parameters::

    team_broadcast_async(A, root, myteam, srcE, localE)

``src_event`` signals *local data completion* (on the root: the source
buffer may be overwritten; on a participant: the data has arrived and may
be read).  ``local_event`` signals *local operation completion* (all
pairwise communication involving this image is done).  Fig. 4 spells the
matrix out; tests assert it.

Implementation notes
--------------------
``broadcast_async``, ``reduce_async``, ``allreduce_async`` and
``barrier_async`` run fully staged tree state machines with per-stage
completion.  The remaining collectives (gather/scatter/allgather/
alltoall/scan/sort) are *composite*: an internal task runs the
synchronous tree algorithm and the handle's ``local_data``/``local_op``
collapse to its completion — conservative but sound (documented
substitution; the paper's evaluation only exercises broadcast-style
completion splitting).

When called with no events a collective uses implicit completion: it
registers with the activation for ``cofence`` and its tree messages are
counted against the enclosing ``finish`` (the team of the collective must
be the finish team or a subset, §III-A.1 — enforced here).
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

import numpy as np

from repro.sim.tasks import Future, all_of
from repro.runtime.sizeof import sizeof
from repro.runtime.team import Team
from repro.net.active_messages import AMCategory
from repro.core.completion import AsyncOp, chain
from repro.core import collectives as sync
from repro.core import finish as fin

_BCAST = "acoll.bcast"
_REDUCE_UP = "acoll.reduce_up"
_SUBTREE_DONE = "acoll.subtree_done"


class CollectiveUsageError(RuntimeError):
    """Misuse of an asynchronous collective (team/finish mismatch...)."""


class _AState:
    """Per-image state of one asynchronous collective instance."""

    def __init__(self) -> None:
        self.op: Optional[AsyncOp] = None
        self.buf: Optional[np.ndarray] = None
        self.arrived_payload: Any = None
        self.arrived = False
        self.have_own = False
        self.value: Any = None
        self.reduce_op = None
        self.child_values: list[Any] = []
        self.sent_up = False
        self.forwarded_down = False
        self.subtree_done_count = 0
        self.my_work_done = False
        self.key = None
        self.src_event = None
        self.local_event = None
        self.down_payload: Any = None
        self.pair_futures: list[Future] = []
        self.phase2 = False  # allreduce: broadcast phase underway


def _check_finish_team(ctx, team: Team, implicit: bool) -> Optional[tuple]:
    """Validate the §III-A.1 containment rule; returns the frame key."""
    if not implicit:
        return None
    frame = ctx.activation.current_frame()
    if frame is None:
        return None
    if not team.is_subset_of(frame.team):
        raise CollectiveUsageError(
            f"async collective team {team.id} is not a subset of the "
            f"enclosing finish team {frame.team.id} (paper §III-A.1)"
        )
    return frame.key


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_BCAST, _make_bcast_handler(machine))
    machine.am.ensure_registered(_REDUCE_UP, _make_reduce_up_handler(machine))
    machine.am.ensure_registered(_SUBTREE_DONE,
                                 _make_subtree_done_handler(machine))


# --------------------------------------------------------------------- #
# Broadcast
# --------------------------------------------------------------------- #

def broadcast_async(ctx, buf: np.ndarray, root: int = 0,
                    team: Optional[Team] = None,
                    src_event=None, local_event=None,
                    radix: int = 2) -> AsyncOp:
    """Asynchronously broadcast the root's ``buf`` contents into every
    member's ``buf``.  Returns immediately with the handle."""
    machine = ctx.machine
    _ensure_handlers(machine)
    team = team if team is not None else ctx.team_world
    implicit = src_event is None and local_event is None
    key = _check_finish_team(ctx, team, implicit)
    machine.stats.incr("acoll.broadcast")

    seq = machine.next_coll_seq(ctx.rank, team.id)
    state = machine.coll_state(ctx.rank, team.id, seq, _AState)
    op = AsyncOp("broadcast_async")
    state.op = op
    state.buf = buf
    state.key = key
    state.src_event = _resolve_event(ctx, src_event)
    state.local_event = _resolve_event(ctx, local_event)
    my_tr = team.rank_of(ctx.rank)

    if my_tr == root:
        data = np.copy(buf)
        state.down_payload = data
        _bcast_forward(machine, team, my_tr, seq, root, radix, state, data,
                       cause=ctx.activation.cause)
        # Root's local-data point: all injections to children done (the
        # source buffer has been fully read by the NIC).
        _resolve_local_data(machine, ctx.rank, state)
    else:
        state.have_own = True  # marks local participation
        if state.arrived:
            _bcast_apply(machine, team, my_tr, seq, root, radix, state,
                         cause=ctx.activation.cause)

    if implicit:
        reads = my_tr == root
        ctx.activation.register(op.make_pending(
            reads_local=reads, writes_local=not reads,
            released=op.local_op))
    return op


def _resolve_event(ctx, ev):
    from repro.runtime.event import EventRef, EventVar
    if ev is None:
        return None
    if isinstance(ev, EventRef):
        return ev
    if isinstance(ev, EventVar):
        return ev.ref_for(ctx.rank)
    raise TypeError(f"expected EventVar or EventRef, got {type(ev).__name__}")


def _resolve_local_data(machine, world_rank: int, state: _AState) -> None:
    injected = [f for f in state.pair_futures if f.name.endswith("inj")]
    done = all_of(injected, "acoll.ld") if injected else _resolved()
    chain(done, state.op.local_data)
    if state.src_event is not None:
        done.add_done_callback(
            lambda _f: machine.post_event(state.src_event,
                                          from_rank=world_rank))
    _maybe_local_op(machine, world_rank, state)


def _resolved() -> Future:
    f = Future("resolved")
    f.set_result(None)
    return f


def _maybe_local_op(machine, world_rank: int, state: _AState) -> None:
    """Local operation completion: my receive happened (if any) and all
    my sends are acknowledged."""
    if state.op is None or state.op.local_op.done:
        # The local call has not happened yet (data raced ahead of the
        # SPMD program) — the call itself will re-run this check.
        return
    acked = [f for f in state.pair_futures if f.name.endswith("ack")]
    if not state.my_work_done or not all(f.done for f in acked):
        for f in acked:
            if not f.done:
                f.add_done_callback(
                    lambda _g: _maybe_local_op(machine, world_rank, state))
        return
    state.op.local_op.set_result(None)
    if state.local_event is not None:
        machine.post_event(state.local_event, from_rank=world_rank)


def _bcast_forward(machine, team: Team, my_tr: int, seq: int, root: int,
                   radix: int, state: _AState, data: np.ndarray,
                   cause=None) -> None:
    for child_tr in team.tree_children(my_tr, root, radix):
        dst = team.world_rank(child_tr)
        src_w = team.world_rank(my_tr)
        stamp = fin.count_send(machine, src_w, state.key, dst=dst,
                               cause=cause)
        receipt = machine.am.request_nb(
            src_w, dst, _BCAST,
            args=(team.id, seq, root, radix, state.key,
                  fin.wire_tag(stamp)),
            payload=data, payload_size=sizeof(data),
            category=AMCategory.LONG, want_ack=True, kind="acoll.bcast",
        )
        inj = Future(f"bcast{seq}.inj")
        ack = Future(f"bcast{seq}.ack")
        chain(receipt.injected, inj)
        chain(receipt.delivered, ack)
        state.pair_futures.extend([inj, ack])
        if state.key is not None:
            receipt.delivered.add_done_callback(
                lambda f, k=state.key, s=stamp, w=src_w:
                fin.count_delivery_outcome(machine, w, k, s, f))
    state.my_work_done = True


def _make_bcast_handler(machine):
    def handle_bcast(ctx, team_id, seq, root, radix, key, tag):
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        state = machine.coll_state(ctx.image, team_id, seq, _AState)
        state.arrived = True
        state.arrived_payload = ctx.payload
        team = machine.team_by_id(team_id)
        my_tr = team.rank_of(ctx.image)
        if state.have_own:
            _bcast_apply(machine, team, my_tr, seq, root, radix, state,
                         cause=recv_stamp)
        else:
            # Data arrived before the local call: forward immediately so
            # the tree keeps moving; apply to the buffer at the call.
            _bcast_forward_only(machine, team, my_tr, seq, root, radix,
                                state, cause=recv_stamp)
        fin.count_completed(machine, ctx.image, key, recv_stamp)
    return handle_bcast


def _bcast_forward_only(machine, team, my_tr, seq, root, radix,
                        state: _AState, cause=None) -> None:
    if state.forwarded_down:
        return
    state.forwarded_down = True
    _bcast_forward(machine, team, my_tr, seq, root, radix, state,
                   state.arrived_payload, cause=cause)


def _bcast_apply(machine, team, my_tr, seq, root, radix,
                 state: _AState, cause=None) -> None:
    _bcast_forward_only(machine, team, my_tr, seq, root, radix, state,
                        cause=cause)
    state.my_work_done = True
    w = team.world_rank(my_tr)
    if state.buf is not None and not state.op.local_data.done:
        state.buf[...] = state.arrived_payload
        state.op.local_data.set_result(None)
        if state.src_event is not None:
            machine.post_event(state.src_event, from_rank=w)
    _maybe_local_op(machine, w, state)


def _make_reduce_up_handler(machine):
    def handle_reduce_up(ctx, team_id, seq, root, radix, key, tag):
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        state = machine.coll_state(ctx.image, team_id, seq, _AState)
        state.child_values.append(ctx.payload)
        team = machine.team_by_id(team_id)
        _reduce_try_combine(machine, team, team.rank_of(ctx.image), seq,
                            root, radix, state, cause=recv_stamp)
        fin.count_completed(machine, ctx.image, key, recv_stamp)
    return handle_reduce_up


def _make_subtree_done_handler(machine):
    def handle_subtree_done(ctx, team_id, seq):
        state = machine.coll_state(ctx.image, team_id, seq, _AState)
        state.subtree_done_count += 1
        hook = getattr(state, "on_subtree_done", None)
        if hook is not None:
            hook()
    return handle_subtree_done


# --------------------------------------------------------------------- #
# Reduce / allreduce / barrier
# --------------------------------------------------------------------- #

def reduce_async(ctx, value: Any, recvbuf: Optional[np.ndarray] = None,
                 op: Any = "sum", root: int = 0,
                 team: Optional[Team] = None,
                 src_event=None, local_event=None,
                 radix: int = 2, _broadcast_result: bool = False,
                 result_buf: Optional[np.ndarray] = None) -> AsyncOp:
    """Asynchronously reduce each member's ``value`` to the root (written
    into the root's ``recvbuf`` if given).  With ``_broadcast_result``
    this becomes an allreduce: the combined value is broadcast back and
    written into every member's ``result_buf``."""
    machine = ctx.machine
    _ensure_handlers(machine)
    team = team if team is not None else ctx.team_world
    implicit = src_event is None and local_event is None
    key = _check_finish_team(ctx, team, implicit)
    machine.stats.incr("acoll.allreduce" if _broadcast_result
                       else "acoll.reduce")

    seq = machine.next_coll_seq(ctx.rank, team.id)
    state = machine.coll_state(ctx.rank, team.id, seq, _AState)
    aop = AsyncOp("allreduce_async" if _broadcast_result else "reduce_async")
    state.op = aop
    state.key = key
    state.src_event = _resolve_event(ctx, src_event)
    state.local_event = _resolve_event(ctx, local_event)
    state.have_own = True
    state.value = value
    state.reduce_op = sync.op_function(op)
    state.buf = result_buf if _broadcast_result else recvbuf
    state.phase2 = _broadcast_result
    my_tr = team.rank_of(ctx.rank)
    _reduce_try_combine(machine, team, my_tr, seq, root, radix, state,
                        cause=ctx.activation.cause)

    if implicit:
        ctx.activation.register(aop.make_pending(
            reads_local=True, writes_local=state.buf is not None,
            released=aop.local_op))
    return aop


def allreduce_async(ctx, value: Any, result_buf: Optional[np.ndarray] = None,
                    op: Any = "sum", team: Optional[Team] = None,
                    src_event=None, local_event=None,
                    radix: int = 2) -> AsyncOp:
    """Asynchronous allreduce (reduce to team rank 0, broadcast back)."""
    return reduce_async(
        ctx, value, op=op, root=0, team=team, src_event=src_event,
        local_event=local_event, radix=radix,
        _broadcast_result=True, result_buf=result_buf,
    )


def barrier_async(ctx, team: Optional[Team] = None,
                  src_event=None, local_event=None,
                  radix: int = 2) -> AsyncOp:
    """Asynchronous barrier: an allreduce of nothing.  The handle's
    ``local_op`` (or ``local_event``) fires when every member has
    arrived, as observed by this image."""
    return reduce_async(
        ctx, 0, op="sum", team=team, src_event=src_event,
        local_event=local_event, radix=radix,
        _broadcast_result=True, result_buf=None,
    )


def _reduce_try_combine(machine, team: Team, my_tr: int, seq: int,
                        root: int, radix: int, state: _AState,
                        cause=None) -> None:
    if not state.have_own or state.sent_up:
        return
    children = team.tree_children(my_tr, root, radix)
    if len(state.child_values) < len(children):
        return
    state.sent_up = True
    combined = state.value
    for v in state.child_values:
        combined = state.reduce_op(combined, v)
    w = team.world_rank(my_tr)
    parent_tr = team.tree_parent(my_tr, root, radix)
    if parent_tr is None:
        # Root: reduction complete here.
        if state.buf is not None:
            state.buf[...] = combined
        state.down_payload = combined
        if state.phase2:
            # Allreduce: fan the result back out on the broadcast plane.
            state.arrived = True
            state.arrived_payload = combined
            _bcast_forward(machine, team, my_tr, seq, root, radix, state,
                           combined, cause=cause)
            state.op.local_data.set_result(None)
            if state.src_event is not None:
                machine.post_event(state.src_event, from_rank=w)
            _maybe_local_op(machine, w, state)
        else:
            state.my_work_done = True
            state.op.local_data.set_result(None)
            if state.src_event is not None:
                machine.post_event(state.src_event, from_rank=w)
            _maybe_local_op(machine, w, state)
    else:
        dst = team.world_rank(parent_tr)
        stamp = fin.count_send(machine, w, state.key, dst=dst, cause=cause)
        receipt = machine.am.request_nb(
            w, dst, _REDUCE_UP,
            args=(team.id, seq, root, radix, state.key,
                  fin.wire_tag(stamp)),
            payload=combined, payload_size=sizeof(combined),
            category=AMCategory.LONG, want_ack=True, kind="acoll.reduce_up",
        )
        inj = Future(f"reduce{seq}.inj")
        ack = Future(f"reduce{seq}.ack")
        chain(receipt.injected, inj)
        chain(receipt.delivered, ack)
        state.pair_futures.extend([inj, ack])
        if state.key is not None:
            receipt.delivered.add_done_callback(
                lambda f, k=state.key, s=stamp:
                fin.count_delivery_outcome(machine, w, k, s, f))
        if state.phase2:
            # Non-root in an allreduce: completion comes with the
            # downward broadcast (handled by the bcast handler, which
            # needs a buffer target even when result_buf is None).
            if state.buf is None:
                state.buf = np.zeros(1)
        else:
            # Non-root in a rooted reduce: my role ends with my upward
            # send; my value has been read once I inject it.
            state.my_work_done = True
            chain(inj, state.op.local_data)
            if state.src_event is not None:
                inj.add_done_callback(
                    lambda _f: machine.post_event(state.src_event,
                                                  from_rank=w))
            _maybe_local_op(machine, w, state)


# --------------------------------------------------------------------- #
# Composite asynchronous collectives
# --------------------------------------------------------------------- #

_composite_seq = itertools.count()


def _composite(ctx, kind: str, team: Optional[Team], src_event, local_event,
               body) -> AsyncOp:
    """Run a synchronous collective algorithm in a background task and
    expose it through an AsyncOp (local_data == local_op == completion).

    ``body(result_slot)`` is a generator; it stores its result in
    ``result_slot[0]``.
    """
    machine = ctx.machine
    team = team if team is not None else ctx.team_world
    implicit = src_event is None and local_event is None
    key = _check_finish_team(ctx, team, implicit)
    machine.stats.incr(f"acoll.{kind}")
    op = AsyncOp(f"{kind}_async")
    src_ref = _resolve_event(ctx, src_event)
    local_ref = _resolve_event(ctx, local_event)
    result_slot = [None]

    # Hold back an enclosing finish until the composite completes: count
    # a synthetic self-addressed message whose delivery/completion land
    # when the internal task finishes (the underlying blocking collective
    # does not itself register with finish).
    stamp = fin.count_send(machine, ctx.rank, key, dst=ctx.rank,
                           cause=ctx.activation.cause)

    def runner():
        yield from body(result_slot)
        op.local_data.set_result(result_slot[0])
        if src_ref is not None:
            machine.post_event(src_ref, from_rank=ctx.rank)
        op.local_op.set_result(result_slot[0])
        if local_ref is not None:
            machine.post_event(local_ref, from_rank=ctx.rank)
        op.global_done.set_result(result_slot[0])
        if key is not None:
            fin.count_delivered(machine, ctx.rank, key, stamp)
            recv_stamp = fin.count_received(machine, ctx.rank, key,
                                            fin.wire_tag(stamp),
                                            src=ctx.rank)
            fin.count_completed(machine, ctx.rank, key, recv_stamp)

    machine.start_internal_task(runner(), name=f"{kind}_async@{ctx.rank}")
    op.initiated.set_result(None)
    if implicit:
        ctx.activation.register(op.make_pending(
            reads_local=True, writes_local=True, released=op.global_done))
    return op


def gather_async(ctx, value: Any, root: int = 0,
                 team: Optional[Team] = None,
                 src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous gather; the root's handle resolves to the list of
    member values (others to None)."""
    def body(slot):
        slot[0] = yield from sync.gather(ctx, value, root=root, team=team)
    return _composite(ctx, "gather", team, src_event, local_event, body)


def scatter_async(ctx, values: Optional[list], root: int = 0,
                  team: Optional[Team] = None,
                  src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous scatter; each member's handle resolves to its value."""
    def body(slot):
        slot[0] = yield from sync.scatter(ctx, values, root=root, team=team)
    return _composite(ctx, "scatter", team, src_event, local_event, body)


def allgather_async(ctx, value: Any, team: Optional[Team] = None,
                    src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous allgather; resolves to the list of member values."""
    def body(slot):
        slot[0] = yield from sync.allgather(ctx, value, team=team)
    return _composite(ctx, "allgather", team, src_event, local_event, body)


def alltoall_async(ctx, values: list, team: Optional[Team] = None,
                   src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous all-to-all; resolves to the values addressed to me."""
    def body(slot):
        slot[0] = yield from sync.alltoall(ctx, values, team=team)
    return _composite(ctx, "alltoall", team, src_event, local_event, body)


def scan_async(ctx, value: Any, op: Any = "sum",
               team: Optional[Team] = None, inclusive: bool = True,
               src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous prefix reduction; resolves to my prefix value."""
    def body(slot):
        slot[0] = yield from sync.scan(ctx, value, op=op, team=team,
                                       inclusive=inclusive)
    return _composite(ctx, "scan", team, src_event, local_event, body)


def sort_async(ctx, values: np.ndarray, team: Optional[Team] = None,
               src_event=None, local_event=None) -> AsyncOp:
    """Asynchronous distributed sort; resolves to my sorted chunk."""
    def body(slot):
        slot[0] = yield from sync.sort(ctx, values, team=team)
    return _composite(ctx, "sort", team, src_event, local_event, body)
