"""Predicated asynchronous copies (paper §II-C.1).

::

    copy_async(dest, src, pre_event=..., src_event=..., dest_event=...)

``dest``/``src`` are either :class:`~repro.runtime.coarray.CoarrayRef`
handles (possibly remote) or local numpy buffers of the initiating image.
All placement combinations are supported:

- local → remote (*put path*): one data message;
- remote → local (*get path*): a request plus a data reply;
- remote → remote (*forward path*): the initiator sends a control
  message to the source image, which puts to the destination and has it
  confirm back to the initiator;
- local → local: a memcpy charged at memory bandwidth.

Events (all optional, each a local :class:`EventVar` or a remote
:class:`EventRef`):

- ``pre_event``  — the copy proceeds only after this event is posted
  (one post is consumed);
- ``src_event``  — posted when the source data has been read (the source
  buffer may be overwritten);
- ``dest_event`` — posted when the data has been delivered to the
  destination buffer.

When no completion event is given the copy uses *implicit completion*:
it registers on the activation for ``cofence`` and is counted against the
enclosing ``finish`` frame.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Union

import numpy as np

from repro.runtime.coarray import CoarrayRef
from repro.runtime.event import EventRef, EventVar
from repro.net.active_messages import AMCategory
from repro.core.completion import AsyncOp, chain
from repro.core import finish as fin

_PUT = "copy.put"
_GET_REQ = "copy.get_req"
_DATA = "copy.data"
_FWD = "copy.fwd"
_DONE = "copy.done"

_tokens = itertools.count(1)


class _Loc:
    """Normalized endpoint: a coarray ref, or a local buffer of the
    initiator."""

    __slots__ = ("ref", "buffer", "rank")

    def __init__(self, ref: Optional[CoarrayRef], buffer: Optional[np.ndarray],
                 rank: int):
        self.ref = ref
        self.buffer = buffer
        self.rank = rank

    @property
    def nbytes(self) -> int:
        if self.ref is not None:
            return self.ref.nbytes
        return int(self.buffer.nbytes)

    def read(self) -> np.ndarray:
        if self.ref is not None:
            return self.ref.read()
        return np.copy(self.buffer)

    def write(self, data: Any) -> None:
        if self.ref is not None:
            self.ref.write(data)
        else:
            self.buffer[...] = data


def _normalize(ctx, x: Union[CoarrayRef, np.ndarray], what: str) -> _Loc:
    if isinstance(x, CoarrayRef):
        return _Loc(x, None, x.world_rank)
    if isinstance(x, np.ndarray):
        return _Loc(None, x, ctx.rank)
    if what == "src" and isinstance(x, (np.generic, int, float, complex)):
        # Scalars are fine as sources (a value to write); destinations
        # must be writable storage.
        return _Loc(None, np.asarray(x), ctx.rank)
    raise TypeError(
        f"copy_async {what} must be a CoarrayRef or a local numpy array, "
        f"got {type(x).__name__}"
    )


def _event_ref(ctx, ev) -> Optional[EventRef]:
    if ev is None:
        return None
    if isinstance(ev, EventRef):
        return ev
    if isinstance(ev, EventVar):
        return ev.ref_for(ctx.rank)
    raise TypeError(f"expected EventVar or EventRef, got {type(ev).__name__}")


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_PUT, _make_put_handler(machine))
    machine.am.ensure_registered(_GET_REQ, _make_get_req_handler(machine))
    machine.am.ensure_registered(_DATA, _make_data_handler(machine))
    machine.am.ensure_registered(_FWD, _make_fwd_handler(machine))
    machine.am.ensure_registered(_DONE, _make_done_handler(machine))


def _make_put_handler(machine):
    def handle_put(ctx, ref: CoarrayRef, key, tag, dest_event,
                   done_token, done_rank):
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        ref.write(ctx.payload)
        fin.count_completed(machine, ctx.image, key, recv_stamp)
        if dest_event is not None:
            machine.post_event(dest_event, from_rank=ctx.image)
        if done_token is not None:
            machine.am.request_nb(
                ctx.image, done_rank, _DONE, args=(done_token,),
                category=AMCategory.SHORT, kind="copy.done",
            )
    return handle_put


def _make_get_req_handler(machine):
    def handle_get_req(ctx, ref: CoarrayRef, token, key, tag, src_event,
                       reply_rank):
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        data = ref.read()
        if src_event is not None:
            machine.post_event(src_event, from_rank=ctx.image)
        reply_stamp = fin.count_send(machine, ctx.image, key, dst=reply_rank,
                                     cause=recv_stamp)
        receipt = machine.am.request_nb(
            ctx.image, reply_rank, _DATA,
            args=(token, key, fin.wire_tag(reply_stamp)),
            payload=data, payload_size=int(np.asarray(data).nbytes),
            category=AMCategory.LONG, want_ack=(key is not None),
            kind="copy.data",
        )
        if key is not None:
            src_img = ctx.image
            receipt.delivered.add_done_callback(
                lambda f: fin.count_delivery_outcome(machine, src_img, key,
                                                     reply_stamp, f))
        fin.count_completed(machine, ctx.image, key, recv_stamp)
    return handle_get_req


def _make_data_handler(machine):
    def handle_data(ctx, token, key, reply_tag):
        recv_stamp = fin.count_received(machine, ctx.image, key, reply_tag,
                                        src=ctx.src)
        complete = machine.scratch.pop(("copy.token", token))
        complete(ctx.payload)
        fin.count_completed(machine, ctx.image, key, recv_stamp)
    return handle_data


def _make_fwd_handler(machine):
    def handle_fwd(ctx, src_ref: CoarrayRef, dest_ref: CoarrayRef, key, tag,
                   src_event, dest_event, done_token, done_rank):
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        data = src_ref.read()
        if src_event is not None:
            machine.post_event(src_event, from_rank=ctx.image)
        put_stamp = fin.count_send(machine, ctx.image, key,
                                   dst=dest_ref.world_rank,
                                   cause=recv_stamp)
        src_img = ctx.image
        receipt = machine.am.request_nb(
            ctx.image, dest_ref.world_rank, _PUT,
            args=(dest_ref, key, fin.wire_tag(put_stamp), dest_event,
                  done_token, done_rank),
            payload=data, payload_size=int(np.asarray(data).nbytes),
            category=AMCategory.LONG, want_ack=(key is not None),
            kind="copy.put",
        )
        if key is not None:
            receipt.delivered.add_done_callback(
                lambda f: fin.count_delivery_outcome(machine, src_img, key,
                                                     put_stamp, f))
        fin.count_completed(machine, ctx.image, key, recv_stamp)
    return handle_fwd


def _make_done_handler(machine):
    def handle_done(ctx, token):
        complete = machine.scratch.pop(("copy.token", token))
        complete(None)
    return handle_done


# --------------------------------------------------------------------- #
# The operation
# --------------------------------------------------------------------- #

def copy_async(ctx, dest: Union[CoarrayRef, np.ndarray],
               src: Union[CoarrayRef, np.ndarray],
               pre_event=None, src_event=None, dest_event=None,
               _explicit: bool = False) -> AsyncOp:
    """Initiate an asynchronous copy; returns immediately with the handle
    (the return guarantees initiation completion only, §I).

    ``_explicit`` forces explicit-completion treatment even without
    events (used by the blocking get/put wrappers, which synchronize on
    the handle themselves and must not be finish-counted).
    """
    machine = ctx.machine
    _ensure_handlers(machine)
    d = _normalize(ctx, dest, "dest")
    s = _normalize(ctx, src, "src")
    pre = _event_ref(ctx, pre_event)
    src_ev = _event_ref(ctx, src_event)
    dest_ev = _event_ref(ctx, dest_event)

    implicit = src_event is None and dest_event is None and not _explicit
    frame = ctx.activation.current_frame() if implicit else None
    key = frame.key if frame is not None else None

    op = AsyncOp("copy")
    machine.stats.incr("copy.initiated")

    src_local = s.rank == ctx.rank
    dest_local = d.rank == ctx.rank

    op.initiated.set_result(None)
    if implicit:
        pending = op.make_pending(
            reads_local=src_local, writes_local=dest_local,
            released=op.global_done, op_id=machine.next_op_id(),
        )
        ctx.activation.register(pending)

    rcop = (machine.racecheck.copy_begin(ctx, op, implicit,
                                         predicated=pre is not None)
            if machine.racecheck is not None else None)

    def launch() -> None:
        if op.pending_op is not None:
            op.pending_op.started = True
        if rcop is not None:
            machine.racecheck.copy_started(ctx, rcop, implicit, d, s, pre,
                                           src_ev, dest_ev)
        if src_local and dest_local:
            _start_local(ctx, machine, op, d, s, src_ev, dest_ev)
        elif src_local:
            _start_put(ctx, machine, op, d, s, key, src_ev, dest_ev)
        elif dest_local:
            _start_get(ctx, machine, op, d, s, key, src_ev, dest_ev)
        else:
            _start_forward(ctx, machine, op, d, s, key, src_ev, dest_ev)

    if pre is None:
        launch()
    else:
        if op.pending_op is not None:
            op.pending_op.started = False
        machine.when_event(pre, ctx.rank, launch)
    return op


def _start_local(ctx, machine, op: AsyncOp, d: _Loc, s: _Loc,
                 src_ev, dest_ev) -> None:
    """Both endpoints on the initiator: a memcpy at memory bandwidth."""
    data = s.read()
    delay = max(machine.params.o_send,
                machine.params.transfer_time(s.nbytes))

    def apply() -> None:
        d.write(data)
        if src_ev is not None:
            machine.post_event(src_ev, from_rank=ctx.rank)
        if dest_ev is not None:
            machine.post_event(dest_ev, from_rank=ctx.rank)
        op.local_data.set_result(None)
        op.local_op.set_result(None)
        op.global_done.set_result(None)

    machine.sim.schedule(delay, apply)


def _start_put(ctx, machine, op: AsyncOp, d: _Loc, s: _Loc, key,
               src_ev, dest_ev) -> None:
    """Source on the initiator, destination remote: one data message."""
    data = s.read()
    stamp = fin.count_send(machine, ctx.rank, key, dst=d.rank,
                           cause=ctx.activation.cause)
    receipt = machine.am.request_nb(
        ctx.rank, d.rank, _PUT,
        args=(d.ref, key, fin.wire_tag(stamp), dest_ev, None, None),
        payload=data, payload_size=s.nbytes,
        category=AMCategory.LONG, want_ack=True, kind="copy.put",
    )
    # Local data completion: the NIC has read the source buffer.
    chain(receipt.injected, op.local_data)
    if src_ev is not None:
        receipt.injected.add_done_callback(
            lambda _f: machine.post_event(src_ev, from_rank=ctx.rank))
    # Local operation completion == global completion for a put from the
    # initiator (§I: "for an asynchronous copy from p to q initiated by
    # p, local data completion and local operation completion are
    # equivalent" — on the *source* side; delivery is what the ack tells
    # us, which is both this image's last pairwise communication and the
    # operation's global completion).
    chain(receipt.delivered, op.local_op)
    chain(receipt.delivered, op.global_done)
    receipt.delivered.add_done_callback(
        lambda f: fin.count_delivery_outcome(machine, ctx.rank, key, stamp,
                                             f))


def _start_get(ctx, machine, op: AsyncOp, d: _Loc, s: _Loc, key,
               src_ev, dest_ev) -> None:
    """Source remote, destination on the initiator: request + reply."""
    token = next(_tokens)

    def complete(data) -> None:
        d.write(data)
        if dest_ev is not None:
            machine.post_event(dest_ev, from_rank=ctx.rank)
        op.local_data.set_result(None)
        op.local_op.set_result(None)
        op.global_done.set_result(None)

    machine.scratch[("copy.token", token)] = complete
    stamp = fin.count_send(machine, ctx.rank, key, dst=s.rank,
                           cause=ctx.activation.cause)
    receipt = machine.am.request_nb(
        ctx.rank, s.rank, _GET_REQ,
        args=(s.ref, token, key, fin.wire_tag(stamp), src_ev, ctx.rank),
        category=AMCategory.SHORT, want_ack=(key is not None),
        kind="copy.get_req",
    )
    if key is not None:
        receipt.delivered.add_done_callback(
            lambda f: fin.count_delivery_outcome(machine, ctx.rank, key,
                                                 stamp, f))


def _start_forward(ctx, machine, op: AsyncOp, d: _Loc, s: _Loc, key,
                   src_ev, dest_ev) -> None:
    """Both endpoints remote: control to the source image, which puts to
    the destination; the destination confirms back to the initiator."""
    token = next(_tokens)

    def complete(_ignored) -> None:
        op.global_done.set_result(None)

    machine.scratch[("copy.token", token)] = complete
    stamp = fin.count_send(machine, ctx.rank, key, dst=s.rank,
                           cause=ctx.activation.cause)
    receipt = machine.am.request_nb(
        ctx.rank, s.rank, _FWD,
        args=(s.ref, d.ref, key, fin.wire_tag(stamp), src_ev, dest_ev,
              token, ctx.rank),
        category=AMCategory.SHORT, want_ack=True, kind="copy.fwd",
    )
    # The initiator's buffers are never touched: its local-data point is
    # the injection of the control message (argument evaluation done);
    # its last pairwise communication is that message's delivery.
    chain(receipt.injected, op.local_data)
    chain(receipt.delivered, op.local_op)
    receipt.delivered.add_done_callback(
        lambda f: fin.count_delivery_outcome(machine, ctx.rank, key, stamp,
                                             f))
