"""Function shipping (paper §II-C.2).

``spawn(fn, target, *args)`` moves a computation to another image.
Argument semantics follow the paper:

- scalars, arrays and other plain values are *copied* to the target
  (their bytes are charged to the wire);
- coarray references (:class:`~repro.runtime.coarray.CoarrayRef`,
  :class:`~repro.runtime.coarray.ImageSection`) are passed *by
  reference* — the shipped function manipulates the section where it
  lives;
- event variables and teams travel as descriptors (by reference).

A spawn travels as a *medium* active message, so its value-argument
payload is capped at ``MachineParams.am_medium_max`` bytes — the limit
that caps a UTS steal at 9 work descriptors (§IV-C).

Completion: the spawn's return guarantees initiation only.  ``local_data``
resolves when the argument buffer has been injected; ``local_op`` when the
target acknowledged delivery ("spawn is complete on the target image",
Fig. 4); execution completion is signalled through the optional event
(explicit completion) or the enclosing ``finish`` (implicit completion).
Shipped functions execute inside the spawner's finish frame, so anything
they spawn is tracked transitively.
"""

from __future__ import annotations

import copy
import inspect
from typing import Any, Generator, Optional

import numpy as np

from repro.runtime.coarray import CoarrayRef, ImageSection, Coarray
from repro.runtime.event import EventRef, EventVar
from repro.runtime.memory_model import Activation
from repro.runtime.sizeof import sizeof
from repro.runtime.team import Team
from repro.net.active_messages import AMCategory
from repro.core.completion import AsyncOp, chain
from repro.core import finish as fin

_EXEC = "spawn.exec"


def _peer_failed_error():
    from repro.net.transport import PeerFailedError
    return PeerFailedError

#: fixed descriptor bytes per spawn (function id, frame key, tag, header)
SPAWN_HEADER_BYTES = 32
#: descriptor bytes for one by-reference argument
REF_BYTES = 16


_BY_REFERENCE = (CoarrayRef, ImageSection, Coarray, EventVar, EventRef, Team)


def _arg_wire_size(arg: Any) -> int:
    if isinstance(arg, _BY_REFERENCE):
        return REF_BYTES
    return sizeof(arg)


def payload_size(args: tuple) -> int:
    """Simulated wire size of a spawn's argument list."""
    return SPAWN_HEADER_BYTES + sum(_arg_wire_size(a) for a in args)


def _marshal(arg: Any) -> Any:
    """Value arguments are *copied* to the target (paper §II-C.2); only
    coarray sections, events and teams travel by reference.  Copying at
    initiation models the runtime packing the argument buffer."""
    if isinstance(arg, _BY_REFERENCE):
        return arg
    if isinstance(arg, np.ndarray):
        return np.copy(arg)
    if isinstance(arg, (list, dict, set, bytearray)):
        return copy.deepcopy(arg)
    return arg  # immutables need no copy


def _ensure_handlers(machine) -> None:
    machine.am.ensure_registered(_EXEC, _make_exec_handler(machine))


def _make_exec_handler(machine):
    def handle_exec(ctx, fn, args, key, tag, event_ref, name, rc_vc=None,
                    spawn_id=None):
        # Count reception before the function body runs: the message has
        # landed even if the task runs long (Fig. 7 separates received
        # from completed for exactly this reason).
        recv_stamp = fin.count_received(machine, ctx.image, key, tag,
                                        src=ctx.src)
        frame = fin.frame_at(machine, ctx.image, key) if key is not None else None
        # Recovery idempotency: when a failure service with recovery is
        # attached, every execution is recorded under its spawn id and a
        # duplicate arrival skips the body (but still balances the
        # received/completed counters).
        duplicate = False
        registry = machine.scratch.get("spawn.executed_ids")
        if registry is not None and spawn_id is not None:
            done_ids = registry.setdefault(ctx.image, set())
            if spawn_id in done_ids:
                duplicate = True
                machine.stats.incr("spawn.dedup_skipped")
            else:
                done_ids.add(spawn_id)
        activation = Activation(
            machine.image_state(ctx.image), finish_frame=frame, name=name)
        activation.cause = recv_stamp
        if machine.racecheck is not None:
            machine.racecheck.activation_begin(activation, rc_vc)
        image = machine.make_image(ctx.image, activation)
        try:
            if not duplicate:
                machine.stats.incr("spawn.executed")
                yield from fn(image, *args)
        finally:
            if machine.racecheck is not None:
                # Publish the body's final clock before the completion
                # count/event can let a finish or waiter proceed.
                machine.racecheck.activation_done(activation, key, event_ref)
            fin.count_completed(machine, ctx.image, key, recv_stamp)
            if event_ref is not None:
                machine.post_event(event_ref, from_rank=ctx.image)
    return handle_exec


def spawn(ctx, fn, target: int, *args: Any,
          team: Optional[Team] = None,
          event: Optional[EventVar | EventRef] = None
          ) -> Generator[Any, Any, AsyncOp]:
    """Ship ``fn(image, *args)`` to team rank ``target`` for execution.

    ``fn`` must be a generator function taking the target-side image
    handle as its first parameter.  Use with ``yield from`` (the call may
    block on flow-control credits).  Returns the operation handle.
    """
    if not inspect.isgeneratorfunction(fn):
        raise TypeError(
            f"spawned function {fn!r} must be a generator function "
            "(def f(image, ...): ... yield ...)"
        )
    machine = ctx.machine
    _ensure_handlers(machine)
    team = team if team is not None else ctx.team_world
    dst = team.world_rank(target)

    event_ref = None
    if event is not None:
        event_ref = event if isinstance(event, EventRef) else event.ref_for(ctx.rank)

    implicit = event is None
    frame = ctx.activation.current_frame() if implicit else None
    key = frame.key if frame is not None else None

    op = AsyncOp("spawn")
    name = f"{getattr(fn, '__name__', 'fn')}@{dst}"
    size = payload_size(args)
    shipped_args = tuple(_marshal(a) for a in args)
    spawn_id = machine.next_spawn_id()

    failure = machine.failure
    if (implicit and frame is not None and failure is not None
            and failure.recover and dst != ctx.rank
            and (dst in failure.suspects or dst in machine.dead_images)):
        # Fault-tolerant reroute: the destination is already known dead,
        # so shipping would only fail after a detector round-trip.  Run
        # the function on the spawner instead (same counting as a
        # recovered ledger entry).
        machine.stats.incr("spawn.rerouted")
        _run_local(machine, ctx.rank, frame, fn, shipped_args, spawn_id,
                   name)
        op.initiated.set_result(None)
        op.local_data.set_result(None)
        op.local_op.set_result(None)
        op.global_done.set_result(None)
        if implicit:
            ctx.activation.register(
                op.make_pending(reads_local=True, writes_local=False,
                                released=op.local_op,
                                op_id=machine.next_op_id()))
        return op

    stamp = fin.count_send(machine, ctx.rank, key, dst=dst,
                           cause=ctx.activation.cause)
    if (implicit and frame is not None and failure is not None
            and failure.recover):
        frame.ledger.append((spawn_id, dst, fn, shipped_args, name))
    machine.stats.incr("spawn.initiated")
    rc_vc = None
    if machine.racecheck is not None:
        rcop = machine.racecheck.spawn_begin(ctx, op, implicit)
        rc_vc = rcop.vc_local()
    receipt = yield from machine.am.request(
        ctx.rank, dst, _EXEC,
        args=(fn, shipped_args, key, fin.wire_tag(stamp), event_ref, name,
              rc_vc, spawn_id),
        payload_size=size, category=AMCategory.MEDIUM,
        want_ack=True, kind="spawn",
    )
    op.initiated.set_result(None)
    chain(receipt.injected, op.local_data)
    chain(receipt.delivered, op.local_op)

    def _delivery_outcome(f):
        fin.count_delivery_outcome(machine, ctx.rank, key, stamp, f)
        # Recovery: a send the transport failed definitively (fresh sends
        # fail before transmission; in-flight ones only once the peer is
        # confirmed dead) never runs its function at the destination.
        # Re-execute it here now — reconciliation cannot, because the
        # on_send_failed subtraction already rebalanced the frame, so a
        # finish may conclude before the peer is ever confirmed.
        if (frame is not None and failure is not None and failure.recover
                and ctx.rank not in machine.dead_images
                and isinstance(f.exception(), _peer_failed_error())):
            for i, entry in enumerate(frame.ledger):
                if entry[0] == spawn_id:
                    del frame.ledger[i]
                    machine.stats.incr("spawn.recovered")
                    _run_local(machine, ctx.rank, frame, fn, shipped_args,
                               spawn_id, name)
                    break

    receipt.delivered.add_done_callback(_delivery_outcome)
    # The initiator cannot observe execution completion without an event;
    # global completion is finish's business.  local_op is the strongest
    # initiator-side guarantee the handle itself carries.
    chain(receipt.delivered, op.global_done)

    if implicit:
        ctx.activation.register(
            op.make_pending(reads_local=True, writes_local=False,
                            released=op.local_op,
                            op_id=machine.next_op_id()))
        if machine.racecheck is not None:
            machine.racecheck.spawn_registered(ctx.activation, op)
    return op


# --------------------------------------------------------------------- #
# Fail-stop recovery: re-execute lost shipped functions
# --------------------------------------------------------------------- #

def _run_local(machine, rank: int, frame, fn, args: tuple,
               spawn_id: int, name: str) -> None:
    """Execute a (possibly recovered) spawn locally on ``rank`` inside
    ``frame``, counting the full send/delivered/received/completed
    quadruple as a loopback message so the enclosing finish waits for it
    — including anything it spawns transitively.

    Idempotency: the machine-global executed-id registry skips spawn ids
    this image already ran, so a ledger entry can never run twice here.
    (If the "dead" image was falsely suspected and in fact executed the
    original, the work is duplicated — re-execution is exactly-once only
    under fail-stop; see DESIGN §11.)"""
    registry = machine.scratch.setdefault("spawn.executed_ids", {})
    done_ids = registry.setdefault(rank, set())
    if spawn_id in done_ids:
        machine.stats.incr("spawn.dedup_skipped")
        return
    done_ids.add(spawn_id)
    stamp = frame.on_send(dst=rank)
    frame.on_delivered(stamp)
    recv_stamp = frame.on_received(stamp[0], src=rank)

    def body():
        activation = Activation(
            machine.image_state(rank), finish_frame=frame, name=name)
        activation.cause = recv_stamp
        image = machine.make_image(rank, activation)
        machine.stats.incr("spawn.executed")
        try:
            yield from fn(image, *args)
        finally:
            frame.on_completed(recv_stamp)

    machine.start_internal_task(body(), name=f"respawn.{name}", owner=rank)


def reexecute_lost(machine, rank: int, frame, entries: list) -> None:
    """Recovery hook: re-run the ledger entries ``reconcile_failure``
    popped for a dead destination, on the surviving spawner ``rank``."""
    machine.stats.incr("spawn.recovered", len(entries))
    for spawn_id, _dst, fn, args, name in entries:
        _run_local(machine, rank, frame, fn, args, spawn_id, name)
