"""Bandwidth-optimal collective algorithms for array payloads.

The tree collectives in :mod:`repro.core.collectives` are latency-
optimal (O(log p) hops) but move the whole payload at every level —
fine for the scalar reductions finish performs, wasteful for large
arrays.  This module adds the classic bandwidth-optimal algorithms a
production CAF 2.0 runtime would select for bulk data (§II-C.3's
collective "vision"):

- :func:`ring_allreduce` — ring reduce-scatter followed by ring
  allgather (Rabenseifner's decomposition): 2(p-1) messages of n/p
  elements each, total traffic 2n(p-1)/p per image regardless of p;
- :func:`pipelined_broadcast` — the root streams the payload in
  segments down a chain; with enough segments every link stays busy and
  the completion time approaches n/B + (p-2+s) hops instead of
  ceil(log2 p) x n/B.

Both are blocking (use ``yield from``) and match instances across
images with the same per-team sequence numbers as the tree collectives,
so they interleave safely with them under SPMD discipline.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.sim.tasks import Condition
from repro.runtime.team import Team
from repro.net.active_messages import AMCategory
from repro.core.collectives import op_function

#: elementwise equivalents of the named operators (the scalar lambdas in
#: collectives.op_function do not broadcast over arrays)
_ARRAY_OPS = {
    "sum": np.add,
    "prod": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
}


def array_op_function(op: Any):
    """Resolve a reduction operator for elementwise array use."""
    if callable(op):
        return op
    try:
        return _ARRAY_OPS[op]
    except KeyError:
        return op_function(op)  # raises with the canonical message

_RING = "algcoll.ring"
_PIPE = "algcoll.pipe"


class _RingState:
    """Per-image buffers for one ring-collective instance."""

    def __init__(self, sim):
        self.chunks: dict[tuple[int, int], np.ndarray] = {}
        self.cond = Condition(sim, "ring")


def _ensure_handlers(machine) -> None:
    def handle_ring(ctx, team_id, seq, step, chunk_idx):
        state = machine.coll_state(ctx.image, team_id, seq, _make_state(machine))
        state.chunks[(step, chunk_idx)] = ctx.payload
        state.cond.wake()

    machine.am.ensure_registered(_RING, handle_ring)
    machine.am.ensure_registered(_PIPE, handle_ring)  # same buffering


def _make_state(machine):
    return lambda: _RingState(machine.sim)


def _state(machine, rank, team_id, seq) -> _RingState:
    return machine.coll_state(rank, team_id, seq, _make_state(machine))


def _chunk_bounds(n: int, p: int, idx: int) -> tuple[int, int]:
    """Bounds of chunk ``idx`` when n elements split into p near-equal
    contiguous chunks."""
    base, extra = divmod(n, p)
    lo = idx * base + min(idx, extra)
    hi = lo + base + (1 if idx < extra else 0)
    return lo, hi


def ring_allreduce(ctx, array: np.ndarray, op: Any = "sum",
                   team: Optional[Team] = None
                   ) -> Generator[Any, Any, np.ndarray]:
    """Bandwidth-optimal allreduce of a numpy array; every member passes
    its contribution and receives the elementwise reduction in place
    (also returned)."""
    team = team if team is not None else ctx.team_world
    machine = ctx.machine
    _ensure_handlers(machine)
    machine.stats.incr("algcoll.ring_allreduce")
    fn = array_op_function(op)
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValueError("ring_allreduce expects a 1-D array")

    p = team.size
    seq = machine.next_coll_seq(ctx.rank, team.id)
    if p == 1:
        return array
    state = _state(machine, ctx.rank, team.id, seq)
    me = team.rank_of(ctx.rank)
    right = team.world_rank((me + 1) % p)

    work = array.copy()

    def send(step: int, chunk_idx: int) -> None:
        lo, hi = _chunk_bounds(len(work), p, chunk_idx)
        payload = np.copy(work[lo:hi])
        machine.am.request_nb(
            ctx.rank, right, _RING,
            args=(team.id, seq, step, chunk_idx),
            payload=payload, payload_size=int(payload.nbytes),
            category=AMCategory.LONG, kind="algcoll.ring",
        )

    # Phase 1: reduce-scatter.  At step s I send the running reduction
    # of chunk (me - s) and fold the incoming chunk (me - s - 1).
    for step in range(p - 1):
        send(step, (me - step) % p)
        want = (step, (me - step - 1) % p)
        yield from state.cond.wait_until(lambda w=want: w in state.chunks)
        incoming = state.chunks.pop(want)
        lo, hi = _chunk_bounds(len(work), p, (me - step - 1) % p)
        work[lo:hi] = fn(work[lo:hi], incoming)

    # Phase 2: allgather the completed chunks around the ring.
    for step in range(p - 1):
        send(p - 1 + step, (me + 1 - step) % p)
        want = (p - 1 + step, (me - step) % p)
        yield from state.cond.wait_until(lambda w=want: w in state.chunks)
        incoming = state.chunks.pop(want)
        lo, hi = _chunk_bounds(len(work), p, (me - step) % p)
        work[lo:hi] = incoming

    machine.drop_coll_state(ctx.rank, team.id, seq)
    array[...] = work
    return array


def pipelined_broadcast(ctx, array: np.ndarray, root: int = 0,
                        team: Optional[Team] = None,
                        segments: int = 8
                        ) -> Generator[Any, Any, np.ndarray]:
    """Chain-pipelined broadcast of a numpy array in ``segments``
    pieces; the root's content ends up in every member's ``array``."""
    team = team if team is not None else ctx.team_world
    machine = ctx.machine
    _ensure_handlers(machine)
    machine.stats.incr("algcoll.pipelined_broadcast")
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValueError("pipelined_broadcast expects a 1-D array")
    if segments < 1:
        raise ValueError("segments must be >= 1")
    segments = min(segments, max(1, len(array)))

    p = team.size
    seq = machine.next_coll_seq(ctx.rank, team.id)
    if p == 1:
        return array
    state = _state(machine, ctx.rank, team.id, seq)
    me = team.rank_of(ctx.rank)
    pos = (me - root) % p            # my position along the chain
    next_world = team.world_rank((me + 1) % p) if pos < p - 1 else None

    def send_segment(idx: int) -> None:
        lo, hi = _chunk_bounds(len(array), segments, idx)
        payload = np.copy(array[lo:hi])
        machine.am.request_nb(
            ctx.rank, next_world, _PIPE,
            args=(team.id, seq, 0, idx),
            payload=payload, payload_size=int(payload.nbytes),
            category=AMCategory.LONG, kind="algcoll.pipe",
        )

    if pos == 0:
        for idx in range(segments):
            send_segment(idx)
    else:
        for idx in range(segments):
            want = (0, idx)
            yield from state.cond.wait_until(
                lambda w=want: w in state.chunks)
            incoming = state.chunks.pop(want)
            lo, hi = _chunk_bounds(len(array), segments, idx)
            array[lo:hi] = incoming
            if next_world is not None:
                send_segment(idx)

    machine.drop_coll_state(ctx.rank, team.id, seq)
    return array
