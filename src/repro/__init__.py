"""repro — a reproduction of *Managing Asynchronous Operations in Coarray
Fortran 2.0* (Yang, Murthy, Mellor-Crummey; IPDPS 2013).

A CAF 2.0-style PGAS runtime — asynchronous copies, function shipping,
asynchronous collectives, events, ``cofence`` and ``finish`` — running on
a deterministic discrete-event simulation of a distributed-memory
machine.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
the per-figure reproduction record.

Quick start::

    from repro import run_spmd, MachineParams

    def kernel(img):
        yield from img.finish_begin()
        # ... copy_async / spawn / broadcast_async ...
        yield from img.finish_end()

    machine, results = run_spmd(kernel, n_images=8)
"""

from repro.net.faults import (
    FaultPlan,
    LinkFlap,
    NicStall,
    Partition,
    Straggler,
)
from repro.net.topology import (
    MachineParams,
    UniformTopology,
    HierarchicalTopology,
    HypercubeTopology,
)
from repro.net.transport import PeerFailedError, RetryExhaustedError
from repro.sim.engine import LivenessError
from repro.runtime import (
    ANY,
    FailureConfig,
    ImageFailureError,
    READ,
    WRITE,
    Coarray,
    CoarrayRef,
    DeadlockError,
    EventRef,
    EventVar,
    Image,
    LockVar,
    Machine,
    Team,
    run_spmd,
)
from repro.core.completion import AsyncOp

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "NicStall",
    "Straggler",
    "Partition",
    "LinkFlap",
    "RetryExhaustedError",
    "PeerFailedError",
    "FailureConfig",
    "ImageFailureError",
    "LivenessError",
    "MachineParams",
    "UniformTopology",
    "HierarchicalTopology",
    "HypercubeTopology",
    "ANY",
    "READ",
    "WRITE",
    "Coarray",
    "CoarrayRef",
    "DeadlockError",
    "EventRef",
    "EventVar",
    "Image",
    "LockVar",
    "Machine",
    "Team",
    "run_spmd",
    "AsyncOp",
    "__version__",
]
