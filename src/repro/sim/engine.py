"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a queue of pending events.
An *event* is simply a callback scheduled to fire at a given virtual
time.  Ties are broken by insertion order, which makes every run
bit-for-bit reproducible.

Virtual time is a float in *seconds*; the network and runtime layers express
latencies and occupancies in the same unit, so the numbers produced by the
benchmark harness read directly as "simulated execution time in seconds".

Hot-path design (DESIGN.md §9)
------------------------------
The per-event cost of this loop bounds the problem sizes every paper
benchmark can afford, so the queue is built from three structures instead
of one heap of event objects:

- a **binary heap of plain lists** ``[time, seq, fn, args]`` — list
  entries compare element-wise in C (time first, then the globally unique
  ``seq``), so ordering never calls back into Python, and no per-event
  object is allocated;
- a **same-timestamp ready deque** — events scheduled *at the current
  instant* while no heap entry is due at that same instant are appended
  to a FIFO deque and bypass the heap entirely (``call_soon`` chains and
  zero-delay cascades cost two deque ops instead of two heap ops);
- a **single-event staging slot** — when the whole queue is empty, the
  next scheduled event parks in ``_single`` instead of the heap.  A
  sequential chain (one activation computing step by step — the dominant
  pattern in every kernel) then never touches the heap at all.

Invariants that keep the three structures equivalent to one totally
ordered queue:

1. ``_single`` is only occupied while the heap and the ready deque are
   both empty (so it is trivially the global minimum, and its timestamp
   is strictly in the future), and it is flushed into the heap the moment
   anything else is scheduled;
2. the ready deque only holds events stamped at the current virtual
   time, appended while no heap entry was due at that same instant — so
   deque order equals (time, seq) order;
3. the run loop drains ``_single``, then the ready deque, then the heap.

Cancellation marks the entry in place (``entry[2] = None``) and counts it
in a stale counter, which keeps :attr:`Simulator.pending_events` O(1);
stale entries are skipped (and the counter repaid) when they surface.

Schedule exploration (DESIGN.md §10)
------------------------------------
Ties among same-instant events are normally broken by insertion order —
a *hidden* scheduling decision baked into the queue structures above.
:meth:`Simulator.set_schedule_source` turns that decision into an
explicit, recordable choice: with a source installed, :meth:`run`
switches to a controlled loop that gathers every live event due at the
earliest pending instant into a batch and asks the source which fires
next (a ``"ready"`` :class:`ChoicePoint`).  Choosing index 0 at every
point reproduces the baseline (time, seq) order exactly; other indices
explore alternative interleavings.  With no source installed the three
fast structures and loops below are untouched — behavior and cost are
bit-identical to a build without the hook.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional

_heappush = heapq.heappush
_heappop = heapq.heappop

#: A scheduled event: ``[time, seq, fn, args]``.  Slot 2 (``fn``) doubles
#: as the liveness mark — ``None`` means cancelled or already fired,
#: which is what makes late :meth:`Simulator.cancel` calls harmless.
Event = List[Any]


class SimulationError(RuntimeError):
    """Raised for malformed use of the simulator (negative delays,
    scheduling into the past, running a finished simulation, ...)."""


class ChoicePoint:
    """One explicit nondeterminism point offered to a schedule source.

    Defined here (the lowest layer) so both the simulator (``"ready"``
    tie-breaks) and the transport (``"lag"`` delivery decisions) can
    construct one without importing the exploration package.

    Attributes
    ----------
    domain:
        ``"ready"`` — pick which of ``n`` same-instant events fires
        next; ``"lag"`` — pick one of ``n`` discrete extra-delay steps
        for a wire transmission.
    n:
        Number of alternatives; the source must return an int in
        ``[0, n)``.  Alternative 0 always reproduces baseline behavior.
    labels:
        Per-alternative identity keys (``"ready"`` only): a stable,
        reproducible name for each candidate event's actor, used by
        priority-based strategies and the commuting-choice filter.
    key:
        A stable name for the point itself (``"lag"``: kind and link).
    branch_hint:
        False when alternatives provably commute with everything else in
        flight (e.g. a lag choice with no other message bound for the
        same image) — systematic strategies may skip branching here.
    """

    __slots__ = ("domain", "n", "labels", "key", "branch_hint")

    def __init__(self, domain: str, n: int, labels: tuple = (),
                 key: Optional[str] = None, branch_hint: bool = True):
        self.domain = domain
        self.n = n
        self.labels = labels
        self.key = key
        self.branch_hint = branch_hint

    def __repr__(self) -> str:
        return (f"ChoicePoint({self.domain!r}, n={self.n}, "
                f"key={self.key!r})")


def _event_label(entry: Event) -> str:
    """A reproducible identity for a queued event's actor: the owning
    task for task continuations, the callback's qualified name
    otherwise.  Never uses object ids (they vary run to run)."""
    fn = entry[2]
    owner = getattr(fn, "__self__", None)
    tid = getattr(owner, "tid", None)
    if tid is not None:
        return f"task:{tid}"
    name = getattr(fn, "__qualname__", None)
    if name is None:
        name = type(fn).__name__
    return name


class LivenessError(SimulationError):
    """The event queue drained but the workload did not complete —
    quiescence without completion (e.g. a finish wave stalled on a lost
    counter message).  The message carries the watchdog's diagnostic:
    stalled images and their counter snapshots."""


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    __slots__ = ("_now", "_heap", "_ready", "_single", "_seq", "_stale",
                 "_events_processed", "_running", "_drain_hooks",
                 "_task_seq", "_busy", "_schedule_source", "_batch",
                 "_tasks")

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[Event] = []
        self._ready: deque[Event] = deque()
        self._single: Optional[Event] = None
        self._seq = 0
        self._stale = 0          # cancelled entries still sitting in a queue
        self._events_processed = 0
        self._running = False
        self._drain_hooks: list[Callable[["Simulator"], None]] = []
        self._task_seq = 0       # per-simulator task-id stream (tasks.py)
        #: explicit-nondeterminism hook (None = baseline fast loops)
        self._schedule_source = None
        #: same-instant candidate batch of the controlled loop; always
        #: empty outside a controlled run
        self._batch: list[Event] = []
        #: Owned tasks (tasks.py registers tasks created with owner=...)
        #: so fail-stop crash injection can halt everything an image was
        #: running.  Ownerless tasks never appear here, keeping the
        #: common case free of registry cost.
        self._tasks: list = []
        #: True whenever the heap or the ready deque holds entries —
        #: conservatively sticky (may stay True after they drain mid-run,
        #: re-cleared at the next natural drain).  Lets the staging check
        #: in schedule() read one flag instead of two containers; staging
        #: requires _busy False, which proves both containers empty.
        self._busy = False

    # ------------------------------------------------------------------ #
    # Clock and introspection
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic).  Refreshed at
        loop boundaries (drain, horizon, errors, return); a callback
        reading it mid-run may see a slightly stale value."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued.  O(1):
        derived from container sizes and the stale counter instead of
        scanning the heap."""
        n = len(self._heap) + len(self._ready) + len(self._batch) - self._stale
        return n + 1 if self._single is not None else n

    def next_task_id(self) -> int:
        """Allocate a task id.  Lives on the simulator (not on a class
        attribute) so ids restart at 1 for every machine and back-to-back
        runs in one process name their tasks identically."""
        self._task_seq += 1
        return self._task_seq

    def _register_task(self, task) -> None:
        """Record an owner-bearing task for :meth:`kill_owner`."""
        self._tasks.append(task)

    def kill_owner(self, owner: int) -> int:
        """Fail-stop every live task registered under ``owner`` (see
        ``Task.kill``): the crash half of the fail-stop model.  Done and
        already-killed tasks are pruned from the registry as a side
        effect.  Returns the number of tasks killed."""
        killed = 0
        keep = []
        for task in self._tasks:
            if task._killed or task.done_future.done:
                continue
            if task.owner == owner:
                task.kill()
                killed += 1
            else:
                keep.append(task)
        self._tasks = keep
        return killed

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    # The ``seq`` slot of an entry is only ever consulted by heap
    # comparisons, so it is assigned lazily: a staged entry carries 0 and
    # receives its seq the moment it is flushed into the heap — before
    # the flushing entry draws its own, which preserves creation order
    # exactly.  Ready-deque entries carry -1 (never compared; the value
    # lets :meth:`cancel` tell a live ready entry apart from a fired
    # staged entry, which the fast loop does not bother marking).

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        now = self._now
        t = now + delay
        entry: Event = [t, 0, fn, args]
        single = self._single
        if single is None:
            if t > now:
                if self._busy:
                    self._seq = entry[1] = self._seq + 1
                    _heappush(self._heap, entry)
                else:
                    self._single = entry
                return entry
        else:
            self._seq = single[1] = self._seq + 1
            _heappush(self._heap, single)
            self._single = None
            self._busy = True
            if t > now:
                self._seq = entry[1] = self._seq + 1
                _heappush(self._heap, entry)
                return entry
        if delay < 0.0:
            raise SimulationError(f"negative delay {delay!r}")
        heap = self._heap
        if self._ready or not heap or heap[0][0] > t:
            entry[1] = -1
            self._ready.append(entry)
        else:
            self._seq = entry[1] = self._seq + 1
            _heappush(heap, entry)
        self._busy = True
        return entry

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        now = self._now
        if time < now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={now!r}"
            )
        entry: Event = [time, 0, fn, args]
        single = self._single
        if single is None:
            if time > now:
                if self._busy:
                    self._seq = entry[1] = self._seq + 1
                    _heappush(self._heap, entry)
                else:
                    self._single = entry
                return entry
        else:
            self._seq = single[1] = self._seq + 1
            _heappush(self._heap, single)
            self._single = None
            self._busy = True
            if time > now:
                self._seq = entry[1] = self._seq + 1
                _heappush(self._heap, entry)
                return entry
        heap = self._heap
        if self._ready or not heap or heap[0][0] > time:
            entry[1] = -1
            self._ready.append(entry)
        else:
            self._seq = entry[1] = self._seq + 1
            _heappush(heap, entry)
        self._busy = True
        return entry

    def call_soon(self, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time, after already-queued
        events at this timestamp."""
        now = self._now
        entry: Event = [now, 0, fn, args]
        single = self._single
        if single is not None:
            self._seq = single[1] = self._seq + 1
            _heappush(self._heap, single)
            self._single = None
        heap = self._heap
        if self._ready or not heap or heap[0][0] > now:
            entry[1] = -1
            self._ready.append(entry)
        else:
            self._seq = entry[1] = self._seq + 1
            _heappush(heap, entry)
        self._busy = True
        return entry

    def cancel(self, entry: Event) -> None:
        """Cancel a scheduled event.  O(1); safe to call after the event
        fired (a no-op then).  A staged entry is removed outright (so the
        staging slot only ever holds live events); a queued entry is
        marked in place and skipped when it surfaces (lazy deletion),
        with the stale counter keeping :attr:`pending_events` exact in
        the meantime."""
        if entry[2] is None:
            return  # already fired (ready/heap) or already cancelled
        if entry is self._single:
            self._single = None
            entry[2] = None
            entry[3] = ()
            return
        if entry[1] == 0 and entry[0] <= self._now:
            # A fired staged entry: seq still 0 (never flushed into the
            # heap) and its time has passed.  The fast loop skips the
            # fired-mark for staged entries, so catch it here instead.
            return
        entry[2] = None
        entry[3] = ()
        self._stale += 1

    def quiescent_at_now(self) -> bool:
        """True when no live event is due at the current instant — i.e. a
        ``call_soon`` issued now would fire immediately, with nothing in
        between.  The task layer keys its synchronous continuations on
        this, which is what makes them order-identical to the scheduled
        path (DESIGN.md §9)."""
        if self._ready or self._batch:
            return False
        heap = self._heap
        while heap and heap[0][2] is None:
            _heappop(heap)
            self._stale -= 1
        # _single, if occupied, is strictly in the future (invariant 1).
        return not heap or heap[0][0] > self._now

    def add_drain_hook(self, fn: Callable[["Simulator"], None]) -> None:
        """Register ``fn(sim)`` to run when :meth:`run`'s event queue
        drains naturally (not on an ``until`` horizon or budget stop).

        Hooks are the liveness-watchdog mechanism: a hook may inspect
        runtime state and raise (e.g. :class:`LivenessError`) to turn a
        silent stall into a diagnostic, or schedule new events — in which
        case the run resumes.  Hooks run in registration order, once per
        drain."""
        self._drain_hooks.append(fn)

    # ------------------------------------------------------------------ #
    # Schedule exploration hook
    # ------------------------------------------------------------------ #

    @property
    def schedule_source(self):
        """The installed schedule source, or None (baseline engine)."""
        return self._schedule_source

    def set_schedule_source(self, source) -> None:
        """Install (or clear, with None) a schedule source — an object
        with ``choose(point: ChoicePoint) -> int``.  With a source
        installed, :meth:`run` uses the controlled loop: every tie among
        same-instant events becomes an explicit choice the source makes.
        Index 0 always means "baseline order".  May not be changed while
        the simulator is running."""
        if self._running:
            raise SimulationError(
                "cannot change the schedule source mid-run")
        self._schedule_source = source

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        entry = self._single
        if entry is not None:
            # Staged entries are always live (cancel removes them).
            self._single = None
            self._fire(entry)
            return True
        ready = self._ready
        while ready:
            entry = ready.popleft()
            if entry[2] is None:
                self._stale -= 1
                continue
            self._fire(entry)
            return True
        heap = self._heap
        while heap:
            entry = _heappop(heap)
            if entry[2] is None:
                self._stale -= 1
                continue
            self._fire(entry)
            return True
        self._busy = False
        return False

    def _fire(self, entry: Event) -> None:
        """Run one live event (non-hot path helper; the fast loop inlines
        this)."""
        fn = entry[2]
        entry[2] = None
        self._now = entry[0]
        self._events_processed += 1
        fn(*entry[3])

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this value; the offending
            event stays queued.
        max_events:
            Safety valve — raise :class:`SimulationError` after this many
            events (catches accidental livelock in tests).
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        try:
            if self._schedule_source is not None:
                self._run_controlled(until, max_events)
            elif until is None and max_events is None:
                self._run_fast()
            else:
                self._run_guarded(until, max_events)
        finally:
            self._running = False

    def _run_fast(self) -> None:
        """The common case: no horizon, no budget.  Everything hot lives
        in locals and the ``until``/budget checks are hoisted out
        entirely; the three firing sites are intentionally unrolled."""
        heap = self._heap
        ready = self._ready
        pop = _heappop
        popleft = ready.popleft
        processed = self._events_processed
        try:
            while True:
                entry = self._single
                if entry is not None:
                    # Staged entries are always live (cancel removes
                    # them), and are not marked fired — cancel() detects
                    # a dead staged entry by seq 0 + elapsed time.
                    self._single = None
                    fn = entry[2]
                    self._now = entry[0]
                    processed += 1
                    if entry[3]:
                        fn(*entry[3])
                    else:
                        fn()
                    continue
                while ready:
                    entry = popleft()
                    fn = entry[2]
                    if fn is None:
                        self._stale -= 1
                        continue
                    entry[2] = None
                    processed += 1
                    args = entry[3]
                    if args:
                        fn(*args)
                    else:
                        fn()
                if heap:
                    entry = pop(heap)
                    fn = entry[2]
                    if fn is None:
                        self._stale -= 1
                        continue
                    if not heap:
                        # The queue just emptied (ready drained above):
                        # un-stick the busy flag so the callback we are
                        # about to run can stage its next event.
                        self._busy = False
                    entry[2] = None
                    self._now = entry[0]
                    processed += 1
                    args = entry[3]
                    if args:
                        fn(*args)
                    else:
                        fn()
                elif self._single is None and not ready:
                    # Natural drain: give the watchdog hooks a look.  A
                    # hook may raise, or schedule new events (resuming).
                    self._busy = False
                    self._events_processed = processed
                    if not self._drain_hooks:
                        return
                    for hook in list(self._drain_hooks):
                        hook(self)
                    processed = self._events_processed
                    if not heap and not ready and self._single is None:
                        return
        finally:
            self._events_processed = processed

    def _run_guarded(self, until: Optional[float],
                     max_events: Optional[int]) -> None:
        """The instrumented loop: an ``until`` horizon and/or an event
        budget.  Not performance-critical — tests and resumable runs."""
        heap = self._heap
        ready = self._ready
        budget = max_events
        while True:
            # Fold the staging slot back into the heap: the guarded loop
            # peeks before firing, and peeking is simplest over two
            # structures instead of three.
            single = self._single
            if single is not None:
                self._seq = single[1] = self._seq + 1
                _heappush(heap, single)
                self._single = None
                self._busy = True
            nxt = None
            while ready:
                head = ready[0]
                if head[2] is None:
                    ready.popleft()
                    self._stale -= 1
                    continue
                nxt = head
                break
            if nxt is None:
                while heap:
                    head = heap[0]
                    if head[2] is None:
                        _heappop(heap)
                        self._stale -= 1
                        continue
                    nxt = head
                    break
            if nxt is None:
                # Natural drain.
                self._busy = False
                if not self._drain_hooks:
                    return
                for hook in list(self._drain_hooks):
                    hook(self)
                if not heap and not ready and self._single is None:
                    return
                continue
            if until is not None and nxt[0] > until:
                self._now = until
                return
            if budget is not None:
                if budget == 0:
                    raise SimulationError(
                        f"max_events exhausted at t={self._now!r} "
                        f"({self._events_processed} events processed)"
                    )
                budget -= 1
            if ready and nxt is ready[0]:
                self._fire(ready.popleft())
            else:
                self._fire(_heappop(heap))

    def _run_controlled(self, until: Optional[float],
                        max_events: Optional[int]) -> None:
        """The exploration loop: every live event due at the earliest
        pending instant is gathered into a *batch*, and the installed
        schedule source picks which batch member fires next.

        The batch is built in canonical (time, seq) order — ready-deque
        entries first (they drain before the heap in the baseline
        loops), then heap entries in seq order — and events a fired
        callback schedules *at the current instant* are appended at the
        end, exactly where their fresh seqs would place them.  Choosing
        index 0 at every point therefore replays the baseline schedule
        bit for bit; any other index is a legal alternative interleaving
        of the same instant.

        While the batch is non-empty its members are due *now* but live
        in no container, so :meth:`quiescent_at_now` and
        :attr:`pending_events` account for it explicitly, and
        :meth:`cancel` treats batch members like queued entries (mark +
        stale count; the batch filter repays the counter)."""
        if until is not None:
            raise SimulationError(
                "until= is not supported with a schedule source installed"
            )
        source = self._schedule_source
        heap = self._heap
        ready = self._ready
        batch = self._batch
        budget = max_events
        try:
            while True:
                if not batch:
                    # Open the next instant: flush the staging slot, then
                    # collect everything live due at the minimum time.
                    single = self._single
                    if single is not None:
                        self._seq = single[1] = self._seq + 1
                        _heappush(heap, single)
                        self._single = None
                    while ready:
                        e = ready.popleft()
                        if e[2] is None:
                            self._stale -= 1
                        else:
                            batch.append(e)
                    if batch:
                        t = self._now
                    else:
                        while heap and heap[0][2] is None:
                            _heappop(heap)
                            self._stale -= 1
                        if not heap:
                            # Natural drain: same hook protocol as the
                            # baseline loops.
                            self._busy = False
                            if not self._drain_hooks:
                                return
                            for hook in list(self._drain_hooks):
                                hook(self)
                            if (not heap and not ready
                                    and self._single is None):
                                return
                            continue
                        t = heap[0][0]
                        self._now = t
                    while heap and heap[0][0] <= t:
                        e = _heappop(heap)
                        if e[2] is None:
                            self._stale -= 1
                        else:
                            batch.append(e)
                # Entries cancelled while parked in the batch.
                for e in batch:
                    if e[2] is None:
                        live = [x for x in batch if x[2] is not None]
                        self._stale -= len(batch) - len(live)
                        batch[:] = live
                        break
                if not batch:
                    continue
                if len(batch) == 1:
                    idx = 0
                else:
                    point = ChoicePoint(
                        "ready", len(batch),
                        labels=tuple(_event_label(e) for e in batch))
                    idx = source.choose(point)
                    if not 0 <= idx < len(batch):
                        raise SimulationError(
                            f"schedule source chose {idx} of "
                            f"{len(batch)} ready alternatives")
                entry = batch.pop(idx)
                if budget is not None:
                    if budget == 0:
                        raise SimulationError(
                            f"max_events exhausted at t={self._now!r} "
                            f"({self._events_processed} events processed)"
                        )
                    budget -= 1
                self._busy = True
                self._fire(entry)
                # Same-instant events the callback just scheduled sit in
                # the ready deque; fold them onto the batch tail (their
                # seqs are larger than every batched entry's).
                while ready:
                    e = ready.popleft()
                    if e[2] is None:
                        self._stale -= 1
                    else:
                        batch.append(e)
        finally:
            if batch:
                # Interrupted mid-instant (source raised, budget blown):
                # park the batch back in the ready deque so the queue
                # state stays consistent for diagnostics.
                for e in reversed(batch):
                    if e[2] is None:
                        self._stale -= 1
                    else:
                        e[1] = -1
                        ready.appendleft(e)
                batch.clear()
