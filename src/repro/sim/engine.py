"""The discrete-event engine.

A :class:`Simulator` owns a virtual clock and a priority queue of pending
events.  An *event* is simply a callback scheduled to fire at a given virtual
time.  Ties are broken by insertion order, which makes every run bit-for-bit
reproducible.

Virtual time is a float in *seconds*; the network and runtime layers express
latencies and occupancies in the same unit, so the numbers produced by the
benchmark harness read directly as "simulated execution time in seconds".
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for malformed use of the simulator (negative delays,
    scheduling into the past, running a finished simulation, ...)."""


class LivenessError(SimulationError):
    """The event queue drained but the workload did not complete —
    quiescence without completion (e.g. a finish wave stalled on a lost
    counter message).  The message carries the watchdog's diagnostic:
    stalled images and their counter snapshots."""


class _Event:
    """A scheduled callback.  Cancelled events stay in the heap but are
    skipped when popped (lazy deletion keeps cancellation O(1))."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable, args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, fired.append, "b")
    >>> _ = sim.schedule(1.0, fired.append, "a")
    >>> sim.run()
    >>> fired
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._running = False
        self._drain_hooks: list[Callable[["Simulator"], None]] = []

    # ------------------------------------------------------------------ #
    # Clock and introspection
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (diagnostic)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    # ------------------------------------------------------------------ #
    # Scheduling
    # ------------------------------------------------------------------ #

    def schedule(self, delay: float, fn: Callable, *args: Any) -> _Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past: t={time!r} < now={self._now!r}"
            )
        ev = _Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable, *args: Any) -> _Event:
        """Schedule ``fn(*args)`` at the current time, after already-queued
        events at this timestamp."""
        return self.schedule(0.0, fn, *args)

    def add_drain_hook(self, fn: Callable[["Simulator"], None]) -> None:
        """Register ``fn(sim)`` to run when :meth:`run`'s event queue
        drains naturally (not on an ``until`` horizon or budget stop).

        Hooks are the liveness-watchdog mechanism: a hook may inspect
        runtime state and raise (e.g. :class:`LivenessError`) to turn a
        silent stall into a diagnostic, or schedule new events — in which
        case the run resumes.  Hooks run in registration order, once per
        drain."""
        self._drain_hooks.append(fn)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.fn(*ev.args)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the event queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this value; the offending
            event stays queued.
        max_events:
            Safety valve — raise :class:`SimulationError` after this many
            events (catches accidental livelock in tests).
        """
        if self._running:
            raise SimulationError("Simulator.run is not reentrant")
        self._running = True
        budget = max_events
        try:
            while True:
                while self._heap:
                    # Peek for the `until` horizon without disturbing order.
                    nxt = self._heap[0]
                    if nxt.cancelled:
                        heapq.heappop(self._heap)
                        continue
                    if until is not None and nxt.time > until:
                        self._now = until
                        return
                    if budget is not None:
                        if budget == 0:
                            raise SimulationError(
                                f"max_events exhausted at t={self._now!r} "
                                f"({self._events_processed} events processed)"
                            )
                        budget -= 1
                    self.step()
                # Natural drain: give the watchdog hooks a look.  A hook
                # may raise, or schedule new events (resuming the run).
                if not self._drain_hooks:
                    return
                for fn in list(self._drain_hooks):
                    fn(self)
                if not self._heap:
                    return
        finally:
            self._running = False
