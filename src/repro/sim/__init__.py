"""Deterministic discrete-event simulation substrate.

This package provides the machine model under the CAF 2.0 runtime: a
time-ordered event loop (:mod:`repro.sim.engine`), cooperative tasks written
as Python generators (:mod:`repro.sim.tasks`), reproducible per-image random
streams (:mod:`repro.sim.rng`), and measurement probes
(:mod:`repro.sim.trace`).

The simulation is fully deterministic: events at equal timestamps fire in
the order they were scheduled, and all randomness flows through seeded
:class:`numpy.random.Generator` streams.
"""

from repro.sim.engine import Simulator, SimulationError
from repro.sim.tasks import (
    Future,
    Delay,
    Task,
    TaskFailed,
    Channel,
    Semaphore,
    Condition,
    all_of,
    any_of,
)
from repro.sim.rng import RngPool
from repro.sim.trace import Stats, Probe, IntervalAccumulator

__all__ = [
    "Simulator",
    "SimulationError",
    "Future",
    "Delay",
    "Task",
    "TaskFailed",
    "Channel",
    "Semaphore",
    "Condition",
    "all_of",
    "any_of",
    "RngPool",
    "Stats",
    "Probe",
    "IntervalAccumulator",
]
