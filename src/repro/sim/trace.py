"""Measurement probes for simulation runs.

The benchmark harness never reaches into runtime internals; everything it
reports flows through these probes:

- :class:`Stats` — named monotonic counters (messages sent, allreduce
  rounds, steals attempted, ...);
- :class:`Probe` — a time-series of ``(t, value)`` samples;
- :class:`IntervalAccumulator` — total busy time per image, from which the
  harness computes load balance and parallel efficiency.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

import numpy as np


class Stats:
    """Named monotonic counters with hierarchical keys.

    >>> s = Stats()
    >>> s.incr("net.msgs")
    >>> s.incr("net.msgs", 2)
    >>> s["net.msgs"]
    3
    """

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def incr(self, key: str, amount: int = 1) -> None:
        self._counts[key] += amount

    def __getitem__(self, key: str) -> int:
        return self._counts.get(key, 0)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def keys(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def with_prefix(self, prefix: str) -> dict[str, int]:
        """All counters whose key starts with ``prefix``."""
        return {k: v for k, v in self._counts.items() if k.startswith(prefix)}


class Probe:
    """A time-series probe: record ``(t, value)`` samples and summarize."""

    def __init__(self, name: str = "probe"):
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, t: float, value: float) -> None:
        self._times.append(t)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._times)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values)

    def summary(self) -> dict[str, float]:
        if not self._values:
            return {"count": 0}
        v = self.values
        return {
            "count": float(len(v)),
            "min": float(v.min()),
            "max": float(v.max()),
            "mean": float(v.mean()),
            "sum": float(v.sum()),
        }


class IntervalAccumulator:
    """Accumulates busy-time per stream (e.g. per image).

    Images report work intervals as they execute; the harness then derives
    per-image work fractions (paper Fig. 16) and parallel efficiency
    (paper Fig. 17) from the totals.
    """

    def __init__(self, n_streams: int):
        if n_streams <= 0:
            raise ValueError("n_streams must be positive")
        self.n_streams = n_streams
        self._busy = np.zeros(n_streams, dtype=np.float64)

    def add(self, stream: int, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative duration {duration!r}")
        if stream < 0 or stream >= self.n_streams:
            # A negative stream would silently wrap via numpy indexing and
            # credit another stream's busy time.
            raise IndexError(
                f"stream {stream} out of range [0, {self.n_streams})")
        self._busy[stream] += duration

    @property
    def busy(self) -> np.ndarray:
        """Per-stream total busy time (a copy)."""
        return self._busy.copy()

    def total(self) -> float:
        return float(self._busy.sum())

    def relative_fractions(self) -> np.ndarray:
        """Per-stream work relative to the mean (1.0 == perfectly even).

        This is exactly the y-axis of the paper's Fig. 16.
        """
        mean = self._busy.mean()
        if mean == 0:
            return np.ones_like(self._busy)
        return self._busy / mean
