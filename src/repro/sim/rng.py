"""Reproducible random streams for simulated process images.

Every image gets an independent :class:`numpy.random.Generator` derived from
one master seed via ``SeedSequence`` spawning, so results are independent of
event interleaving and identical across runs.

Streams are created *lazily*: ``SeedSequence(seed).spawn(n)[i]`` is
bit-identical to ``SeedSequence(seed, spawn_key=(i,))`` (numpy's spawn is
defined as appending the child index to the spawn key), so a pool over
8192+ images only pays for the generators actually used.  Eagerly building
every generator used to dominate Machine startup at paper-scale image
counts.
"""

from __future__ import annotations

import numpy as np


class RngPool:
    """A pool of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Master seed.  Two pools with the same seed produce identical
        streams for every index.
    n_streams:
        Number of addressable streams; indexing past this raises.
        Generators are materialized on first access.
    """

    __slots__ = ("seed", "n_streams", "_rngs")

    def __init__(self, seed: int, n_streams: int):
        if n_streams <= 0:
            raise ValueError("n_streams must be positive")
        self.seed = seed
        self.n_streams = n_streams
        self._rngs: dict[int, np.random.Generator] = {}

    def __len__(self) -> int:
        return self.n_streams

    @property
    def materialized(self) -> int:
        """How many streams have actually been built (footprint metric)."""
        return len(self._rngs)

    def __getitem__(self, index: int) -> np.random.Generator:
        if not 0 <= index < self.n_streams:
            raise IndexError(
                f"rng stream {index} out of range [0, {self.n_streams})"
            )
        rng = self._rngs.get(index)
        if rng is None:
            # Identical to SeedSequence(seed).spawn(n_streams)[index]:
            # spawning appends the child index to the spawn key.
            child = np.random.SeedSequence(self.seed, spawn_key=(index,))
            rng = self._rngs[index] = np.random.default_rng(child)
        return rng
