"""Reproducible random streams for simulated process images.

Every image gets an independent :class:`numpy.random.Generator` derived from
one master seed via ``SeedSequence.spawn``, so results are independent of
event interleaving and identical across runs.
"""

from __future__ import annotations

import numpy as np


class RngPool:
    """A pool of independent, reproducible random generators.

    Parameters
    ----------
    seed:
        Master seed.  Two pools with the same seed produce identical
        streams for every index.
    n_streams:
        Number of streams to pre-spawn; indexing past this raises.
    """

    def __init__(self, seed: int, n_streams: int):
        if n_streams <= 0:
            raise ValueError("n_streams must be positive")
        self.seed = seed
        self.n_streams = n_streams
        children = np.random.SeedSequence(seed).spawn(n_streams)
        self._rngs = [np.random.default_rng(c) for c in children]

    def __len__(self) -> int:
        return self.n_streams

    def __getitem__(self, index: int) -> np.random.Generator:
        if not 0 <= index < self.n_streams:
            raise IndexError(
                f"rng stream {index} out of range [0, {self.n_streams})"
            )
        return self._rngs[index]
