"""Cooperative tasks over the discrete-event engine.

A *task* is a Python generator that models one thread of execution on a
simulated machine.  The generator yields *directives* to the scheduler:

``yield Delay(dt)``
    advance this task's virtual time by ``dt`` seconds (models computation);

``yield future``
    block until the :class:`Future` resolves; the resolved value becomes the
    value of the ``yield`` expression (an exception set on the future is
    re-raised inside the task).

Composite waits are built with :func:`all_of` / :func:`any_of`.  Subroutines
compose with plain ``yield from``, so runtime code reads like straight-line
blocking code:

    def kernel(img):
        yield Delay(1e-6)                    # compute
        value = yield from img.event_wait(ev)  # block on a runtime call

Nothing here knows about networks or CAF semantics; higher layers build on
these primitives.

Hot-path notes (DESIGN.md §9): :meth:`Task._step` is a bounded trampoline —
when a task yields a future that is *already resolved* and the simulator is
quiescent at the current instant (``sim.quiescent_at_now()``), the generator
is resumed synchronously instead of bouncing through ``call_soon``.  The
quiescence gate is what keeps this an invisible optimization: with nothing
else due at this timestamp, the scheduled continuation would have run next
anyway, so eliding the event cannot reorder anything.  Wait queues
(:class:`Channel`, :class:`Semaphore`) are deques, so many-waiter wake-ups
are O(1) per wake instead of O(n) ``list.pop(0)`` shifts — FIFO order is
unchanged.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.engine import Simulator, SimulationError

#: Cap on synchronous resumptions per :meth:`Task._step` activation.  Long
#: already-resolved chains (e.g. draining a full channel) bounce through the
#: scheduler every N steps, bounding Python stack growth (the trampoline is
#: iterative) and one activation's ability to starve the event loop.
_TRAMPOLINE_CAP = 64


class TaskFailed(RuntimeError):
    """An exception escaped a task's generator."""


class Delay:
    """Directive: advance the yielding task's clock by ``dt`` seconds."""

    __slots__ = ("dt",)

    def __init__(self, dt: float):
        if dt < 0:
            raise SimulationError(f"negative Delay {dt!r}")
        self.dt = dt

    def __repr__(self) -> str:
        return f"Delay({self.dt!r})"


class Future:
    """A single-assignment result that tasks can block on.

    Futures carry either a value or an exception.  Callbacks added after
    resolution fire immediately (synchronously), which keeps completion
    chains at one timestamp from being artificially spread over events.
    """

    __slots__ = ("_done", "_value", "_exc", "_callbacks", "name")

    def __init__(self, name: str = ""):
        self._done = False
        self._value: Any = None
        self._exc: Optional[BaseException] = None
        self._callbacks: list[Callable[["Future"], None]] = []
        self.name = name

    # -- state --------------------------------------------------------- #

    @property
    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"Future {self.name!r} not resolved")
        if self._exc is not None:
            raise self._exc
        return self._value

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise SimulationError(f"Future {self.name!r} not resolved")
        return self._exc

    # -- resolution ---------------------------------------------------- #

    def set_result(self, value: Any = None) -> None:
        if self._done:
            raise SimulationError(f"Future {self.name!r} resolved twice")
        self._done = True
        self._value = value
        self._fire()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise SimulationError(f"Future {self.name!r} resolved twice")
        self._done = True
        self._exc = exc
        self._fire()

    def add_done_callback(self, cb: Callable[["Future"], None]) -> None:
        if self._done:
            cb(self)
        else:
            self._callbacks.append(cb)

    def _fire(self) -> None:
        cbs, self._callbacks = self._callbacks, []
        for cb in cbs:
            cb(self)

    def __repr__(self) -> str:
        state = "done" if self._done else "pending"
        return f"<Future {self.name!r} {state}>"


def all_of(futures: Iterable[Future], name: str = "all_of") -> Future:
    """A future that resolves (to a list of values, in input order) once
    every input future has resolved.  The first exception wins."""
    futures = list(futures)
    out = Future(name)
    if not futures:
        out.set_result([])
        return out
    remaining = [len(futures)]

    def on_done(_f: Future) -> None:
        if out.done:
            return
        exc = _f.exception()
        if exc is not None:
            out.set_exception(exc)
            return
        remaining[0] -= 1
        if remaining[0] == 0:
            out.set_result([f.result() for f in futures])

    for f in futures:
        f.add_done_callback(on_done)
    return out


def any_of(futures: Iterable[Future], name: str = "any_of") -> Future:
    """A future that resolves to ``(index, value)`` of the first input
    future to resolve."""
    futures = list(futures)
    if not futures:
        raise SimulationError("any_of of no futures")
    out = Future(name)

    def make_cb(i: int) -> Callable[[Future], None]:
        def on_done(_f: Future) -> None:
            if out.done:
                return
            exc = _f.exception()
            if exc is not None:
                out.set_exception(exc)
            else:
                out.set_result((i, _f.result()))

        return on_done

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out


class Task:
    """A generator driven by the simulator.

    The task's completion is observable through :attr:`done_future`, which
    resolves to the generator's return value (or the escaping exception,
    wrapped in :class:`TaskFailed`).

    Task ids come from :meth:`Simulator.next_task_id`, so two machines (or
    two back-to-back runs in one process) name their tasks identically —
    task ids are part of trace output and must be reproducible.
    """

    __slots__ = ("tid", "sim", "gen", "name", "done_future", "owner",
                 "_killed", "_rvalue", "_rexc", "_resume_cb")

    def __init__(self, sim: Simulator, gen: Generator, name: str = "",
                 owner: Optional[int] = None):
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Task expects a generator; got {type(gen).__name__}. "
                "Did you call the kernel instead of passing its generator?"
            )
        self.tid = sim.next_task_id()
        self.sim = sim
        self.gen = gen
        self.name = name or f"task-{self.tid}"
        self.done_future = Future(f"{self.name}.done")
        #: The simulated image this task executes on behalf of, or None
        #: for infrastructure tasks that survive any image's crash.  Only
        #: owned tasks are registered with the simulator's kill registry.
        self.owner = owner
        self._killed = False
        # Resume state lives on the task (not in event args) and the bound
        # continuation is allocated once: every switch then schedules a
        # zero-arg callback, hitting the engine's `fn()` fast path.
        self._rvalue: Any = None
        self._rexc: Optional[BaseException] = None
        self._resume_cb = self._resume
        if owner is not None:
            sim._register_task(self)
        sim.call_soon(self._resume_cb)

    # -- fail-stop support --------------------------------------------- #

    def kill(self) -> None:
        """Fail-stop this task: it never advances again.

        Deliberately does *not* close the generator — ``gen.close()``
        would raise GeneratorExit inside it and run its ``finally:``
        blocks (completion counting, event posts), which a crashed image
        must not do.  The generator is dropped so its frame is collected;
        any already-queued resume callback no-ops via ``_killed``.
        ``done_future`` is left unresolved, mirroring a process that
        stopped mid-flight."""
        if self._killed or self.done_future.done:
            return
        self._killed = True
        self.gen = None

    # -- scheduling internals ------------------------------------------ #

    def _resume(self) -> None:
        """Advance the generator.  Runs as a bounded trampoline: a yield
        of an already-resolved future continues synchronously while the
        simulator is quiescent at this instant (order-identical to the
        scheduled path; see module docstring), bouncing back through the
        scheduler at :data:`_TRAMPOLINE_CAP` resumptions."""
        if self._killed:
            return
        gen = self.gen
        sim = self.sim
        value = self._rvalue
        exc = self._rexc
        if value is not None:
            self._rvalue = None
        if exc is not None:
            self._rexc = None
        budget = _TRAMPOLINE_CAP
        while True:
            try:
                if exc is not None:
                    directive = gen.throw(exc)
                else:
                    directive = gen.send(value)
            except StopIteration as stop:
                self.done_future.set_result(stop.value)
                return
            except BaseException as e:  # noqa: BLE001 - surfaced via future
                wrapped = TaskFailed(f"task {self.name!r} failed: {e!r}")
                wrapped.__cause__ = e
                self.done_future.set_exception(wrapped)
                return
            # Type-keyed dispatch: exact-class checks beat isinstance on
            # the hot path; subclasses and bad yields take the slow path.
            cls = directive.__class__
            if cls is Delay:
                sim.schedule(directive.dt, self._resume_cb)
                return
            if cls is Future:
                if directive._done:
                    value = directive._value
                    exc = directive._exc
                    budget -= 1
                    if budget and sim.quiescent_at_now():
                        continue
                    # Trampoline cap hit, or other events are due at this
                    # instant: bounce through the scheduler.
                    self._rvalue = value
                    self._rexc = exc
                    sim.call_soon(self._resume_cb)
                    return
                directive._callbacks.append(self._on_future)
                return
            self._dispatch(directive)
            return

    def _dispatch(self, directive: Any) -> None:
        """Slow path: Delay/Future subclasses and invalid directives."""
        if isinstance(directive, Delay):
            self.sim.schedule(directive.dt, self._resume_cb)
        elif isinstance(directive, Future):
            directive.add_done_callback(self._on_future)
        else:
            self._rexc = SimulationError(
                f"task {self.name!r} yielded {directive!r}; expected "
                "Delay or Future (did you forget `yield from`?)"
            )
            self.sim.call_soon(self._resume_cb)

    def _on_future(self, fut: Future) -> None:
        self._rvalue = fut._value
        self._rexc = fut._exc
        self.sim.call_soon(self._resume_cb)

    def __repr__(self) -> str:
        return f"<Task {self.name} {'done' if self.done_future.done else 'live'}>"


class Channel:
    """An unbounded FIFO queue with blocking receive.

    ``put`` is immediate; ``get()`` is a generator to be used with
    ``yield from`` and blocks until an item is available.  Multiple
    blocked receivers are served in FIFO order (deque-backed, O(1) wakes).
    """

    def __init__(self, sim: Simulator, name: str = "channel"):
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._waiters: deque[Future] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        if self._waiters:
            self._waiters.popleft().set_result(item)
        else:
            self._items.append(item)

    def try_get(self) -> tuple[bool, Any]:
        if self._items:
            return True, self._items.popleft()
        return False, None

    def get(self) -> Generator[Any, Any, Any]:
        if self._items:
            return self._items.popleft()
        fut = Future(f"{self.name}.get")
        self._waiters.append(fut)
        item = yield fut
        return item


class Semaphore:
    """A counting semaphore; used for flow-control credits.

    ``acquire`` blocks (``yield from``) when the count is zero; ``release``
    wakes the longest-waiting acquirer (deque-backed, O(1) wakes).
    """

    def __init__(self, sim: Simulator, count: int, name: str = "sem"):
        if count < 0:
            raise SimulationError("semaphore count must be >= 0")
        self.sim = sim
        self.name = name
        self._count = count
        self._waiters: deque[Future] = deque()

    @property
    def available(self) -> int:
        return self._count

    def try_acquire(self) -> bool:
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def acquire(self) -> Generator[Any, Any, None]:
        if self._count > 0:
            self._count -= 1
            return
        fut = Future(f"{self.name}.acquire")
        self._waiters.append(fut)
        yield fut

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().set_result(None)
        else:
            self._count += 1


class Condition:
    """Predicate-based waiting: tasks block until a user predicate becomes
    true; any state change that might flip a predicate calls :meth:`wake`.

    This models the paper's ``wait until (e.sent == e.delivered && ...)``
    (Fig. 7, line 4) directly.
    """

    def __init__(self, sim: Simulator, name: str = "cond"):
        self.sim = sim
        self.name = name
        self._waiters: list[tuple[Callable[[], bool], Future]] = []

    @property
    def waiting(self) -> int:
        """Tasks currently blocked on this condition (diagnostic)."""
        return len(self._waiters)

    def wait_until(self, predicate: Callable[[], bool]) -> Generator[Any, Any, None]:
        if predicate():
            return
        fut = Future(f"{self.name}.wait")
        self._waiters.append((predicate, fut))
        yield fut

    def wake(self) -> None:
        """Re-check all waiting predicates; resolve those now true."""
        if not self._waiters:
            return
        still: list[tuple[Callable[[], bool], Future]] = []
        ready: list[Future] = []
        for pred, fut in self._waiters:
            if pred():
                ready.append(fut)
            else:
                still.append((pred, fut))
        self._waiters = still
        for fut in ready:
            fut.set_result(None)
