"""Chrome-trace export: visualize a simulation run in chrome://tracing.

The tracer collects three event classes during a run:

- *spans* — durations on a per-image track (compute blocks, termination
  waves);
- *instants* — point events (event posts, finish entry/exit);
- *flows* — message arrows from the sender's injection to the receiver's
  delivery.

Timestamps are simulated microseconds.  ``save()`` writes the standard
Trace Event Format JSON that chrome://tracing and Perfetto load
directly.

Enable on a machine with ``Machine(n, tracer=ChromeTracer())`` and dump
after the run::

    machine.tracer.save("run.json")
"""

from __future__ import annotations

import json
from typing import Any, Optional


def _us(t: float) -> float:
    return t * 1e6


class ChromeTracer:
    """Collects Trace Event Format events."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._flow_ids = 0
        self.enabled = True

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def span(self, track: int, name: str, start: float, duration: float,
             args: Optional[dict] = None) -> None:
        """A complete duration event on an image's track."""
        if not self.enabled:
            return
        self._events.append({
            "ph": "X", "pid": 0, "tid": track, "name": name,
            "ts": _us(start), "dur": _us(duration),
            "args": args or {},
        })

    def instant(self, track: int, name: str, t: float,
                args: Optional[dict] = None) -> None:
        """A point event on an image's track."""
        if not self.enabled:
            return
        self._events.append({
            "ph": "i", "pid": 0, "tid": track, "name": name,
            "ts": _us(t), "s": "t", "args": args or {},
        })

    def flow(self, name: str, src_track: int, t_send: float,
             dst_track: int, t_recv: float,
             args: Optional[dict] = None) -> None:
        """A message arrow: source injection to destination delivery."""
        if not self.enabled:
            return
        self._flow_ids += 1
        fid = self._flow_ids
        base = {"pid": 0, "cat": "msg", "name": name, "id": fid,
                "args": args or {}}
        self._events.append(
            {**base, "ph": "s", "tid": src_track, "ts": _us(t_send)})
        self._events.append(
            {**base, "ph": "f", "tid": dst_track, "ts": _us(t_recv),
             "bp": "e"})

    def label_tracks(self, n_images: int) -> None:
        """Name each image's track in the viewer."""
        for r in range(n_images):
            self._events.append({
                "ph": "M", "pid": 0, "tid": r,
                "name": "thread_name",
                "args": {"name": f"image {r}"},
            })

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> list[dict]:
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def to_json(self) -> str:
        return json.dumps({"traceEvents": self._events,
                           "displayTimeUnit": "ns"})

    def save(self, path: str) -> None:
        """Write the trace to a chrome://tracing-loadable JSON file."""
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
