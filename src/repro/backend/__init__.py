"""True-parallel execution backend (DESIGN.md §14).

Runs the same ``Image``/coarray/spawn/finish/event/collectives programs
on real OS processes — ``Machine(backend="process")`` /
``run_spmd(..., backend="process")`` — with the deterministic simulator
as the cross-validation oracle.
"""

from repro.backend.parallel import (ParallelRun, ParallelTimeoutError,
                                    ProcessRunner, run_spmd_process)
from repro.backend.realtime import RealtimeScheduler
from repro.backend.substrate import Substrate
from repro.backend.transport import ProcessTransport
from repro.backend.wire import WireError, dump_frame, load_frame

__all__ = [
    "ParallelRun",
    "ParallelTimeoutError",
    "ProcessRunner",
    "ProcessTransport",
    "RealtimeScheduler",
    "Substrate",
    "WireError",
    "dump_frame",
    "load_frame",
    "run_spmd_process",
]
