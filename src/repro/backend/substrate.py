"""The runtime/substrate interface split (DESIGN.md §14).

Everything above the scheduler — tasks, futures, conditions, the AM
layer, finish counting, collectives, the failure detector — drives its
substrate through the narrow surface captured here by
:class:`Substrate`: schedule a callback (now, later, or at an absolute
time), create/register tasks, read the clock, and kill an image's
tasks.  Two implementations exist:

- :class:`repro.sim.engine.Simulator` — the single-threaded
  deterministic discrete-event engine (virtual time, the oracle);
- :class:`repro.backend.realtime.RealtimeScheduler` — a wall-clock
  event loop, one per OS process, fed by a progress thread
  (the true-parallel backend).

``Machine(backend="sim"|"process")`` selects between them uniformly;
the operation modules never branch on which one they run over.

This module is intentionally import-light (typing only): it is imported
by both the simulator side and the process side, and must never create
an import cycle.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Protocol, runtime_checkable

#: A scheduled entry: ``[time, seq, fn, args]``; ``fn is None`` marks a
#: cancelled entry (identical to ``repro.sim.engine.Event``).
Event = List[Any]


@runtime_checkable
class Substrate(Protocol):
    """What the runtime layers require of an execution substrate.

    The protocol is exactly the surface of the PR-3 simulator that
    ``sim/tasks.py``, ``net/transport.py`` and ``runtime/program.py``
    were already consuming; extracting it is what lets the process
    backend slot in without the operation modules changing.
    """

    # -- clock and counters -------------------------------------------- #

    @property
    def now(self) -> float:
        """Current time: virtual seconds (sim) or wall seconds since
        scheduler construction (process backend)."""
        ...

    @property
    def events_processed(self) -> int: ...

    @property
    def pending_events(self) -> int: ...

    # -- scheduling ---------------------------------------------------- #

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event: ...

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event: ...

    def call_soon(self, fn: Callable, *args: Any) -> Event: ...

    def cancel(self, entry: Event) -> None: ...

    def quiescent_at_now(self) -> bool:
        """True when nothing else is runnable at the current instant —
        the budget gate for synchronous task continuations.  A real-time
        substrate answers False: with other processes genuinely
        concurrent, there is no such thing as a provably quiet instant,
        so every continuation goes through the queue."""
        ...

    # -- tasks --------------------------------------------------------- #

    def next_task_id(self) -> int: ...

    def _register_task(self, task: Any) -> None: ...

    def kill_owner(self, owner: int) -> int: ...

    # -- lifecycle ----------------------------------------------------- #

    def add_drain_hook(self, fn: Callable) -> None: ...

    def set_schedule_source(self, source: Optional[Any]) -> None: ...

    @property
    def schedule_source(self) -> Optional[Any]: ...
