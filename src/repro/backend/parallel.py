"""True-parallel SPMD launch: one OS process per image.

The coordinator (:class:`ProcessRunner`) forks ``n_images`` workers.
Each worker builds its **own full local Machine** — same registries,
same AM handlers, same finish/termination/failure machinery as under
the simulator — over a :class:`~repro.backend.realtime.RealtimeScheduler`
and a :class:`~repro.backend.transport.ProcessTransport`, then launches
*only its own rank's* main program.  All cross-rank interaction in this
runtime is active-message-mediated, so nothing else is needed: an AM
addressed to rank ``d`` is pickled and pushed onto worker ``d``'s
queue, whose progress thread posts it to that worker's run loop.

Protocol (one multiprocessing queue per worker, one back to the parent):

- ``("am", src, seq, want_ack, blob)`` — a pickled active message;
- ``("ack", src, seq)``             — delivery confirmation;
- ``("shutdown",)``                 — parent → worker: stop the loop;
- ``("done", rank, payload)``       — worker → parent: main finished
  (result or error, plus ``finalize`` extras and the stats snapshot);
- ``("error", rank, exc)``          — worker → parent: the worker
  itself failed (bootstrap error, or an AM dispatch raised).

A worker that *disappears* (``os.kill``, crash) simply stops being
alive; the parent's collection loop notices via ``Process.is_alive``
and records it in ``dead_images`` with a ``None`` result — survivors
learn of the death through the heartbeat failure detector exactly as
simulated images do, because the detector's heartbeats are themselves
active messages riding this conduit.

Requires the ``fork`` start method (kernels, setups and closures are
inherited, not pickled); Linux and macOS-with-fork only.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import time
from typing import Any, Callable, Optional

#: default coordinator-side wall-clock budget for one parallel run
DEFAULT_TIMEOUT_S = 300.0


class ParallelTimeoutError(RuntimeError):
    """The parallel run exceeded the coordinator's wall-clock budget.

    ``partial`` holds the :class:`ParallelRun` as collected so far —
    results and errors from the ranks that did report."""

    def __init__(self, message: str, partial: "ParallelRun" = None):
        super().__init__(message)
        self.partial = partial


class _Conduit:
    """What a worker's transport sees: its rank plus ``put(dst, item)``
    onto any worker's queue."""

    __slots__ = ("rank", "_inboxes")

    def __init__(self, rank: int, inboxes: list):
        self.rank = rank
        self._inboxes = inboxes

    def put(self, dst: int, item: tuple) -> None:
        self._inboxes[dst].put(item)


class _ClockShim:
    """Stands in for ``machine.sim`` on the coordinator-side result."""

    __slots__ = ("now", "events_processed")

    def __init__(self, now: float, events_processed: int):
        self.now = now
        self.events_processed = events_processed


class ParallelRun:
    """Coordinator-side view of a completed parallel run (duck-types the
    slice of ``Machine`` the harness and tests read)."""

    def __init__(self, n_images: int):
        self.backend = "process"
        self.n_images = n_images
        self.results: list[Any] = [None] * n_images
        #: per-rank ``finalize(machine, rank)`` values (None without one)
        self.extras: list[Any] = [None] * n_images
        #: workers that vanished without reporting (killed processes)
        self.dead_images: set[int] = set()
        #: per-rank worker errors (app exceptions or dispatch failures)
        self.errors: dict[int, BaseException] = {}
        #: summed per-key counters across every worker
        self.stats = None
        #: per-rank final scheduler clocks (wall seconds in-worker)
        self.worker_now: list[float] = [0.0] * n_images
        self.wall_s = 0.0
        self.sim = _ClockShim(0.0, 0)

    def _seal(self, stats, wall_s: float) -> None:
        self.stats = stats
        self.wall_s = wall_s
        self.sim = _ClockShim(max(self.worker_now, default=0.0),
                              stats["rt.events"] if stats else 0)


def _picklable(obj: Any) -> Any:
    """Make a value safe for the parent queue (whose feeder thread would
    otherwise swallow pickling errors and silently drop the message)."""
    try:
        pickle.dumps(obj)
        return obj
    except Exception:
        if isinstance(obj, BaseException):
            return RuntimeError(f"{type(obj).__name__}: {obj}")
        return f"<unpicklable {type(obj).__name__}: {obj!r}>"


def _worker_main(spec: dict) -> None:
    from repro.runtime.program import Machine

    rank = spec["rank"]
    parent_q = spec["parent_q"]
    inboxes = spec["inboxes"]
    # A SIGKILLed peer leaves our feeder threads holding frames for it;
    # never let queue teardown block this process's exit on them.
    for q in inboxes:
        q.cancel_join_thread()
    try:
        conduit = _Conduit(rank, inboxes)
        machine = Machine(
            spec["n_images"], params=spec["params"], seed=spec["seed"],
            backend="process", conduit=conduit, local_ranks=(rank,),
            failure_detection=spec["failure_detection"],
        )
        setup = spec["setup"]
        if setup is not None:
            setup(machine)
        task = machine.launch(spec["kernel"], args=spec["args"])[0]
        sched = machine.sim

        def report_done(fut) -> None:
            exc = fut.exception()
            finalize = spec["finalize"]
            extras = None
            if exc is None and finalize is not None:
                try:
                    extras = finalize(machine, rank)
                except Exception as fexc:  # noqa: BLE001 - shipped to parent
                    exc = fexc
            stats = machine.stats.as_dict()
            stats["rt.events"] = sched.events_processed
            if exc is None:
                payload = ("ok", _picklable(fut.result()),
                           _picklable(extras), stats, sched.now)
            else:
                payload = ("exc", _picklable(machine._unwrap(exc)),
                           None, stats, sched.now)
            parent_q.put(("done", rank, payload))

        task.done_future.add_done_callback(report_done)

        def progress() -> None:
            q = inboxes[rank]
            while True:
                item = q.get()
                if item[0] == "shutdown":
                    sched.stop()
                    return
                sched.post(machine.network.deliver_frame, item)

        thread = threading.Thread(target=progress, daemon=True,
                                  name=f"progress@{rank}")
        thread.start()
        sched.run()
    except BaseException as exc:  # noqa: BLE001 - shipped to parent
        parent_q.put(("error", rank, _picklable(exc)))


class ProcessRunner:
    """Fork, run, collect.  ``start()`` then ``wait()``; or use
    :func:`run_spmd_process` for the one-shot path.  Between the two
    calls :attr:`pids` exposes the worker process ids — the hook the
    fault-tolerance tests use to ``os.kill`` a real worker mid-run."""

    def __init__(self, kernel: Callable, n_images: int, *,
                 params=None, seed: int = 0, args: tuple = (),
                 setup: Optional[Callable] = None,
                 failure_detection=None,
                 finalize: Optional[Callable] = None):
        if n_images < 1:
            raise ValueError(f"need at least one image, got {n_images}")
        self.kernel = kernel
        self.n_images = n_images
        self.params = params
        self.seed = seed
        self.args = args
        self.setup = setup
        self.failure_detection = failure_detection
        self.finalize = finalize
        self._procs: list = []
        self._inboxes: list = []
        self._parent_q = None
        self._t0 = 0.0

    def start(self) -> "ProcessRunner":
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:
            raise RuntimeError(
                "the process backend requires the 'fork' start method "
                "(kernels and setups are inherited, not pickled)"
            ) from None
        n = self.n_images
        self._inboxes = [ctx.Queue() for _ in range(n)]
        self._parent_q = ctx.Queue()
        self._t0 = time.monotonic()
        for rank in range(n):
            spec = {
                "rank": rank, "n_images": n, "kernel": self.kernel,
                "args": self.args, "params": self.params,
                "seed": self.seed, "setup": self.setup,
                "failure_detection": self.failure_detection,
                "finalize": self.finalize,
                "inboxes": self._inboxes, "parent_q": self._parent_q,
            }
            proc = ctx.Process(target=_worker_main, args=(spec,),
                               daemon=True, name=f"image-{rank}")
            proc.start()
            self._procs.append(proc)
        return self

    @property
    def pids(self) -> list[int]:
        return [p.pid for p in self._procs]

    def wait(self, timeout: float = DEFAULT_TIMEOUT_S,
             raise_errors: bool = True) -> ParallelRun:
        """Collect every worker's verdict, shut the fleet down, and
        return the :class:`ParallelRun`.  A worker that dies without
        reporting lands in ``dead_images`` with a ``None`` result."""
        run = ParallelRun(self.n_images)
        deadline = self._t0 + timeout
        pending = set(range(self.n_images))
        stats_sum: dict[str, int] = {}
        while pending:
            try:
                item = self._parent_q.get(timeout=0.2)
            except queue_mod.Empty:
                for rank in sorted(pending):
                    if not self._procs[rank].is_alive():
                        pending.discard(rank)
                        run.dead_images.add(rank)
                if time.monotonic() > deadline:
                    self._terminate_all()
                    detail = ""
                    if run.errors:
                        detail = "".join(
                            f"; rank {r} reported: {e!r}"
                            for r, e in sorted(run.errors.items()))
                    raise ParallelTimeoutError(
                        f"parallel run exceeded {timeout:.0f}s with "
                        f"rank(s) {sorted(pending)} unaccounted for"
                        + detail, partial=run)
                continue
            tag, rank = item[0], item[1]
            pending.discard(rank)
            if tag == "error":
                exc = item[2]
                run.errors[rank] = (exc if isinstance(exc, BaseException)
                                    else RuntimeError(str(exc)))
                continue
            status, result, extras, stats, worker_now = item[2]
            run.worker_now[rank] = worker_now
            for key, value in stats.items():
                stats_sum[key] = stats_sum.get(key, 0) + value
            if status == "ok":
                run.results[rank] = result
                run.extras[rank] = extras
            else:
                run.errors[rank] = (result if isinstance(result,
                                                         BaseException)
                                    else RuntimeError(str(result)))
        self._shutdown(run)
        from repro.sim.trace import Stats

        stats = Stats()
        for key, value in stats_sum.items():
            stats.incr(key, value)
        run._seal(stats, time.monotonic() - self._t0)
        if raise_errors and run.errors:
            raise run.errors[min(run.errors)]
        return run

    def _shutdown(self, run: ParallelRun) -> None:
        for rank, proc in enumerate(self._procs):
            if rank not in run.dead_images and proc.is_alive():
                try:
                    self._inboxes[rank].put(("shutdown",))
                except Exception:
                    pass
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._terminate_all()
        for q in self._inboxes + [self._parent_q]:
            q.cancel_join_thread()
            q.close()

    def _terminate_all(self) -> None:
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            if proc.is_alive():
                proc.join(timeout=2.0)
                if proc.is_alive():
                    proc.kill()

    def kill_worker(self, rank: int) -> None:
        """SIGKILL one worker — a *real* fail-stop crash for the failure
        detector to find."""
        import signal

        os.kill(self._procs[rank].pid, signal.SIGKILL)


def run_spmd_process(kernel: Callable, n_images: int, *,
                     params=None, seed: int = 0, args: tuple = (),
                     setup: Optional[Callable] = None,
                     failure_detection=None,
                     finalize: Optional[Callable] = None,
                     timeout: float = DEFAULT_TIMEOUT_S,
                     ) -> tuple[ParallelRun, list]:
    """Process-backend twin of :func:`repro.runtime.program.run_spmd`:
    returns ``(run, per-rank results)`` with the same result-list
    semantics (a dead image reports ``None``)."""
    runner = ProcessRunner(kernel, n_images, params=params, seed=seed,
                           args=args, setup=setup,
                           failure_detection=failure_detection,
                           finalize=finalize)
    runner.start()
    run = runner.wait(timeout=timeout)
    return run, run.results
